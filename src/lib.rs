//! # Spritely NFS
//!
//! A full reproduction of **"Spritely NFS: Experiments with
//! Cache-Consistency Protocols"** (V. Srinivasan and Jeffrey C. Mogul,
//! SOSP 1989) as a deterministic discrete-event simulation in Rust.
//!
//! The paper grafts the Sprite cache-consistency protocol onto NFS:
//! explicit `open`/`close` RPCs let the server track which clients have
//! each file open, so non-write-shared files can be cached with *delayed
//! write-back* (no flush on close, write cancellation on delete) while
//! write-shared files are made uncachable everywhere — yielding both a
//! real consistency guarantee and better performance. This workspace
//! rebuilds the whole experimental apparatus:
//!
//! * [`sim`] — deterministic single-threaded async executor with a
//!   virtual clock, FIFO resources and seeded randomness;
//! * [`blockdev`] — RA81-style disk model (positioning + transfer);
//! * [`rpcnet`] — Sun-RPC-over-UDP model: shared wire, thread pools,
//!   retransmission, duplicate-request cache;
//! * [`localfs`] — simulated Unix file system with a buffer cache,
//!   delayed writes and the `/etc/update` daemon;
//! * [`nfs`] — the stateless baseline: synchronous server writes,
//!   attribute-probe consistency, write-behind with drain-on-close, and
//!   the vintage invalidate-on-close client bug;
//! * [`snfs`] — **the paper's contribution**: the 7-state server state
//!   table (Table 4-1), version numbers, callbacks, the SNFS client, and
//!   the §6.1/§6.2 extensions (hybrid NFS coexistence, delayed close);
//! * [`vfs`] — GFS-style mount table + process/fd/syscall layer;
//! * [`workloads`] — Andrew benchmark, external sort, microbenchmarks;
//! * [`harness`] — experiment runners and paper-style reports for every
//!   table and figure in the evaluation;
//! * [`metrics`] — RPC counters, rate/utilization series, text tables;
//! * [`trace`] — deterministic causal event tracing with a protocol
//!   invariant checker (state machine legality, N−1 callback bound,
//!   stale reads, cancelled writes, fsync claims).
//!
//! # Quickstart
//!
//! ```
//! use spritely::harness::{run_sort_experiment, Protocol};
//!
//! // Sort 281 KB with temp files over Spritely NFS vs. baseline NFS.
//! let nfs = run_sort_experiment(Protocol::Nfs, 281 * 1024, true);
//! let snfs = run_sort_experiment(Protocol::Snfs, 281 * 1024, true);
//! assert!(snfs.elapsed < nfs.elapsed);
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench` for the
//! Criterion benches that regenerate each table and figure.

pub use spritely_blockdev as blockdev;
pub use spritely_core as snfs;
pub use spritely_harness as harness;
pub use spritely_localfs as localfs;
pub use spritely_metrics as metrics;
pub use spritely_nfs as nfs;
pub use spritely_proto as proto;
pub use spritely_rpcnet as rpcnet;
pub use spritely_sim as sim;
pub use spritely_trace as trace;
pub use spritely_vfs as vfs;
pub use spritely_workloads as workloads;
