//! Command-line front end: regenerate any of the paper's tables and
//! figures (plus the extension experiments) without writing code.
//!
//! ```text
//! spritely table 5-1 [--seed N]     # Andrew elapsed times
//! spritely table 5-2                # Andrew RPC counts
//! spritely table 5-3|5-4|5-5|5-6    # sort benchmark family
//! spritely figure 5-1|5-2           # utilization/call-rate CSV
//! spritely micro                    # §5.3 write-close-reopen-read
//! spritely lifetime                 # temp-file lifetime sweep
//! spritely scaling                  # §2.3 multi-client capacity
//! spritely matrix [--threads N]     # experiment matrix, fanned across threads
//! spritely profile <workload>       # traced run + phase-attributed latency profile
//! spritely compare <a.json> <b.json>  # diff two snapshot/ledger JSONs
//! spritely all                      # everything above
//! ```

use std::process::ExitCode;

use spritely::harness::{
    compare_json, render_matrix, report, run_andrew, run_andrew_with, run_flush_with, run_matrix,
    run_reopen, run_scaling, run_scaling_with, run_sort_experiment, run_temp_lifetime,
    CompareOptions, Experiment, Protocol, ServerIoParams, TestbedParams, WriteBehindParams,
};
use spritely::metrics::TextTable;
use spritely::proto::NfsProc;
use spritely::sim::SimDuration;
use spritely::trace::profile_trace;

fn usage() -> ExitCode {
    eprintln!(
        "usage: spritely <command> [--seed N]\n\
         commands:\n\
           table 5-1 | 5-2 | 5-3 | 5-4 | 5-5 | 5-6\n\
           figure 5-1 | 5-2\n\
           micro        (§5.3 write-close-reopen-read)\n\
           lifetime     (temp-file lifetime sweep)\n\
           scaling      (§2.3 multi-client capacity)\n\
           matrix       (experiment matrix fanned across --threads N workers;\n\
                         per-cell snapshots land in artifacts/matrix/)\n\
           profile andrew | andrew-pipelined | scaling | flush\n\
                        (traced run; prints the phase-attribution tables and\n\
                         writes artifacts/profile_<slug>.json)\n\
           compare <a.json> <b.json> [--threshold PCT]\n\
                        (diff two snapshot/ledger JSONs; exit 1 on regression)\n\
           all"
    );
    ExitCode::from(2)
}

/// Ledger/filename slug for a free-form run label.
fn slug(label: &str) -> String {
    let mut out = String::new();
    for c in label.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c.to_ascii_lowercase());
        } else if !out.ends_with('_') {
            out.push('_');
        }
    }
    out.trim_matches('_').to_string()
}

/// Best-effort write under `artifacts/` (created on demand), relative
/// to the current directory.
fn write_artifact(rel: &str, contents: &str) {
    let path = std::path::Path::new("artifacts").join(rel);
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(&path, contents) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

fn parse_seed(args: &[String]) -> u64 {
    args.windows(2)
        .find(|w| w[0] == "--seed")
        .and_then(|w| w[1].parse().ok())
        .unwrap_or(42)
}

fn andrew_runs(seed: u64) -> Vec<spritely::harness::AndrewRun> {
    vec![
        run_andrew(Protocol::Local, false, seed),
        run_andrew(Protocol::Nfs, false, seed),
        run_andrew(Protocol::Nfs, true, seed),
        run_andrew(Protocol::Snfs, false, seed),
        run_andrew(Protocol::Snfs, true, seed),
    ]
}

fn table_5_1(seed: u64) {
    println!("Table 5-1: Andrew benchmark elapsed time (seconds)\n");
    println!("{}", report::table_5_1(&andrew_runs(seed)));
}

fn table_5_2(seed: u64) {
    println!("Table 5-2: RPC calls for the Andrew benchmark (steady state)\n");
    println!("{}", report::table_5_2(&andrew_runs(seed)));
}

fn table_5_3() {
    let mut runs = Vec::new();
    for &kb in &[281u64, 1408, 2816] {
        for p in [Protocol::Local, Protocol::Nfs, Protocol::Snfs] {
            runs.push(run_sort_experiment(p, kb * 1024, true));
        }
    }
    println!("Table 5-3: results of sort benchmark\n");
    println!("{}", report::sort_table(&runs));
}

fn table_5_4() {
    let runs = vec![
        run_sort_experiment(Protocol::Nfs, 2816 * 1024, true),
        run_sort_experiment(Protocol::Snfs, 2816 * 1024, true),
    ];
    println!("Table 5-4: RPC calls for sort benchmark (2816 KB)\n");
    println!("{}", report::sort_rpc_table(&runs));
}

fn table_5_5() {
    let mut runs = Vec::new();
    for &kb in &[281u64, 1408, 2816] {
        for p in [Protocol::Local, Protocol::Nfs, Protocol::Snfs] {
            runs.push(run_sort_experiment(p, kb * 1024, false));
        }
    }
    println!("Table 5-5: sort benchmark, infinite write-delay\n");
    println!("{}", report::sort_table(&runs));
}

fn table_5_6() {
    let runs = vec![
        run_sort_experiment(Protocol::Nfs, 2816 * 1024, true),
        run_sort_experiment(Protocol::Nfs, 2816 * 1024, false),
        run_sort_experiment(Protocol::Snfs, 2816 * 1024, true),
        run_sort_experiment(Protocol::Snfs, 2816 * 1024, false),
    ];
    println!("Table 5-6: RPC calls for sort, update on/off (2816 KB)\n");
    println!("{}", report::sort_rpc_table(&runs));
}

fn figure(which: &str, seed: u64) {
    let (proto, title) = match which {
        "5-1" => (Protocol::Nfs, "Figure 5-1 (NFS)"),
        "5-2" => (Protocol::Snfs, "Figure 5-2 (SNFS)"),
        _ => unreachable!("validated by caller"),
    };
    let run = run_andrew(proto, true, seed);
    println!("# {title}: server utilization and call rates, /tmp remote");
    print!("{}", report::figure_series(&run));
}

fn micro() {
    let runs = vec![
        run_reopen(Protocol::Nfs, true, 1024 * 1024),
        run_reopen(Protocol::Nfs, false, 1024 * 1024),
        run_reopen(Protocol::NfsFixed, true, 1024 * 1024),
        run_reopen(Protocol::Snfs, true, 1024 * 1024),
    ];
    println!("Section 5.3 microbenchmark: write-close-reopen-read (1 MB)\n");
    println!("{}", report::reopen_table(&runs));
}

fn lifetime() {
    println!("Temp-file lifetime sweep (64 KB, deleted after <lifetime>):\n");
    let mut t = TextTable::new(vec!["lifetime", "NFS writes", "SNFS writes"]);
    for secs in [1u64, 5, 15, 45, 90] {
        let d = SimDuration::from_secs(secs);
        let nfs = run_temp_lifetime(Protocol::Nfs, 64 * 1024, d);
        let snfs = run_temp_lifetime(Protocol::Snfs, 64 * 1024, d);
        t.row(vec![
            format!("{secs} s"),
            nfs.write_rpcs.to_string(),
            snfs.write_rpcs.to_string(),
        ]);
    }
    println!("{}", t.render());
}

fn scaling(seed: u64) {
    println!("Server scaling (§2.3): concurrent diskless-workstation clients\n");
    let mut t = TextTable::new(vec![
        "clients",
        "NFS makespan",
        "SNFS makespan",
        "speedup",
        "NFS ops",
        "SNFS ops",
    ]);
    for &n in &[1usize, 2, 4, 8] {
        let nfs = run_scaling(Protocol::Nfs, n, seed);
        let snfs = run_scaling(Protocol::Snfs, n, seed);
        t.row(vec![
            n.to_string(),
            format!("{:.0} s", nfs.makespan.as_secs_f64()),
            format!("{:.0} s", snfs.makespan.as_secs_f64()),
            format!(
                "{:.2}x",
                nfs.makespan.as_secs_f64() / snfs.makespan.as_secs_f64()
            ),
            nfs.ops.total().to_string(),
            snfs.ops.total().to_string(),
        ]);
    }
    println!("{}", t.render());
    let _ = NfsProc::Null; // keep the import obviously used
}

fn matrix(seed: u64, threads: usize) {
    let mut jobs = Vec::new();
    for p in [Protocol::Nfs, Protocol::Snfs] {
        for tmp_remote in [false, true] {
            jobs.push(Experiment::Andrew {
                protocol: p,
                tmp_remote,
                seed,
            });
        }
        jobs.push(Experiment::Sort {
            protocol: p,
            input_bytes: 1408 * 1024,
            update: true,
        });
        jobs.push(Experiment::Scaling {
            protocol: p,
            clients: 4,
            seed,
        });
    }
    let results = run_matrix(&jobs, threads);
    println!(
        "Experiment matrix: {} runs on {} worker thread(s)\n",
        jobs.len(),
        threads.max(1)
    );
    println!("{}", render_matrix(&results));
    for r in &results {
        write_artifact(&format!("matrix/{}.json", slug(&r.label)), &r.stats_json);
    }
}

fn profile(which: &str, seed: u64) -> ExitCode {
    let (name, trace) = match which {
        "andrew" => {
            // The paper's headline configuration: SNFS with /tmp remote.
            let run = run_andrew_with(
                TestbedParams {
                    protocol: Protocol::Snfs,
                    tmp_remote: true,
                    trace: true,
                    ..TestbedParams::default()
                },
                seed,
            );
            ("andrew_snfs", run.trace)
        }
        "andrew-pipelined" => {
            // Same workload with every perf-mode pipeline enabled.
            let run = run_andrew_with(
                TestbedParams {
                    protocol: Protocol::Snfs,
                    tmp_remote: true,
                    server_io: ServerIoParams::pipelined(),
                    write_behind: WriteBehindParams::pipelined(),
                    trace: true,
                    ..TestbedParams::default()
                },
                seed,
            );
            ("andrew_snfs_pipelined", run.trace)
        }
        "scaling" => {
            let run = run_scaling_with(
                TestbedParams {
                    protocol: Protocol::Snfs,
                    tmp_remote: true,
                    server_io: ServerIoParams::pipelined(),
                    trace: true,
                    ..TestbedParams::default()
                },
                4,
                seed,
            );
            ("scaling_pipelined_4", run.trace)
        }
        "flush" => {
            let run = run_flush_with(
                "pipelined",
                TestbedParams {
                    protocol: Protocol::Snfs,
                    update_enabled: false,
                    write_behind: WriteBehindParams::pipelined(),
                    trace: true,
                    ..TestbedParams::default()
                },
                64,
            );
            ("flush_pipelined", run.trace)
        }
        _ => return usage(),
    };
    let trace = trace.expect("tracing was requested");
    let p = profile_trace(&trace.events);
    println!("Latency profile: {which} (seed {seed})\n");
    println!("{}", report::profile_table(&p));
    write_artifact(&format!("profile_{name}.json"), &p.to_json());
    ExitCode::SUCCESS
}

fn compare(a: &str, b: &str, args: &[String]) -> ExitCode {
    let mut opts = CompareOptions::default();
    if let Some(pct) = args
        .windows(2)
        .find(|w| w[0] == "--threshold")
        .and_then(|w| w[1].parse::<f64>().ok())
    {
        opts.rel_threshold = pct / 100.0;
    }
    let read = |p: &str| std::fs::read_to_string(p).map_err(|e| format!("read {p}: {e}"));
    let (ta, tb) = match (read(a), read(b)) {
        (Ok(x), Ok(y)) => (x, y),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    match compare_json(&ta, &tb, &opts) {
        Ok(r) => {
            print!("{}", r.render());
            if r.ok() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

fn parse_threads(args: &[String]) -> usize {
    args.windows(2)
        .find(|w| w[0] == "--threads")
        .and_then(|w| w[1].parse().ok())
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let seed = parse_seed(&args);
    let mut words = args
        .iter()
        .filter(|a| !a.starts_with("--") && a.parse::<u64>().is_err());
    let cmd = match words.next() {
        Some(c) => c.as_str(),
        None => return usage(),
    };
    let arg = words.next().map(String::as_str);
    match (cmd, arg) {
        ("table", Some("5-1")) => table_5_1(seed),
        ("table", Some("5-2")) => table_5_2(seed),
        ("table", Some("5-3")) => table_5_3(),
        ("table", Some("5-4")) => table_5_4(),
        ("table", Some("5-5")) => table_5_5(),
        ("table", Some("5-6")) => table_5_6(),
        ("figure", Some(f @ ("5-1" | "5-2"))) => figure(f, seed),
        ("micro", None) => micro(),
        ("lifetime", None) => lifetime(),
        ("scaling", None) => scaling(seed),
        ("matrix", None) => matrix(seed, parse_threads(&args)),
        ("profile", Some(w)) => return profile(w, seed),
        ("compare", Some(a)) => {
            let Some(b) = words.next().map(String::as_str) else {
                return usage();
            };
            return compare(a, b, &args);
        }
        ("all", None) => {
            table_5_1(seed);
            table_5_2(seed);
            table_5_3();
            table_5_4();
            table_5_5();
            table_5_6();
            figure("5-1", seed);
            figure("5-2", seed);
            micro();
            lifetime();
            scaling(seed);
        }
        _ => return usage(),
    }
    ExitCode::SUCCESS
}
