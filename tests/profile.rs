//! Causal latency profiler: claim coverage, exact phase accounting,
//! byte-stable artifacts, execution identity, and the regression-diff
//! gate (`spritely compare`).

use spritely::harness::{
    compare_json, run_andrew_with, run_flush_with, run_scaling_with, AndrewRun, CompareOptions,
    DelegationParams, Protocol, ServerIoParams, Testbed, TestbedParams, WriteBehindParams,
};
use spritely::trace::{profile_trace, EventKind};
use spritely::vfs::OpenFlags;

fn andrew(trace: bool) -> AndrewRun {
    run_andrew_with(
        TestbedParams {
            protocol: Protocol::Snfs,
            tmp_remote: true,
            trace,
            ..TestbedParams::default()
        },
        42,
    )
}

#[test]
fn every_rpc_claimed_once_and_phases_partition_each_span() {
    let run = andrew(true);
    let trace = run.trace.as_ref().expect("tracing was on");
    let rpc_calls = trace
        .events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::RpcCall { .. }))
        .count() as u64;
    let p = profile_trace(&trace.events);
    assert_eq!(p.total_rpcs, rpc_calls, "profiler saw every RpcCall");
    assert_eq!(
        p.claims.total(),
        rpc_calls,
        "each RpcCall lands in exactly one claim class: {:?}",
        p.claims
    );
    assert!(p.claims.op > 0, "ops claimed RPCs");
    for op in &p.ops {
        let sum: u64 = op.phase_us.iter().sum();
        assert_eq!(
            sum,
            op.total_us(),
            "span {}@{} does not partition its wall time",
            op.op,
            op.begin_us
        );
    }
    assert!(
        p.attributed_fraction() >= 0.99,
        "Andrew attribution below 99%: {:.4}",
        p.attributed_fraction()
    );
}

/// A delegation recall is a server-originated RPC issued inside the
/// conflicting open's handler, and the return it provokes is a client
/// RPC riding the callback — both are new RPC shapes the delegation
/// subsystem introduced, and the profiler must claim every one of them
/// or the partition invariant (`claims.total() == total_rpcs`) breaks.
#[test]
fn recall_rpcs_are_claimed_by_the_profiler() {
    let tb = Testbed::build_with_clients(
        TestbedParams {
            protocol: Protocol::Snfs,
            delegation: DelegationParams::pipelined(),
            trace: true,
            ..TestbedParams::default()
        },
        2,
    );
    {
        let p = tb.proc();
        let h = tb.sim.spawn(async move {
            let fd = p
                .open("/remote/doc", OpenFlags::create_write())
                .await
                .unwrap();
            p.write(fd, &[7u8; 4 * 4096]).await.unwrap();
            p.close(fd).await.unwrap();
        });
        tb.sim.run_until(h);
    }
    {
        // The conflicting open: recalls client 0's write delegation.
        let p = tb.clients[1].proc(&tb.sim);
        let h = tb.sim.spawn(async move {
            let fd = p.open("/remote/doc", OpenFlags::read()).await.unwrap();
            while !p.read(fd, 4096).await.unwrap().is_empty() {}
            p.close(fd).await.unwrap();
        });
        tb.sim.run_until(h);
    }
    let server = tb.snfs_server.clone().expect("snfs server");
    assert_eq!(server.delegation_stats().recalls, 1, "a recall happened");
    let trace = tb.finish_trace().expect("tracing on");
    let rpc_calls = trace
        .events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::RpcCall { .. }))
        .count() as u64;
    let p = profile_trace(&trace.events);
    assert_eq!(p.total_rpcs, rpc_calls, "profiler saw every RpcCall");
    assert_eq!(
        p.claims.total(),
        rpc_calls,
        "each RpcCall — recall callback and delegation return included — \
         lands in exactly one claim class: {:?}",
        p.claims
    );
    assert!(
        p.claims.callback >= 1,
        "the recall was claimed as a handler-issued callback: {:?}",
        p.claims
    );
}

#[test]
fn scaling_run_attribution_is_above_99_percent() {
    let run = run_scaling_with(
        TestbedParams {
            protocol: Protocol::Snfs,
            tmp_remote: true,
            server_io: ServerIoParams::pipelined(),
            trace: true,
            ..TestbedParams::default()
        },
        4,
        42,
    );
    let trace = run.trace.as_ref().expect("tracing was on");
    let p = profile_trace(&trace.events);
    assert_eq!(p.claims.total(), p.total_rpcs);
    assert!(
        p.attributed_fraction() >= 0.99,
        "scaling attribution below 99%: {:.4}",
        p.attributed_fraction()
    );
}

#[test]
fn profile_json_is_byte_identical_for_the_same_seed() {
    let a = andrew(true);
    let b = andrew(true);
    let pa = profile_trace(&a.trace.expect("traced").events);
    let pb = profile_trace(&b.trace.expect("traced").events);
    assert_eq!(pa.to_json(), pb.to_json());
}

#[test]
fn profiling_is_pure_post_processing() {
    // A traced run (whose snapshot now carries the profile section)
    // must execute identically to the untraced run: tracing and
    // profiling never await, never consume randomness.
    let traced = andrew(true);
    let untraced = andrew(false);
    assert_eq!(traced.times.total(), untraced.times.total());
    assert_eq!(traced.ops_with_tail.total(), untraced.ops_with_tail.total());
    assert!(traced.stats.profile.is_some());
    assert!(untraced.stats.profile.is_none());
    let mut stripped = traced.stats.clone();
    stripped.profile = None;
    assert_eq!(
        stripped.to_json(),
        untraced.stats.to_json(),
        "snapshots identical once the profile section is removed"
    );
}

#[test]
fn compare_gate_flags_an_injected_regression() {
    let run = run_flush_with(
        "pipelined",
        TestbedParams {
            protocol: Protocol::Snfs,
            update_enabled: false,
            write_behind: WriteBehindParams::pipelined(),
            trace: true,
            ..TestbedParams::default()
        },
        64,
    );
    let json = run.stats.to_json();

    // Same document: clean bill of health.
    let same = compare_json(&json, &json, &CompareOptions::default()).expect("parse");
    assert!(same.ok(), "identical snapshots must compare clean");

    // Inject a >= 10% regression into one numeric leaf.
    let key = "\"rpc_total\":";
    let i = json.find(key).expect("snapshot has rpc_total") + key.len();
    let end = i + json[i..]
        .find(|c: char| !c.is_ascii_digit())
        .expect("number terminated");
    let v: u64 = json[i..end].parse().expect("numeric rpc_total");
    let bumped = format!("{}{}{}", &json[..i], v * 2, &json[end..]);
    let diff = compare_json(&json, &bumped, &CompareOptions::default()).expect("parse");
    assert!(!diff.ok(), "doubled rpc_total must be flagged");
    assert!(diff.diffs.iter().any(|d| d.path.contains("rpc_total")));
}
