//! The parallel experiment-matrix determinism contract: for any matrix
//! of experiments and any worker-thread count, `run_matrix` returns
//! results byte-identical to serial execution, in job order. Each run
//! is an isolated single-threaded simulation, so parallelism can only
//! change wall-clock time, never a result — this test pins that.

use proptest::prelude::*;
use spritely::harness::{run_matrix, Experiment, Protocol};

/// A small pool of cheap experiments the random matrices draw from.
fn job_pool() -> Vec<Experiment> {
    vec![
        Experiment::Sort {
            protocol: Protocol::Nfs,
            input_bytes: 281 * 1024,
            update: true,
        },
        Experiment::Sort {
            protocol: Protocol::Snfs,
            input_bytes: 281 * 1024,
            update: false,
        },
        Experiment::Scaling {
            protocol: Protocol::Snfs,
            clients: 2,
            seed: 11,
        },
        Experiment::Scaling {
            protocol: Protocol::Nfs,
            clients: 2,
            seed: 12,
        },
        Experiment::Andrew {
            protocol: Protocol::Snfs,
            tmp_remote: true,
            seed: 13,
        },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random matrices (with repeats — the same job twice must produce
    /// the same bytes twice) run on random thread counts match serial.
    #[test]
    fn parallel_matrix_is_byte_identical_to_serial(
        picks in proptest::collection::vec(0usize..5, 1..5),
        threads in 2usize..6,
    ) {
        let pool = job_pool();
        let jobs: Vec<Experiment> = picks.iter().map(|&i| pool[i]).collect();
        let serial = run_matrix(&jobs, 1);
        let parallel = run_matrix(&jobs, threads);
        prop_assert_eq!(&serial, &parallel);
        // Results come back in job order under both schedules.
        for (job, res) in jobs.iter().zip(&serial) {
            prop_assert_eq!(&job.label(), &res.label);
        }
        // Repeated jobs reproduce their bytes exactly.
        for (i, a) in picks.iter().enumerate() {
            for (j, b) in picks.iter().enumerate().skip(i + 1) {
                if a == b {
                    prop_assert_eq!(&serial[i].stats_json, &serial[j].stats_json);
                }
            }
        }
    }
}
