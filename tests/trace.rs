//! The trace subsystem end to end: determinism (same seed ⇒ byte-equal
//! traces), non-interference (tracing must not change results), the
//! invariant checker's teeth (hand-forged bad traces are caught), and a
//! checker pass over the write-behind eviction scenarios.

use spritely::harness::{
    report, run_andrew_with, run_flush_with, run_sort_with, Protocol, RemoteClient, Testbed,
    TestbedParams, TraceReport, WriteBehindParams,
};
use spritely::proto::{ClientId, FileHandle, NfsProc, BLOCK_SIZE};
use spritely::snfs::SnfsClient;
use spritely::trace::{Cause, EventKind, FState, TraceEvent};
use spritely::vfs::OpenFlags;

fn traced_params(protocol: Protocol, tmp_remote: bool) -> TestbedParams {
    TestbedParams {
        protocol,
        tmp_remote,
        trace: true,
        ..TestbedParams::default()
    }
}

fn snfs_client(tb: &Testbed, i: usize) -> SnfsClient {
    match &tb.clients[i].remote {
        RemoteClient::Snfs(c) => c.clone(),
        _ => panic!("expected an SNFS client"),
    }
}

#[test]
fn same_seed_andrew_traces_are_byte_identical() {
    let a = run_andrew_with(traced_params(Protocol::Snfs, true), 42);
    let b = run_andrew_with(traced_params(Protocol::Snfs, true), 42);
    let (ta, tb) = (a.trace.expect("traced"), b.trace.expect("traced"));
    assert!(!ta.events.is_empty(), "trace captured events");
    assert_eq!(
        ta.to_jsonl(),
        tb.to_jsonl(),
        "identical seeds must produce byte-identical traces"
    );
    assert_eq!(ta.to_chrome_json(), tb.to_chrome_json());
}

#[test]
fn full_andrew_trace_has_zero_violations() {
    let run = run_andrew_with(traced_params(Protocol::Snfs, true), 42);
    let trace = run.trace.expect("traced");
    assert!(
        trace.ok(),
        "checker flagged a real run:\n{}",
        report::trace_summary(&trace)
    );
    // The summary must reflect the same verdict.
    assert!(report::trace_summary(&trace).contains("checker: OK"));
}

/// Tracing must be a pure observer: the paper tables rendered from a
/// traced run are byte-identical to the untraced run's. Covers all six
/// `table_5_*` artifacts (5-1/5-2 from Andrew, 5-3/5-4 from the sort
/// with update daemons, 5-5/5-6 with infinite write-delay).
#[test]
fn tracing_does_not_change_any_table() {
    let andrew = |trace| {
        [
            (Protocol::Nfs, false),
            (Protocol::Nfs, true),
            (Protocol::Snfs, false),
            (Protocol::Snfs, true),
        ]
        .map(|(p, tmp)| {
            run_andrew_with(
                TestbedParams {
                    protocol: p,
                    tmp_remote: tmp,
                    trace,
                    ..TestbedParams::default()
                },
                42,
            )
        })
    };
    let (plain, traced) = (andrew(false), andrew(true));
    assert_eq!(report::table_5_1(&plain), report::table_5_1(&traced));
    assert_eq!(report::table_5_2(&plain), report::table_5_2(&traced));

    let sort = |trace, update| {
        [Protocol::Nfs, Protocol::Snfs].map(|p| {
            run_sort_with(
                TestbedParams {
                    protocol: p,
                    tmp_remote: true,
                    update_enabled: update,
                    trace,
                    ..TestbedParams::default()
                },
                281 * 1024,
            )
        })
    };
    // Tables 5-3/5-4 (update daemons on) and 5-5/5-6 (infinite delay).
    for update in [true, false] {
        let (plain, traced) = (sort(false, update), sort(true, update));
        assert_eq!(report::sort_table(&plain), report::sort_table(&traced));
        assert_eq!(
            report::sort_rpc_table(&plain),
            report::sort_rpc_table(&traced)
        );
    }
}

fn ev(seq: u64, kind: EventKind) -> TraceEvent {
    TraceEvent {
        seq,
        t_us: seq * 10,
        parent: 0,
        kind,
    }
}

#[test]
fn checker_catches_injected_illegal_transition() {
    let fh = FileHandle::new(1, 10, 0);
    let events = vec![
        ev(
            1,
            EventKind::Transition {
                fh,
                cause: Cause::OpenRead,
                client: ClientId(1),
                from: FState::Closed,
                to: FState::OneReader,
                version: 1,
            },
        ),
        // Forged: a read open cannot take OneReader straight to
        // OneWriter.
        ev(
            2,
            EventKind::Transition {
                fh,
                cause: Cause::OpenRead,
                client: ClientId(2),
                from: FState::OneReader,
                to: FState::OneWriter,
                version: 1,
            },
        ),
    ];
    let report = TraceReport::from_events(events);
    assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
    assert_eq!(report.violations[0].invariant, "legal-transition");
    assert_eq!(report.violations[0].seq, 2);
}

#[test]
fn checker_catches_transition_from_wrong_tracked_state() {
    let fh = FileHandle::new(1, 11, 0);
    // Claims from=MULT_RDRS but the file was never opened: tracked
    // state is CLOSED, so the continuity check fires.
    let events = vec![ev(
        1,
        EventKind::Transition {
            fh,
            cause: Cause::CloseRead,
            client: ClientId(1),
            from: FState::MultReaders,
            to: FState::OneReader,
            version: 1,
        },
    )];
    let report = TraceReport::from_events(events);
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.invariant == "legal-transition" && v.detail.contains("tracked state")),
        "{:?}",
        report.violations
    );
}

#[test]
fn checker_catches_forged_stale_version_read() {
    let fh = FileHandle::new(1, 12, 0);
    let events = vec![
        // c1 granted a cached read at v1.
        ev(
            1,
            EventKind::OpenGrant {
                client: ClientId(1),
                fh,
                version: 1,
                prev_version: 0,
                cache_enabled: true,
                write: false,
            },
        ),
        // c2 then opens for write at v2.
        ev(
            2,
            EventKind::OpenGrant {
                client: ClientId(2),
                fh,
                version: 2,
                prev_version: 1,
                cache_enabled: true,
                write: true,
            },
        ),
        // Forged: c1 serves a cache read at v1, older than the latest
        // open-for-write version v2 — the invalidation was skipped.
        ev(
            3,
            EventKind::CacheRead {
                client: ClientId(1),
                fh,
                version: 1,
            },
        ),
    ];
    let report = TraceReport::from_events(events);
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.invariant == "stale-read" && v.seq == 3),
        "{:?}",
        report.violations
    );
}

#[test]
fn checker_catches_flush_of_cancelled_write() {
    let fh = FileHandle::new(1, 13, 0);
    let events = vec![
        ev(
            1,
            EventKind::WriteCancel {
                client: ClientId(1),
                fh,
                from_blk: 0,
                blocks: 4,
            },
        ),
        // Forged: a Write RPC for the removed file after cancellation.
        ev(
            2,
            EventKind::RpcCall {
                from: ClientId(1),
                xid: 7,
                proc: NfsProc::Write,
                fh: Some(fh),
                offset: 0,
                len: BLOCK_SIZE as u64,
            },
        ),
    ];
    let report = TraceReport::from_events(events);
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.invariant == "cancelled-write"),
        "{:?}",
        report.violations
    );
}

#[test]
fn checker_catches_fsync_ok_with_unacknowledged_blocks() {
    let fh = FileHandle::new(1, 14, 0);
    let events = vec![
        ev(
            1,
            EventKind::BlockDirty {
                client: ClientId(1),
                fh,
                blk: 0,
            },
        ),
        // Forged: fsync claims success but no Write RPC ever completed.
        ev(
            2,
            EventKind::FsyncOk {
                client: ClientId(1),
                fh,
            },
        ),
    ];
    let report = TraceReport::from_events(events);
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.invariant == "fsync-claims"),
        "{:?}",
        report.violations
    );
}

#[test]
fn traced_flush_run_upholds_all_invariants() {
    let run = run_flush_with(
        "pipelined",
        TestbedParams {
            protocol: Protocol::Snfs,
            update_enabled: false,
            write_behind: WriteBehindParams::pipelined(),
            trace: true,
            ..TestbedParams::default()
        },
        64,
    );
    let trace = run.trace.expect("traced");
    assert!(
        trace.ok(),
        "checker flagged flush run:\n{}",
        report::trace_summary(&trace)
    );
    // The fsync's success claim is backed by checked Write replies.
    assert!(trace
        .events
        .iter()
        .any(|e| matches!(e.kind, EventKind::FsyncOk { .. })));
}

/// Write-behind eviction under a tiny cache, traced and checked: blocks
/// evicted mid-stream are written back before the file is re-read.
#[test]
fn traced_cache_eviction_writebacks_are_clean() {
    let tb = Testbed::build(TestbedParams {
        protocol: Protocol::Snfs,
        update_enabled: false,
        client_cache_blocks: 8,
        write_behind: WriteBehindParams::pipelined(),
        trace: true,
        ..TestbedParams::default()
    });
    let p = tb.proc();
    let h = tb.sim.spawn(async move {
        let fd = p
            .open("/remote/evict", OpenFlags::create_write())
            .await
            .unwrap();
        // 4x the cache: most blocks must be evicted (written back).
        let chunk = vec![0x5Au8; BLOCK_SIZE];
        for i in 0..32 {
            p.write_at(fd, (i * BLOCK_SIZE) as u64, &chunk)
                .await
                .unwrap();
        }
        p.close(fd).await.unwrap();
        let fd = p.open("/remote/evict", OpenFlags::read()).await.unwrap();
        let mut total = 0usize;
        loop {
            let data = p.read(fd, BLOCK_SIZE as u32).await.unwrap();
            if data.is_empty() {
                break;
            }
            assert!(data.iter().all(|&b| b == 0x5A));
            total += data.len();
        }
        assert_eq!(total, 32 * BLOCK_SIZE);
        p.close(fd).await.unwrap();
    });
    tb.sim.run_until(h);
    let trace = tb.finish_trace().expect("traced");
    assert!(
        trace.ok(),
        "checker flagged eviction scenario:\n{}",
        report::trace_summary(&trace)
    );
}

/// Removing a file while its evicted blocks are still queued must
/// cancel those write-backs, not flush them (paper §4.4); the checker's
/// cancelled-write invariant watches the trace for exactly that.
#[test]
fn traced_remove_during_eviction_cancels_writebacks() {
    let tb = Testbed::build(TestbedParams {
        protocol: Protocol::Snfs,
        update_enabled: false,
        client_cache_blocks: 8,
        trace: true,
        ..TestbedParams::default()
    });
    let client = snfs_client(&tb, 0);
    let p = tb.proc();
    let h = tb.sim.spawn(async move {
        let fd = p
            .open("/remote/doomed", OpenFlags::create_write())
            .await
            .unwrap();
        let chunk = vec![0xEEu8; BLOCK_SIZE];
        for i in 0..16 {
            p.write_at(fd, (i * BLOCK_SIZE) as u64, &chunk)
                .await
                .unwrap();
        }
        p.close(fd).await.unwrap();
        // Remove before the delayed writes age out: every queued block
        // must be cancelled.
        p.unlink("/remote/doomed").await.unwrap();
    });
    tb.sim.run_until(h);
    let trace = tb.finish_trace().expect("traced");
    assert!(
        trace.ok(),
        "checker flagged remove-during-eviction:\n{}",
        report::trace_summary(&trace)
    );
    assert!(
        trace
            .events
            .iter()
            .any(|e| matches!(e.kind, EventKind::WriteCancel { .. })),
        "removal must cancel the delayed writes"
    );
    assert!(client.stats().cancelled_blocks > 0);
}

#[test]
fn stats_snapshot_serializes_for_both_protocols() {
    for protocol in [Protocol::Nfs, Protocol::Snfs] {
        let run = run_andrew_with(traced_params(protocol, true), 42);
        let json = run.stats.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"rpc_total\""));
        assert!(json.contains("\"clients\""));
        if protocol == Protocol::Snfs {
            assert!(json.contains("\"callbacks_sent\""));
        }
    }
}
