//! Shape assertions for the paper's headline results: who wins, by
//! roughly what factor, and where the crossovers fall. Absolute numbers
//! are our simulator's, not the authors' testbed's; these tests pin the
//! *relationships* the paper reports.

use spritely::harness::{run_andrew, run_sort_experiment, run_temp_lifetime, Protocol};
use spritely::proto::NfsProc;
use spritely::sim::SimDuration;

#[test]
fn sort_ordering_and_factors_match_the_paper() {
    // Table 5-3: local < SNFS << NFS, with NFS roughly 2-4x slower.
    let local = run_sort_experiment(Protocol::Local, 1408 * 1024, true);
    let nfs = run_sort_experiment(Protocol::Nfs, 1408 * 1024, true);
    let snfs = run_sort_experiment(Protocol::Snfs, 1408 * 1024, true);
    assert!(local.elapsed <= snfs.elapsed);
    assert!(snfs.elapsed < nfs.elapsed);
    let ratio = nfs.elapsed.as_secs_f64() / snfs.elapsed.as_secs_f64();
    assert!(
        ratio > 1.5,
        "paper: SNFS completes ~2x faster; got ratio {ratio:.2}"
    );
}

#[test]
fn sort_rpc_profile_matches_table_5_4() {
    // NFS re-reads what it wrote (close bug) and writes everything
    // through; SNFS barely reads and writes far less during the run.
    let nfs = run_sort_experiment(Protocol::Nfs, 1408 * 1024, true);
    let snfs = run_sort_experiment(Protocol::Snfs, 1408 * 1024, true);
    assert!(nfs.ops.get(NfsProc::Read) > 500);
    assert!(nfs.ops.get(NfsProc::Write) > 500);
    assert!(snfs.ops.get(NfsProc::Read) < nfs.ops.get(NfsProc::Read) / 5);
    assert!(snfs.ops.get(NfsProc::Write) < nfs.ops.get(NfsProc::Write) / 2);
    assert!(snfs.ops.total() < nfs.ops.total());
}

#[test]
fn infinite_write_delay_matches_tables_5_5_and_5_6() {
    // With /etc/update disabled, SNFS writes (almost) nothing to the
    // server and approaches local-disk time; NFS is unchanged.
    let nfs_on = run_sort_experiment(Protocol::Nfs, 1408 * 1024, true);
    let nfs_off = run_sort_experiment(Protocol::Nfs, 1408 * 1024, false);
    let snfs_off = run_sort_experiment(Protocol::Snfs, 1408 * 1024, false);
    let local_off = run_sort_experiment(Protocol::Local, 1408 * 1024, false);
    assert_eq!(
        nfs_on.ops.get(NfsProc::Write),
        nfs_off.ops.get(NfsProc::Write),
        "NFS performance/traffic unchanged by update (§5.4)"
    );
    assert!(
        snfs_off.ops.get(NfsProc::Write) <= 2,
        "SNFS writes ~0 blocks with infinite write-delay"
    );
    let ratio = snfs_off.elapsed.as_secs_f64() / local_off.elapsed.as_secs_f64();
    assert!(
        ratio < 1.25,
        "SNFS matches or beats local for short-lived temps; ratio {ratio:.2}"
    );
}

#[test]
fn temp_file_lifetime_crossover_is_the_update_interval() {
    // The crossover the paper's §5.4 implies: below the 30 s tick a temp
    // file is free under SNFS, above it the data escapes.
    let below = run_temp_lifetime(Protocol::Snfs, 128 * 1024, SimDuration::from_secs(10));
    let above = run_temp_lifetime(Protocol::Snfs, 128 * 1024, SimDuration::from_secs(70));
    assert_eq!(below.write_rpcs, 0);
    assert!(above.write_rpcs >= 30, "post-tick the blocks were flushed");
    let nfs = run_temp_lifetime(Protocol::Nfs, 128 * 1024, SimDuration::from_secs(10));
    assert!(nfs.write_rpcs >= 32, "NFS pays regardless of lifetime");
}

#[test]
fn andrew_shape_matches_table_5_1() {
    // /tmp remote: the configuration the paper highlights (diskless
    // workstation). SNFS wins Copy and Make and the total by 10-40%.
    let nfs = run_andrew(Protocol::Nfs, true, 42);
    let snfs = run_andrew(Protocol::Snfs, true, 42);
    assert!(snfs.times.copy < nfs.times.copy, "Copy favors SNFS");
    assert!(snfs.times.make < nfs.times.make, "Make favors SNFS");
    let total_gain = 1.0 - snfs.times.total().as_secs_f64() / nfs.times.total().as_secs_f64();
    assert!(
        (0.08..0.45).contains(&total_gain),
        "payload total 15-20%-ish faster; got {:.0}%",
        total_gain * 100.0
    );
    // Table 5-2 aggregates: lookups dominate both protocols equally;
    // SNFS moves far less data.
    assert!(nfs.ops_with_tail.get(NfsProc::Lookup) * 2 >= nfs.ops_with_tail.total() / 2);
    assert_eq!(
        nfs.ops_with_tail.get(NfsProc::Lookup) + 51,
        snfs.ops_with_tail.get(NfsProc::Lookup) + 51,
        "same lookup protocol on both sides"
    );
    assert!(
        snfs.ops_with_tail.data_transfers() < nfs.ops_with_tail.data_transfers() / 2,
        "paper: 42% fewer data-transfer operations (ours is stronger)"
    );
    // Server disk writes 30%+ lower under SNFS (paper: 30-35%).
    assert!(snfs.server_disk.writes * 10 <= nfs.server_disk.writes * 7);
}

#[test]
fn figures_5_1_5_2_series_are_plausible() {
    let nfs = run_andrew(Protocol::Nfs, true, 42);
    let snfs = run_andrew(Protocol::Snfs, true, 42);
    // Both series have enough points to plot and nonzero activity.
    assert!(nfs.rate_buckets.len() >= 8);
    assert!(snfs.rate_buckets.len() >= 8);
    let nfs_peak = nfs.rate_buckets.iter().map(|b| b.total).max().unwrap();
    let snfs_peak = snfs.rate_buckets.iter().map(|b| b.total).max().unwrap();
    assert!(nfs_peak > 0 && snfs_peak > 0);
    // Utilization stays a fraction (sampler sanity).
    for &(_, u) in nfs.util_samples.iter().chain(&snfs.util_samples) {
        assert!((0.0..=1.0).contains(&u), "utilization {u} out of range");
    }
    // Paper: load correlates with aggregate call rate. Check the
    // correlation coefficient is clearly positive for NFS.
    let r = correlation(
        &nfs.util_samples.iter().map(|&(_, u)| u).collect::<Vec<_>>(),
        &nfs.rate_buckets
            .iter()
            .map(|b| b.total as f64)
            .collect::<Vec<_>>(),
    );
    assert!(r > 0.5, "CPU load should track call rate; r = {r:.2}");
}

fn correlation(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len());
    if n < 3 {
        return 0.0;
    }
    let (a, b) = (&a[..n], &b[..n]);
    let ma = a.iter().sum::<f64>() / n as f64;
    let mb = b.iter().sum::<f64>() / n as f64;
    let cov: f64 = a.iter().zip(b).map(|(x, y)| (x - ma) * (y - mb)).sum();
    let va: f64 = a.iter().map(|x| (x - ma).powi(2)).sum();
    let vb: f64 = b.iter().map(|y| (y - mb).powi(2)).sum();
    if va == 0.0 || vb == 0.0 {
        0.0
    } else {
        cov / (va.sqrt() * vb.sqrt())
    }
}

#[test]
fn ablation_close_bug_accounts_for_part_of_the_gap() {
    // §5.3: the authors estimate the invalidate-on-close bug explains
    // less than a quarter of the sort difference. Fixing it must help
    // NFS but not erase SNFS's lead.
    let nfs = run_sort_experiment(Protocol::Nfs, 1408 * 1024, true);
    let fixed = run_sort_experiment(Protocol::NfsFixed, 1408 * 1024, true);
    let snfs = run_sort_experiment(Protocol::Snfs, 1408 * 1024, true);
    assert!(fixed.elapsed <= nfs.elapsed);
    assert!(
        fixed.ops.get(NfsProc::Read) < nfs.ops.get(NfsProc::Read) / 2,
        "fixed client re-reads far less"
    );
    assert!(
        snfs.elapsed < fixed.elapsed,
        "write-through still loses to delayed write-back"
    );
}

#[test]
fn ablation_delayed_close_reduces_rpc_count() {
    // §6.2: delayed close should cut open/close traffic on the Andrew
    // benchmark (header files are reopened constantly).
    let snfs = run_andrew(Protocol::Snfs, false, 42);
    let dc = run_andrew(Protocol::SnfsDelayedClose, false, 42);
    let oc = |r: &spritely::harness::AndrewRun| {
        r.ops_with_tail.get(NfsProc::Open) + r.ops_with_tail.get(NfsProc::Close)
    };
    assert!(
        oc(&dc) * 2 < oc(&snfs),
        "delayed close halves open/close traffic: {} vs {}",
        oc(&dc),
        oc(&snfs)
    );
    assert!(dc.times.total() <= snfs.times.total());
}

#[test]
fn server_capacity_gap_grows_with_clients() {
    // §2.3: the more active clients, the bigger SNFS's advantage — the
    // server disk is NFS's bottleneck, and SNFS keeps traffic off it.
    use spritely::harness::run_scaling;
    let speedup = |n: usize| {
        let nfs = run_scaling(Protocol::Nfs, n, 42);
        let snfs = run_scaling(Protocol::Snfs, n, 42);
        nfs.makespan.as_secs_f64() / snfs.makespan.as_secs_f64()
    };
    let one = speedup(1);
    let four = speedup(4);
    assert!(
        four > one,
        "advantage grows with load: {one:.2}x -> {four:.2}x"
    );
    assert!(
        four > 1.3,
        "multi-client speedup is substantial: {four:.2}x"
    );
}
