//! Crash behaviour (paper §2.4 / §3.2): what each design loses when a
//! machine dies, and how the SNFS server copes with an unreachable
//! client.

use spritely::harness::{Protocol, RemoteClient, Testbed, TestbedParams};
use spritely::proto::BLOCK_SIZE;
use spritely::sim::SimDuration;

#[test]
fn nfs_close_makes_data_crash_safe() {
    // §2.4: NFS writes synchronously, so once close returns, a client
    // crash loses nothing.
    let tb = Testbed::build(TestbedParams {
        protocol: Protocol::Nfs,
        ..TestbedParams::default()
    });
    let c = match &tb.clients[0].remote {
        RemoteClient::Nfs(c) => c.clone(),
        _ => panic!("expected NFS"),
    };
    let root = tb.server_fs.root();
    let fs = tb.server_fs.clone();
    let sim = tb.sim.clone();
    let h = sim.spawn(async move {
        let (fh, _) = c.create(root, "precious").await.unwrap();
        c.open(fh, true).await.unwrap();
        c.write(fh, 0, &[1u8; 2 * BLOCK_SIZE]).await.unwrap();
        c.close(fh, true).await.unwrap();
        // "Client crashes" — but the data is already stable at the server.
        let stable = fs.stable_contents(fh).unwrap();
        assert_eq!(stable.len(), 2 * BLOCK_SIZE);
        assert!(stable.iter().all(|&b| b == 1));
    });
    sim.run_until(h);
}

#[test]
fn snfs_crash_window_is_bounded_by_the_write_delay() {
    // §2.4: SNFS protects like a local Unix FS — data younger than the
    // update interval is vulnerable; after the tick it is durable.
    let tb = Testbed::build(TestbedParams {
        protocol: Protocol::Snfs,
        ..TestbedParams::default()
    });
    let c = match &tb.clients[0].remote {
        RemoteClient::Snfs(c) => c.clone(),
        _ => panic!("expected SNFS"),
    };
    let root = tb.server_fs.root();
    let fs = tb.server_fs.clone();
    let sim = tb.sim.clone();
    let h = sim.spawn({
        let sim = sim.clone();
        async move {
            let (fh, _) = c.create(root, "early").await.unwrap();
            c.open(fh, true).await.unwrap();
            c.write(fh, 0, &[1u8; BLOCK_SIZE]).await.unwrap();
            c.close(fh, true).await.unwrap();
            // Crash *before* the update tick: the server never saw data.
            let stable = fs.stable_contents(fh).unwrap();
            assert!(
                stable.iter().all(|&b| b == 0),
                "pre-tick crash loses the delayed data (as local Unix would)"
            );
            // Survive past the tick instead: now it is durable.
            sim.sleep(SimDuration::from_secs(65)).await;
            let stable = fs.stable_contents(fh).unwrap();
            assert!(stable.iter().all(|&b| b == 1));
        }
    });
    sim.run_until(h);
}

#[test]
fn explicit_fsync_gives_snfs_crash_safety_on_demand() {
    // §2.2: "an application can use explicit file-flushing operations".
    let tb = Testbed::build(TestbedParams {
        protocol: Protocol::Snfs,
        ..TestbedParams::default()
    });
    let c = match &tb.clients[0].remote {
        RemoteClient::Snfs(c) => c.clone(),
        _ => panic!("expected SNFS"),
    };
    let root = tb.server_fs.root();
    let fs = tb.server_fs.clone();
    let sim = tb.sim.clone();
    let h = sim.spawn(async move {
        let (fh, _) = c.create(root, "careful").await.unwrap();
        c.open(fh, true).await.unwrap();
        c.write(fh, 0, &[7u8; BLOCK_SIZE]).await.unwrap();
        c.fsync(fh).await.unwrap();
        let stable = fs.stable_contents(fh).unwrap();
        assert!(
            stable.iter().all(|&b| b == 7),
            "fsync forced the write-back"
        );
        c.close(fh, true).await.unwrap();
    });
    sim.run_until(h);
}

#[test]
fn local_fs_crash_loses_only_delayed_writes() {
    let tb = Testbed::build(TestbedParams {
        protocol: Protocol::Local,
        ..TestbedParams::default()
    });
    let p = tb.proc();
    let local = tb.clients[0].local_fs.clone();
    let sim = tb.sim.clone();
    let h = sim.spawn(async move {
        use spritely::vfs::OpenFlags;
        let fd = p.open("/f", OpenFlags::create_write()).await.unwrap();
        p.write(fd, &[1u8; BLOCK_SIZE]).await.unwrap();
        p.fsync(fd).await.unwrap();
        p.write_at(fd, BLOCK_SIZE as u64, &[2u8; BLOCK_SIZE])
            .await
            .unwrap();
        p.close(fd).await.unwrap();
        let lost = local.crash();
        assert_eq!(lost, 1, "exactly the un-synced block is lost");
    });
    sim.run_until(h);
}

#[test]
fn snfs_server_survives_client_crash_and_reports_inconsistency() {
    // §3.2: if the client "serving" the callback is down, the server
    // honors the new open but flags possible inconsistency; the dead
    // client's state is dropped.
    use spritely::metrics::OpCounter;
    use spritely::proto::ClientId;
    use spritely::rpcnet::{Caller, CallerParams, EndpointParams};

    let tb = Testbed::build_with_clients(
        TestbedParams {
            protocol: Protocol::Snfs,
            // Keep A's dirty block un-flushed past the server's
            // callback-retry horizon: with the default 30s delay A's
            // write-back daemon would race the ~30s of callback retries
            // and "rescue" the data over its (healthy) main channel —
            // this test is about the data actually being lost.
            snfs_write_delay: SimDuration::from_secs(300),
            ..TestbedParams::default()
        },
        2,
    );
    let a = match &tb.clients[0].remote {
        RemoteClient::Snfs(c) => c.clone(),
        _ => panic!("expected SNFS"),
    };
    let b = match &tb.clients[1].remote {
        RemoteClient::Snfs(c) => c.clone(),
        _ => panic!("expected SNFS"),
    };
    let root = tb.server_fs.root();
    let server = tb.snfs_server.clone().expect("snfs server");
    let sim = tb.sim.clone();
    // Replace A's callback channel with a dead one.
    let kill_a = {
        let sim = sim.clone();
        let net = tb.net.clone();
        let server_cpu = tb.server_cpu.clone();
        let server = server.clone();
        let a = a.clone();
        move || {
            let dead = a.callback_endpoint(
                "dead",
                server_cpu.clone(),
                EndpointParams::default(),
                OpCounter::new(),
            );
            dead.set_alive(false);
            let caller = Caller::new(
                &sim,
                net,
                dead,
                ClientId(0),
                server_cpu,
                CallerParams {
                    timeout: SimDuration::from_millis(200),
                    max_retries: 1,
                    cpu_per_call: SimDuration::ZERO,
                },
            );
            server.register_client(a.client_id(), caller);
        }
    };
    let h = sim.spawn(async move {
        let (fh, _) = a.create(root, "f").await.unwrap();
        a.open(fh, true).await.unwrap();
        a.write(fh, 0, &[1u8; BLOCK_SIZE]).await.unwrap();
        a.close(fh, true).await.unwrap();
        kill_a();
        // B can still open the file. The server retries A's callback
        // past the keepalive horizon before declaring it dead, so B's
        // first open attempts time out at the RPC layer and it re-opens
        // — as a real hard-mounted client would.
        let mut opened = false;
        for _ in 0..20 {
            if b.open(fh, false).await.is_ok() {
                opened = true;
                break;
            }
        }
        assert!(opened, "open honored despite A being down");
        assert!(server.stats().callbacks_failed >= 1);
        // A's dirty data is lost; B sees the server's (empty) copy and the
        // system keeps functioning.
        let (got, _) = b.read(fh, 0, BLOCK_SIZE as u32).await.unwrap();
        assert!(got.is_empty() || got.iter().all(|&x| x == 0));
        b.close(fh, false).await.unwrap();
        // A later write-open supersedes the lost data entirely.
        b.open(fh, true).await.unwrap();
        b.write(fh, 0, &[9u8; BLOCK_SIZE]).await.unwrap();
        b.close(fh, true).await.unwrap();
    });
    sim.run_until(h);
}
