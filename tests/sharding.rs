//! The sharded namespace end to end (DESIGN.md §18): layout-routed
//! clients over independent server shards, cross-shard rename/link via
//! the two-phase coordination path, stale-layout redirects, and
//! atomicity under seeded network faults.

use spritely::harness::{FaultParams, Protocol, RemoteClient, ShardParams, Testbed, TestbedParams};
use spritely::proto::{default_shard, NfsStatus, BLOCK_SIZE};
use spritely::sim::SimDuration;
use spritely::snfs::SnfsClient;

fn sharded(n: usize, n_clients: usize, trace: bool, faults: FaultParams) -> Testbed {
    Testbed::build_with_clients(
        TestbedParams {
            protocol: Protocol::Snfs,
            shards: ShardParams::sharded(n),
            trace,
            faults,
            ..TestbedParams::default()
        },
        n_clients,
    )
}

fn snfs(tb: &Testbed, i: usize) -> SnfsClient {
    match &tb.clients[i].remote {
        RemoteClient::Snfs(c) => c.clone(),
        _ => panic!("sharded testbeds are SNFS"),
    }
}

/// First name of the form `{prefix}{i}` that the default layout places
/// on `shard` (of `n`).
fn name_on(n: u32, shard: u32, prefix: &str) -> String {
    (0u32..)
        .map(|i| format!("{prefix}{i}"))
        .find(|s| default_shard(s, n) == shard)
        .expect("some index hashes to every shard")
}

#[test]
fn sharded_basic_ops_and_readdir_merges_all_shards() {
    let tb = sharded(2, 1, false, FaultParams::default());
    assert_eq!(tb.shard_hosts.len(), 2);
    let c = snfs(&tb, 0);
    let root = tb.server_fs.root();
    let sim = tb.sim.clone();
    let on0 = name_on(2, 0, "alpha");
    let on1 = name_on(2, 1, "beta");
    let h = sim.spawn({
        let (on0, on1) = (on0.clone(), on1.clone());
        async move {
            for (i, name) in [&on0, &on1].into_iter().enumerate() {
                let (fh, _) = c.create(root, name).await.unwrap();
                c.open(fh, true).await.unwrap();
                c.write(fh, 0, &[i as u8 + 1; BLOCK_SIZE]).await.unwrap();
                c.fsync(fh).await.unwrap();
                c.close(fh, true).await.unwrap();
            }
            // Each file landed on its owning shard's store (fsid = s+1).
            let (fh0, _) = c.lookup(root, &on0).await.unwrap();
            let (fh1, _) = c.lookup(root, &on1).await.unwrap();
            assert_eq!(fh0.fsid, 1, "{on0} owned by shard 0");
            assert_eq!(fh1.fsid, 2, "{on1} owned by shard 1");
            // Root readdir fans out and merges, sorted by name.
            let entries = c.readdir(root).await.unwrap();
            let names: Vec<&str> = entries.iter().map(|e| e.name.as_str()).collect();
            assert!(names.contains(&on0.as_str()) && names.contains(&on1.as_str()));
            let mut sorted = names.clone();
            sorted.sort_unstable();
            assert_eq!(names, sorted, "merged readdir is name-sorted");
            // Data survives a reopen through either shard.
            c.open(fh1, false).await.unwrap();
            let (data, _) = c.read(fh1, 0, BLOCK_SIZE as u32).await.unwrap();
            assert!(data.iter().all(|&b| b == 2));
            c.close(fh1, false).await.unwrap();
        }
    });
    sim.run_until(h);
    // Both shards actually served traffic.
    let snap = tb.stats_snapshot();
    let sh = snap.shards.expect("sharded run has a shards section");
    assert_eq!(sh.n, 2);
    assert!(sh.shards.iter().all(|s| s.rpcs > 0), "{sh:?}");
}

#[test]
fn cross_shard_rename_is_atomic_and_redirects_stale_clients() {
    let tb = sharded(2, 2, true, FaultParams::default());
    let a = snfs(&tb, 0);
    let b = snfs(&tb, 1);
    let root = tb.server_fs.root();
    let sim = tb.sim.clone();
    // src on shard 0, dst's default owner is shard 1 → the rename must
    // cross shards, with shard 0 coordinating.
    let src = name_on(2, 0, "from");
    let dst = name_on(2, 1, "to");
    let h = sim.spawn({
        let (src, dst) = (src.clone(), dst.clone());
        async move {
            let (fh, _) = a.create(root, &src).await.unwrap();
            a.open(fh, true).await.unwrap();
            a.write(fh, 0, &[7u8; BLOCK_SIZE]).await.unwrap();
            a.fsync(fh).await.unwrap();
            a.close(fh, true).await.unwrap();
            // B warms its view of the namespace (and its cached layout).
            assert_eq!(b.lookup(root, &dst).await.unwrap_err(), NfsStatus::NoEnt);
            a.rename(root, &src, root, &dst).await.unwrap();
            // The source name is gone everywhere; the destination
            // resolves — for B this takes a WrongShard redirect, since
            // its cached layout still points at dst's default owner.
            assert_eq!(a.lookup(root, &src).await.unwrap_err(), NfsStatus::NoEnt);
            let (via_b, _) = b.lookup(root, &dst).await.unwrap();
            assert_eq!(via_b, fh, "same file object after the move");
            assert_eq!(via_b.fsid, 1, "the file stayed on its store");
            // The bytes came along.
            b.open(fh, false).await.unwrap();
            let (data, _) = b.read(fh, 0, BLOCK_SIZE as u32).await.unwrap();
            assert!(data.iter().all(|&x| x == 7));
            b.close(fh, false).await.unwrap();
        }
    });
    sim.run_until(h);
    // The authoritative layout moved the name and bumped the epoch.
    let layout = tb.layout.as_ref().expect("sharded testbed has a layout");
    assert_eq!(layout.borrow().owner(&dst), 0, "dst now owned by shard 0");
    assert!(layout.borrow().epoch() > 1);
    let snap = tb.stats_snapshot();
    let sh = snap.shards.expect("shards section");
    assert_eq!(
        sh.shards.iter().map(|s| s.cross_renames).sum::<u64>(),
        1,
        "exactly one coordinated rename: {sh:?}"
    );
    assert!(
        sh.shards.iter().map(|s| s.wrong_shard_replies).sum::<u64>() >= 1,
        "B's stale lookup was redirected: {sh:?}"
    );
    // Checker rule 10 holds over the whole trace.
    let report = tb.finish_trace().expect("trace was on");
    assert!(report.ok(), "violations: {:?}", report.violations);
}

#[test]
fn cross_shard_link_spans_stores_and_keeps_one_inode() {
    let tb = sharded(2, 1, true, FaultParams::default());
    let c = snfs(&tb, 0);
    let root = tb.server_fs.root();
    let sim = tb.sim.clone();
    let orig = name_on(2, 1, "file");
    let alias = name_on(2, 0, "ln");
    let h = sim.spawn({
        let (orig, alias) = (orig.clone(), alias.clone());
        async move {
            let (fh, _) = c.create(root, &orig).await.unwrap();
            c.open(fh, true).await.unwrap();
            c.write(fh, 0, b"linked bytes").await.unwrap();
            c.fsync(fh).await.unwrap();
            c.close(fh, true).await.unwrap();
            assert_eq!(fh.fsid, 2, "original owned by shard 1");
            // alias's default owner is shard 0, but the file lives on
            // shard 1's store — the link must cross shards.
            let attr = c.link(fh, root, &alias).await.unwrap();
            assert_eq!(attr.nlink, 2);
            let (via_alias, _) = c.lookup(root, &alias).await.unwrap();
            assert_eq!(via_alias, fh, "hard link shares the inode");
            // Linking again fails cleanly (target exists), without
            // leaving a dangling transaction.
            assert_eq!(
                c.link(fh, root, &alias).await.unwrap_err(),
                NfsStatus::Exist
            );
            // Removing the original keeps the file reachable via alias.
            c.remove(root, &orig, Some(fh)).await.unwrap();
            let (still, _) = c.lookup(root, &alias).await.unwrap();
            assert_eq!(still, fh);
            c.open(fh, false).await.unwrap();
            let (data, _) = c.read(fh, 0, 64).await.unwrap();
            assert_eq!(&data, b"linked bytes");
            c.close(fh, false).await.unwrap();
        }
    });
    sim.run_until(h);
    let snap = tb.stats_snapshot();
    let sh = snap.shards.expect("shards section");
    assert_eq!(sh.shards.iter().map(|s| s.cross_links).sum::<u64>(), 1);
    let report = tb.finish_trace().expect("trace was on");
    assert!(report.ok(), "violations: {:?}", report.violations);
}

#[test]
fn cross_shard_ops_converge_under_seeded_faults() {
    // Drops, duplicates, delays and reply losses hit every link —
    // including the inter-shard coordination callers — while one client
    // cross-renames a small working set. The prepare/commit retry loops
    // and the participants' idempotent transaction table must keep every
    // rename atomic, and rule 10 must hold on the trace.
    const FILES: u32 = 3;
    let tb = sharded(4, 1, true, FaultParams::chaos(42));
    let c = snfs(&tb, 0);
    let root = tb.server_fs.root();
    let sim = tb.sim.clone();
    // Destination names chosen so every rename crosses shards.
    let pairs: Vec<(String, String)> = (0..FILES)
        .map(|i| {
            let src = format!("work{i}");
            let s = default_shard(&src, 4);
            let dst = name_on(4, (s + 1) % 4, &format!("moved{i}_"));
            (src, dst)
        })
        .collect();
    let h = sim.spawn({
        let pairs = pairs.clone();
        let sim = sim.clone();
        async move {
            macro_rules! insist {
                ($e:expr) => {{
                    loop {
                        match $e.await {
                            Ok(v) => break v,
                            Err(_) => sim.sleep(SimDuration::from_millis(500)).await,
                        }
                    }
                }};
            }
            for (i, (src, _)) in pairs.iter().enumerate() {
                let (fh, _) = insist!(c.create(root, src));
                insist!(c.open(fh, true));
                insist!(c.write(fh, 0, &[i as u8 + 1; BLOCK_SIZE]));
                insist!(c.fsync(fh));
                insist!(c.close(fh, true));
            }
            for (src, dst) in &pairs {
                // A rename is not idempotent across *calls* (a re-issued
                // rename after a timed-out-but-executed first call sees
                // NoEnt), so the retry loop confirms the outcome by
                // looking the destination up.
                loop {
                    match c.rename(root, src, root, dst).await {
                        Ok(()) => break,
                        Err(_) => {
                            if c.lookup(root, dst).await.is_ok() {
                                break;
                            }
                            sim.sleep(SimDuration::from_millis(500)).await;
                        }
                    }
                }
            }
            // Every destination readable with the right bytes, every
            // source gone.
            for (i, (src, dst)) in pairs.iter().enumerate() {
                let (fh, _) = insist!(c.lookup(root, dst));
                insist!(c.open(fh, false));
                let (data, _) = insist!(c.read(fh, 0, BLOCK_SIZE as u32));
                assert!(data.iter().all(|&x| x == i as u8 + 1), "{dst}");
                insist!(c.close(fh, false));
                loop {
                    match c.lookup(root, src).await {
                        Err(NfsStatus::NoEnt) => break,
                        Err(_) => sim.sleep(SimDuration::from_millis(500)).await,
                        Ok(_) => panic!("{src} must not survive its rename"),
                    }
                }
            }
            // Let write-backs, commits and keepalives drain.
            sim.sleep(SimDuration::from_secs(70)).await;
        }
    });
    sim.run_until(h);
    let snap = tb.stats_snapshot();
    let sh = snap.shards.expect("shards section");
    assert_eq!(
        sh.shards.iter().map(|s| s.cross_renames).sum::<u64>(),
        u64::from(FILES),
        "every rename crossed shards exactly once: {sh:?}"
    );
    let f = snap.faults.expect("faulted run has fault accounting");
    assert!(f.drops + f.dups + f.delays + f.reply_losses > 0, "{f:?}");
    let report = tb.finish_trace().expect("trace was on");
    assert!(report.ok(), "violations: {:?}", report.violations);
}

#[test]
fn chaos_shard_partition_mid_rename_converges() {
    // The packaged shard chaos workload: four shards, two clients, a
    // network partition dropped on the coordinating shard's inter-shard
    // links in the middle of a burst of cross-shard renames, on top of
    // seeded drop/dup/delay faults. The faulted run must converge to a
    // server state digest-identical to the clean run, with zero checker
    // violations and every injected fault absorbed.
    let v = spritely::harness::chaos_shard(21);
    assert!(v.injected() > 0, "chaos run injected no faults");
    assert!(v.converged(), "{}", v.report());
}

#[test]
fn shards_section_absent_in_paper_configuration() {
    // ShardParams::paper() takes the unsharded build path: no shard
    // hosts, no layout, and a snapshot byte-identical to one from
    // before sharding existed.
    let tb = Testbed::build(TestbedParams {
        protocol: Protocol::Snfs,
        shards: ShardParams::paper(),
        ..TestbedParams::default()
    });
    assert!(tb.shard_hosts.is_empty());
    assert!(tb.layout.is_none());
    let json = tb.stats_snapshot().to_json();
    assert!(!json.contains("\"shards\""), "{json}");
    let tb2 = sharded(2, 1, false, FaultParams::default());
    let json2 = tb2.stats_snapshot().to_json();
    assert!(json2.contains("\"shards\":{\"n\":2"), "{json2}");
}
