//! The §7 name-cache extension: SNFS keeps name translations consistent
//! with directory invalidate callbacks; NFS's TTL dnlc is faster but can
//! serve stale names — the same probabilistic-vs-guaranteed split as for
//! data.

use spritely::harness::{Protocol, RemoteClient, Testbed, TestbedParams};
use spritely::proto::NfsStatus;
use spritely::sim::SimDuration;

fn two<C: Clone>(tb: &Testbed, pick: impl Fn(&RemoteClient) -> Option<C>) -> (C, C) {
    (
        pick(&tb.clients[0].remote).expect("client 0"),
        pick(&tb.clients[1].remote).expect("client 1"),
    )
}

#[test]
fn snfs_name_cache_hits_and_stays_correct_locally() {
    let tb = Testbed::build(TestbedParams {
        protocol: Protocol::Snfs,
        name_cache: true,
        ..TestbedParams::default()
    });
    let c = match &tb.clients[0].remote {
        RemoteClient::Snfs(c) => c.clone(),
        _ => panic!("expected SNFS"),
    };
    let root = tb.server_fs.root();
    let counter = tb.counter.clone();
    let sim = tb.sim.clone();
    let h = sim.spawn(async move {
        c.create(root, "f").await.unwrap();
        let (fh1, _) = c.lookup(root, "f").await.unwrap();
        let lookups = counter.get(spritely::proto::NfsProc::Lookup);
        for _ in 0..10 {
            let (fh, _) = c.lookup(root, "f").await.unwrap();
            assert_eq!(fh, fh1);
        }
        assert_eq!(
            counter.get(spritely::proto::NfsProc::Lookup),
            lookups,
            "repeat lookups served locally"
        );
        assert!(c.stats().name_cache_hits >= 10);
        // A local remove must drop the entry immediately.
        c.remove(root, "f", Some(fh1)).await.unwrap();
        assert_eq!(c.lookup(root, "f").await.unwrap_err(), NfsStatus::NoEnt);
    });
    sim.run_until(h);
}

#[test]
fn snfs_name_cache_is_invalidated_by_remote_namespace_changes() {
    // Client A caches the translation; client B removes the file. A's
    // next lookup must see NoEnt *immediately* — the server invalidated
    // A's directory entries before acknowledging B's remove.
    let tb = Testbed::build_with_clients(
        TestbedParams {
            protocol: Protocol::Snfs,
            name_cache: true,
            ..TestbedParams::default()
        },
        2,
    );
    let (a, b) = two(&tb, |r| match r {
        RemoteClient::Snfs(c) => Some(c.clone()),
        _ => None,
    });
    let root = tb.server_fs.root();
    let sim = tb.sim.clone();
    let h = sim.spawn(async move {
        let (fh, _) = a.create(root, "shared").await.unwrap();
        // A populates its name cache.
        let _ = a.lookup(root, "shared").await.unwrap();
        let _ = a.lookup(root, "shared").await.unwrap();
        assert!(a.stats().name_cache_hits >= 1);
        // B removes the file.
        b.remove(root, "shared", Some(fh)).await.unwrap();
        // A must not resolve the stale name.
        assert_eq!(
            a.lookup(root, "shared").await.unwrap_err(),
            NfsStatus::NoEnt,
            "SNFS name cache must never serve a stale translation"
        );
    });
    sim.run_until(h);
}

#[test]
fn snfs_name_cache_sees_remote_renames() {
    let tb = Testbed::build_with_clients(
        TestbedParams {
            protocol: Protocol::Snfs,
            name_cache: true,
            ..TestbedParams::default()
        },
        2,
    );
    let (a, b) = two(&tb, |r| match r {
        RemoteClient::Snfs(c) => Some(c.clone()),
        _ => None,
    });
    let root = tb.server_fs.root();
    let sim = tb.sim.clone();
    let h = sim.spawn(async move {
        let (fh, _) = a.create(root, "old").await.unwrap();
        let _ = a.lookup(root, "old").await.unwrap();
        b.rename(root, "old", root, "new").await.unwrap();
        assert_eq!(a.lookup(root, "old").await.unwrap_err(), NfsStatus::NoEnt);
        let (fh2, _) = a.lookup(root, "new").await.unwrap();
        assert_eq!(fh, fh2, "same file under its new name");
    });
    sim.run_until(h);
}

#[test]
fn nfs_dnlc_can_serve_stale_names() {
    // The contrast: within the TTL, a removed file still resolves at
    // another client. (This is the behaviour "more extensive caching of
    // name translations" bought in post-1989 NFS, §5.2.)
    let tb = Testbed::build_with_clients(
        TestbedParams {
            protocol: Protocol::Nfs,
            name_cache: true,
            ..TestbedParams::default()
        },
        2,
    );
    let (a, b) = two(&tb, |r| match r {
        RemoteClient::Nfs(c) => Some(c.clone()),
        _ => None,
    });
    let root = tb.server_fs.root();
    let sim = tb.sim.clone();
    let h = sim.spawn({
        let sim = sim.clone();
        async move {
            let (fh, _) = a.create(root, "shared").await.unwrap();
            let _ = a.lookup(root, "shared").await.unwrap();
            b.remove(root, "shared").await.unwrap();
            b.forget(fh);
            // Inside the TTL the stale name still resolves at A.
            let stale = a.lookup(root, "shared").await;
            assert!(stale.is_ok(), "dnlc serves the stale name inside its TTL");
            // After the TTL expires, truth returns.
            sim.sleep(SimDuration::from_secs(31)).await;
            assert_eq!(
                a.lookup(root, "shared").await.unwrap_err(),
                NfsStatus::NoEnt
            );
        }
    });
    sim.run_until(h);
}

#[test]
fn name_cache_cuts_lookup_traffic_without_changing_results() {
    // Same workload, with and without the cache: identical directory
    // contents observed, far fewer lookup RPCs.
    let run = |name_cache: bool| {
        let tb = Testbed::build(TestbedParams {
            protocol: Protocol::Snfs,
            name_cache,
            ..TestbedParams::default()
        });
        let p = tb.proc();
        let counter = tb.counter.clone();
        let sim = tb.sim.clone();
        let h = sim.spawn(async move {
            use spritely::vfs::OpenFlags;
            p.mkdir("/remote/proj").await.unwrap();
            for i in 0..8 {
                let fd = p
                    .open(&format!("/remote/proj/f{i}"), OpenFlags::create_write())
                    .await
                    .unwrap();
                p.write(fd, b"data").await.unwrap();
                p.close(fd).await.unwrap();
            }
            // Re-stat everything a few times (the ScanDir pattern).
            for _ in 0..5 {
                for i in 0..8 {
                    let st = p.stat(&format!("/remote/proj/f{i}")).await.unwrap();
                    assert_eq!(st.size, 4);
                }
            }
            counter.get(spritely::proto::NfsProc::Lookup)
        });
        sim.run_until(h)
    };
    let without = run(false);
    let with = run(true);
    assert!(
        with * 3 < without,
        "expected a large lookup reduction: {with} vs {without}"
    );
}
