//! Paper-mode regression gate: with the default `ServerIoParams::paper()`
//! server (FIFO disk arm, 896-block cache, no single-flight coalescing,
//! 4 service threads) and the default `TransportParams::paper()` wire
//! (one message per RPC, no piggybacked attributes, shared bus, fixed
//! retransmit timeout), every `table_5_*` artifact must stay
//! byte-identical to the committed `baselines/` snapshot. This is what
//! lets the server I/O pipeline (`ServerIoParams::pipelined`) and the
//! transport pipeline (`TransportParams::pipelined`) land as pure
//! opt-ins: the measured 1989 system is reproduced bit-for-bit unless
//! the pipelines are asked for.
//!
//! Each test re-runs the exact run set of the corresponding bench target
//! (same protocols, sizes, and seed) and compares the rendered artifact —
//! `"{title}\n{body}\n"`, as `spritely_bench::artifact` writes it —
//! against the baseline file.

use std::fs;

use spritely::harness::{
    report, run_andrew, run_sort_experiment, Protocol, SortRun, Testbed, TestbedParams,
};
use spritely::trace::EventKind;
use spritely::vfs::OpenFlags;

fn baseline(name: &str) -> String {
    let path = format!("{}/baselines/{name}", env!("CARGO_MANIFEST_DIR"));
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

fn rendered(title: &str, body: &str) -> String {
    format!("{title}\n{body}\n")
}

#[test]
fn paper_mode_andrew_tables_match_baselines() {
    // The run set of benches/table_5_1.rs; table_5_2.rs uses the same
    // four remote runs (determinism makes re-renders byte-equal).
    let mut runs = vec![
        run_andrew(Protocol::Local, false, 42),
        run_andrew(Protocol::Nfs, false, 42),
        run_andrew(Protocol::Nfs, true, 42),
        run_andrew(Protocol::Snfs, false, 42),
        run_andrew(Protocol::Snfs, true, 42),
    ];
    // The default transport is the paper's: the batcher, the piggyback
    // consumer, and the compound machinery must all be inert.
    for r in &runs {
        let t = &r.stats.transport;
        assert_eq!(t.batches, 0, "paper transport must never batch");
        assert_eq!(t.saved_round_trips, 0);
        assert_eq!(t.attr_elisions, 0, "paper clients must probe, not elide");
        assert!(
            r.stats.delegation.is_none(),
            "paper runs must not report a delegation section"
        );
    }
    assert_eq!(
        rendered(
            "Table 5-1: Andrew benchmark elapsed time (seconds)",
            &report::table_5_1(&runs)
        ),
        baseline("table_5_1.txt"),
        "table 5-1 drifted from its baseline in paper mode"
    );
    runs.remove(0); // table 5-2 has no local column
    assert_eq!(
        rendered(
            "Table 5-2: RPC calls for the Andrew benchmark (steady state)",
            &report::table_5_2(&runs)
        ),
        baseline("table_5_2.txt"),
        "table 5-2 drifted from its baseline in paper mode"
    );
}

/// Delegations compiled in but disabled (the default
/// `DelegationParams::paper()`) must be invisible: an open/close-heavy
/// two-client run — the exact shape that would trigger grants and a
/// recall with the subsystem on — emits zero `Deleg*` trace events,
/// reports no delegation section in the snapshot, and leaves every
/// counter at zero. Together with the byte-identical tables above this
/// pins the subsystem as a pure opt-in.
#[test]
fn paper_mode_keeps_delegations_inert() {
    let tb = Testbed::build_with_clients(
        TestbedParams {
            protocol: Protocol::Snfs,
            trace: true,
            ..TestbedParams::default()
        },
        2,
    );
    {
        let p = tb.proc();
        let h = tb.sim.spawn(async move {
            let fd = p
                .open("/remote/doc", OpenFlags::create_write())
                .await
                .unwrap();
            p.write(fd, &[7u8; 4 * 4096]).await.unwrap();
            p.close(fd).await.unwrap();
            for _ in 0..3 {
                let fd = p.open("/remote/doc", OpenFlags::read()).await.unwrap();
                p.close(fd).await.unwrap();
            }
        });
        tb.sim.run_until(h);
    }
    {
        let p = tb.clients[1].proc(&tb.sim);
        let h = tb.sim.spawn(async move {
            let fd = p.open("/remote/doc", OpenFlags::read()).await.unwrap();
            while !p.read(fd, 4096).await.unwrap().is_empty() {}
            p.close(fd).await.unwrap();
        });
        tb.sim.run_until(h);
    }
    let snap = tb.stats_snapshot();
    assert!(
        snap.delegation.is_none(),
        "disabled delegations must not appear in the snapshot"
    );
    let server = tb.snfs_server.clone().expect("snfs server");
    assert_eq!(server.delegation_count(), 0);
    assert_eq!(
        server.delegation_stats(),
        Default::default(),
        "no server-side delegation counter may move"
    );
    let trace = tb.finish_trace().expect("tracing on");
    assert!(trace.ok());
    let deleg_events = trace
        .events
        .iter()
        .filter(|e| {
            matches!(
                e.kind,
                EventKind::DelegGrant { .. }
                    | EventKind::DelegRecall { .. }
                    | EventKind::DelegReturn { .. }
                    | EventKind::DelegLocalOpen { .. }
            )
        })
        .count();
    assert_eq!(deleg_events, 0, "paper mode must emit zero Deleg* events");
}

#[test]
fn paper_mode_sort_tables_match_baselines() {
    let sweep = |update: bool| -> Vec<SortRun> {
        let mut runs = Vec::new();
        for &kb in &[281u64, 1408, 2816] {
            for p in [Protocol::Local, Protocol::Nfs, Protocol::Snfs] {
                runs.push(run_sort_experiment(p, kb * 1024, update));
            }
        }
        runs
    };
    let mut upd = sweep(true);
    let mut noupd = sweep(false);
    assert_eq!(
        rendered(
            "Table 5-3: results of sort benchmark",
            &report::sort_table(&upd)
        ),
        baseline("table_5_3.txt"),
        "table 5-3 drifted from its baseline in paper mode"
    );
    assert_eq!(
        rendered(
            "Table 5-5: sort benchmark, infinite write-delay",
            &report::sort_table(&noupd)
        ),
        baseline("table_5_5.txt"),
        "table 5-5 drifted from its baseline in paper mode"
    );
    // Tables 5-4/5-6 are row subsets of the sweeps (NFS/SNFS at 2816 KB);
    // the sweep order is [.., Local, Nfs, Snfs] per size, largest last.
    let snfs_u = upd.remove(8);
    let nfs_u = upd.remove(7);
    let v54 = [nfs_u, snfs_u];
    assert_eq!(
        rendered(
            "Table 5-4: RPC calls for sort benchmark",
            &report::sort_rpc_table(&v54)
        ),
        baseline("table_5_4.txt"),
        "table 5-4 drifted from its baseline in paper mode"
    );
    let snfs_n = noupd.remove(8);
    let nfs_n = noupd.remove(7);
    let [nfs_u, snfs_u] = v54;
    let v56 = vec![nfs_u, nfs_n, snfs_u, snfs_n];
    assert_eq!(
        rendered(
            "Table 5-6: RPC calls for sort, update on/off (2816 KB)",
            &report::sort_rpc_table(&v56)
        ),
        baseline("table_5_6.txt"),
        "table 5-6 drifted from its baseline in paper mode"
    );
}
