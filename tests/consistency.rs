//! Cross-client consistency matrix: the behaviours §2 of the paper
//! contrasts, exercised end-to-end through the full stack (VFS → client →
//! RPC → server → disk).

use spritely::harness::{Protocol, RemoteClient, Testbed, TestbedParams};
use spritely::proto::BLOCK_SIZE;
use spritely::sim::SimDuration;

fn two_snfs(tb: &Testbed) -> (spritely::snfs::SnfsClient, spritely::snfs::SnfsClient) {
    match (&tb.clients[0].remote, &tb.clients[1].remote) {
        (RemoteClient::Snfs(a), RemoteClient::Snfs(b)) => (a.clone(), b.clone()),
        _ => panic!("expected SNFS clients"),
    }
}

fn two_nfs(tb: &Testbed) -> (spritely::nfs::NfsClient, spritely::nfs::NfsClient) {
    match (&tb.clients[0].remote, &tb.clients[1].remote) {
        (RemoteClient::Nfs(a), RemoteClient::Nfs(b)) => (a.clone(), b.clone()),
        _ => panic!("expected NFS clients"),
    }
}

#[test]
fn snfs_sequential_write_sharing_is_consistent() {
    // Writer writes and closes (data still dirty client-side); a second
    // client then opens and must see everything.
    let tb = Testbed::build_with_clients(
        TestbedParams {
            protocol: Protocol::Snfs,
            ..TestbedParams::default()
        },
        2,
    );
    let (a, b) = two_snfs(&tb);
    let root = tb.server_fs.root();
    let sim = tb.sim.clone();
    let h = sim.spawn(async move {
        let (fh, _) = a.create(root, "f").await.unwrap();
        a.open(fh, true).await.unwrap();
        let payload: Vec<u8> = (0..3 * BLOCK_SIZE).map(|i| (i % 251) as u8).collect();
        a.write(fh, 0, &payload).await.unwrap();
        a.close(fh, true).await.unwrap();
        assert!(a.dirty_blocks() > 0, "data is still delayed at A");
        b.open(fh, false).await.unwrap();
        let (got, eof) = b.read(fh, 0, (3 * BLOCK_SIZE) as u32).await.unwrap();
        assert!(eof);
        assert_eq!(got, payload, "B sees A's delayed data via the callback");
        b.close(fh, false).await.unwrap();
    });
    sim.run_until(h);
}

#[test]
fn nfs_sequential_write_sharing_is_consistent_too() {
    // The case NFS *does* get right (§2.3): writer closes before the
    // reader opens, and the open-time probe sees the new mtime.
    let tb = Testbed::build_with_clients(
        TestbedParams {
            protocol: Protocol::Nfs,
            ..TestbedParams::default()
        },
        2,
    );
    let (a, b) = two_nfs(&tb);
    let root = tb.server_fs.root();
    let sim = tb.sim.clone();
    let h = sim.spawn(async move {
        let (fh, _) = a.create(root, "f").await.unwrap();
        a.open(fh, true).await.unwrap();
        a.write(fh, 0, &[9u8; BLOCK_SIZE]).await.unwrap();
        a.close(fh, true).await.unwrap();
        b.open(fh, false).await.unwrap();
        let (got, _) = b.read(fh, 0, BLOCK_SIZE as u32).await.unwrap();
        assert!(got.iter().all(|&x| x == 9));
        b.close(fh, false).await.unwrap();
        // A rewrites; B reopens and must see version 2.
        a.open(fh, true).await.unwrap();
        a.write(fh, 0, &[8u8; BLOCK_SIZE]).await.unwrap();
        a.close(fh, true).await.unwrap();
        b.open(fh, false).await.unwrap();
        let (got, _) = b.read(fh, 0, BLOCK_SIZE as u32).await.unwrap();
        assert!(got.iter().all(|&x| x == 8));
        b.close(fh, false).await.unwrap();
    });
    sim.run_until(h);
}

#[test]
fn nfs_concurrent_write_sharing_serves_stale_data() {
    // The failure §2.1 describes: concurrent sharing within the probe
    // window. (This is an assertion that our baseline reproduces the
    // *flaw*, which the comparison depends on.)
    let tb = Testbed::build_with_clients(
        TestbedParams {
            protocol: Protocol::Nfs,
            ..TestbedParams::default()
        },
        2,
    );
    let (a, b) = two_nfs(&tb);
    let root = tb.server_fs.root();
    let sim = tb.sim.clone();
    let h = sim.spawn(async move {
        let (fh, _) = a.create(root, "f").await.unwrap();
        a.open(fh, true).await.unwrap();
        a.write(fh, 0, &[1u8; BLOCK_SIZE]).await.unwrap();
        a.fsync(fh).await.unwrap();
        b.open(fh, false).await.unwrap();
        let _ = b.read(fh, 0, BLOCK_SIZE as u32).await.unwrap();
        // A updates while both hold the file open; B re-reads immediately.
        a.write(fh, 0, &[2u8; BLOCK_SIZE]).await.unwrap();
        a.fsync(fh).await.unwrap();
        let (got, _) = b.read(fh, 0, BLOCK_SIZE as u32).await.unwrap();
        assert!(
            got.iter().all(|&x| x == 1),
            "stale read inside the attribute-cache window"
        );
        a.close(fh, true).await.unwrap();
        b.close(fh, false).await.unwrap();
    });
    sim.run_until(h);
}

#[test]
fn snfs_concurrent_write_sharing_never_stale() {
    let tb = Testbed::build_with_clients(
        TestbedParams {
            protocol: Protocol::Snfs,
            ..TestbedParams::default()
        },
        2,
    );
    let (a, b) = two_snfs(&tb);
    let root = tb.server_fs.root();
    let sim = tb.sim.clone();
    let h = sim.spawn(async move {
        let (fh, _) = a.create(root, "f").await.unwrap();
        a.open(fh, true).await.unwrap();
        a.write(fh, 0, &[1u8; BLOCK_SIZE]).await.unwrap();
        b.open(fh, false).await.unwrap();
        // Ten update/read rounds: every read sees the latest write.
        for gen in 2..12u8 {
            a.write(fh, 0, &vec![gen; BLOCK_SIZE]).await.unwrap();
            let (got, _) = b.read(fh, 0, BLOCK_SIZE as u32).await.unwrap();
            assert!(
                got.iter().all(|&x| x == gen),
                "generation {gen} must be visible immediately"
            );
        }
        a.close(fh, true).await.unwrap();
        b.close(fh, false).await.unwrap();
    });
    sim.run_until(h);
}

#[test]
fn snfs_three_clients_reader_population() {
    // read-only sharing caches everywhere; a late writer invalidates all.
    let tb = Testbed::build_with_clients(
        TestbedParams {
            protocol: Protocol::Snfs,
            ..TestbedParams::default()
        },
        3,
    );
    let clients: Vec<_> = tb
        .clients
        .iter()
        .map(|c| match &c.remote {
            RemoteClient::Snfs(s) => s.clone(),
            _ => panic!("expected SNFS"),
        })
        .collect();
    let root = tb.server_fs.root();
    let sim = tb.sim.clone();
    let h = sim.spawn(async move {
        let (fh, _) = clients[0].create(root, "shared").await.unwrap();
        clients[0].open(fh, true).await.unwrap();
        clients[0].write(fh, 0, &[7u8; BLOCK_SIZE]).await.unwrap();
        clients[0].close(fh, true).await.unwrap();
        // All three read (and cache).
        for c in &clients {
            c.open(fh, false).await.unwrap();
            let (got, _) = c.read(fh, 0, BLOCK_SIZE as u32).await.unwrap();
            assert!(got.iter().all(|&x| x == 7));
            c.close(fh, false).await.unwrap();
        }
        // Client 2 becomes a writer; 0 and 1 reopen and must see the new
        // data even though they had cached copies.
        clients[2].open(fh, true).await.unwrap();
        clients[2].write(fh, 0, &[8u8; BLOCK_SIZE]).await.unwrap();
        clients[2].close(fh, true).await.unwrap();
        for c in &clients[..2] {
            c.open(fh, false).await.unwrap();
            let (got, _) = c.read(fh, 0, BLOCK_SIZE as u32).await.unwrap();
            assert!(got.iter().all(|&x| x == 8), "version check invalidated");
            c.close(fh, false).await.unwrap();
        }
    });
    sim.run_until(h);
}

#[test]
fn snfs_update_daemon_makes_data_durable_without_sharing() {
    let tb = Testbed::build(TestbedParams {
        protocol: Protocol::Snfs,
        ..TestbedParams::default()
    });
    let c = match &tb.clients[0].remote {
        RemoteClient::Snfs(s) => s.clone(),
        _ => panic!("expected SNFS"),
    };
    let root = tb.server_fs.root();
    let fs = tb.server_fs.clone();
    let sim = tb.sim.clone();
    let h = sim.spawn({
        let sim = sim.clone();
        async move {
            let (fh, _) = c.create(root, "durable").await.unwrap();
            c.open(fh, true).await.unwrap();
            c.write(fh, 0, &[5u8; 2 * BLOCK_SIZE]).await.unwrap();
            c.close(fh, true).await.unwrap();
            sim.sleep(SimDuration::from_secs(65)).await;
            let stable = fs.stable_contents(fh).unwrap();
            assert_eq!(stable.len(), 2 * BLOCK_SIZE);
            assert!(
                stable.iter().all(|&b| b == 5),
                "data reached stable storage"
            );
        }
    });
    sim.run_until(h);
}
