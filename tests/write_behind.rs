//! The client write-behind pool and the server callback fan-out:
//! determinism of pipelined flushes, consistency under write sharing,
//! and the N−1 concurrent-callback bound (paper §3.2).

use spritely::harness::{
    run_flush, Protocol, RemoteClient, Testbed, TestbedParams, WriteBehindParams,
};
use spritely::metrics::OpCounts;
use spritely::proto::BLOCK_SIZE;
use spritely::sim::SimDuration;
use spritely::snfs::SnfsClient;

fn snfs_client(tb: &Testbed, i: usize) -> SnfsClient {
    match &tb.clients[i].remote {
        RemoteClient::Snfs(c) => c.clone(),
        _ => panic!("expected an SNFS client"),
    }
}

/// One full pipelined-flush scenario: dirty 64 blocks, fsync, drain.
/// Returns everything an RPC trace would distinguish: per-procedure op
/// counts, the flush's simulated duration, and the file's final bytes
/// on the server.
fn pipelined_flush_scenario() -> (OpCounts, SimDuration, Vec<u8>) {
    let tb = Testbed::build(TestbedParams {
        protocol: Protocol::Snfs,
        update_enabled: false,
        write_behind: WriteBehindParams::pipelined(),
        ..TestbedParams::default()
    });
    let c = snfs_client(&tb, 0);
    let root = tb.server_fs.root();
    let sim = tb.sim.clone();
    let h = sim.spawn({
        let sim = sim.clone();
        async move {
            let (fh, _) = c.create(root, "wb").await.unwrap();
            c.open(fh, true).await.unwrap();
            let data: Vec<u8> = (0..64 * BLOCK_SIZE).map(|i| (i % 239) as u8).collect();
            c.write(fh, 0, &data).await.unwrap();
            let t0 = sim.now();
            c.fsync(fh).await.unwrap();
            let dt = sim.now().saturating_duration_since(t0);
            c.close(fh, true).await.unwrap();
            (fh, dt)
        }
    });
    let (fh, dt) = sim.run_until(h);
    let fs = tb.server_fs.clone();
    let bytes = sim.block_on(async move {
        fs.read(fh, 0, (64 * BLOCK_SIZE) as u32)
            .await
            .expect("server read")
            .0
    });
    (tb.counter.snapshot(), dt, bytes)
}

#[test]
fn pipelined_flush_is_deterministic() {
    let (ops_a, dt_a, bytes_a) = pipelined_flush_scenario();
    let (ops_b, dt_b, bytes_b) = pipelined_flush_scenario();
    assert_eq!(ops_a, ops_b, "identical RPC counts per procedure");
    assert_eq!(dt_a, dt_b, "identical simulated flush duration");
    assert_eq!(bytes_a, bytes_b, "identical final server state");
    let expected: Vec<u8> = (0..64 * BLOCK_SIZE).map(|i| (i % 239) as u8).collect();
    assert_eq!(bytes_a, expected, "the flushed data is the data written");
}

#[test]
fn write_shared_file_stays_uncached_and_ungathered() {
    // Two clients writing the same file: the server disables caching,
    // so writes go through synchronously — none of them may sit dirty
    // in a cache or travel through the write-behind pool.
    let tb = Testbed::build_with_clients(
        TestbedParams {
            protocol: Protocol::Snfs,
            update_enabled: false,
            write_behind: WriteBehindParams::pipelined(),
            ..TestbedParams::default()
        },
        2,
    );
    let (a, b) = (snfs_client(&tb, 0), snfs_client(&tb, 1));
    let root = tb.server_fs.root();
    let sim = tb.sim.clone();
    let h = sim.spawn({
        let (a, b) = (a.clone(), b.clone());
        async move {
            let (fh, _) = a.create(root, "shared").await.unwrap();
            a.open(fh, true).await.unwrap();
            b.open(fh, true).await.unwrap();
            a.write(fh, 0, &[1u8; 4 * BLOCK_SIZE]).await.unwrap();
            b.write(fh, 4 * BLOCK_SIZE as u64, &[2u8; 4 * BLOCK_SIZE])
                .await
                .unwrap();
            // Each sees the other's writes immediately (write-through +
            // read-through).
            let (got, _) = a
                .read(fh, 4 * BLOCK_SIZE as u64, BLOCK_SIZE as u32)
                .await
                .unwrap();
            assert!(got.iter().all(|&x| x == 2), "A reads B's write");
            let (got, _) = b.read(fh, 0, BLOCK_SIZE as u32).await.unwrap();
            assert!(got.iter().all(|&x| x == 1), "B reads A's write");
            a.close(fh, true).await.unwrap();
            b.close(fh, true).await.unwrap();
        }
    });
    sim.run_until(h);
    for (name, c) in [("A", &a), ("B", &b)] {
        assert_eq!(c.dirty_blocks(), 0, "{name}: nothing delayed");
        assert_eq!(
            c.gather_histogram().count(),
            0,
            "{name}: write-through bypasses the write-behind pool"
        );
        assert_eq!(c.stats().writeback_failures, 0, "{name}: no failures");
    }
}

#[test]
fn callback_fan_out_respects_n_minus_one_bound() {
    // Six clients cache a file as readers; a seventh opens it for
    // write, so the server owes six invalidate callbacks at once. They
    // fan out concurrently but may never exceed the N−1 = 3 callback
    // slots (config::SERVER_THREADS = 4, paper §3.2).
    let tb = Testbed::build_with_clients(
        TestbedParams {
            protocol: Protocol::Snfs,
            update_enabled: false,
            ..TestbedParams::default()
        },
        7,
    );
    let readers: Vec<SnfsClient> = (0..6).map(|i| snfs_client(&tb, i)).collect();
    let writer = snfs_client(&tb, 6);
    let root = tb.server_fs.root();
    let sim = tb.sim.clone();
    let h = sim.spawn({
        let readers = readers.clone();
        let writer = writer.clone();
        async move {
            let (fh, _) = readers[0].create(root, "hot").await.unwrap();
            for r in &readers {
                r.open(fh, false).await.unwrap();
                let _ = r.read(fh, 0, BLOCK_SIZE as u32).await;
            }
            // The write open invalidates every reader before replying.
            writer.open(fh, true).await.unwrap();
            writer.write(fh, 0, &[7u8; BLOCK_SIZE]).await.unwrap();
            writer.close(fh, true).await.unwrap();
            for r in &readers {
                r.close(fh, false).await.unwrap();
            }
        }
    });
    sim.run_until(h);
    let server = tb.snfs_server.as_ref().expect("SNFS server");
    let gauge = server.callback_gauge();
    assert!(
        gauge.peak() >= 2,
        "callbacks did fan out concurrently (peak {})",
        gauge.peak()
    );
    assert!(
        gauge.peak() <= 3,
        "N−1 bound violated: peak {} concurrent callbacks",
        gauge.peak()
    );
    assert_eq!(gauge.current(), 0, "all callbacks completed");
    assert_eq!(server.stats().callbacks_sent, 6, "one per reader");
    assert_eq!(server.stats().callbacks_failed, 0);
    for (i, r) in readers.iter().enumerate() {
        assert_eq!(r.stats().callbacks_served, 1, "reader {i}");
    }
}

#[test]
fn fsync_waits_for_eviction_write_backs() {
    // A cache smaller than the write forces dirty-block evictions whose
    // write-back RPCs proceed in the background. fsync must not return
    // until those land too — a fire-and-forget eviction would let fsync
    // report Ok while the evicted data was still in flight.
    let tb = Testbed::build(TestbedParams {
        protocol: Protocol::Snfs,
        update_enabled: false,
        client_cache_blocks: 4,
        ..TestbedParams::default()
    });
    let c = snfs_client(&tb, 0);
    let root = tb.server_fs.root();
    let sim = tb.sim.clone();
    let fs = tb.server_fs.clone();
    let data: Vec<u8> = (0..8 * BLOCK_SIZE)
        .map(|i| (i / BLOCK_SIZE + 1) as u8)
        .collect();
    let h = sim.spawn({
        let (c, data) = (c.clone(), data.clone());
        async move {
            let (fh, _) = c.create(root, "evict").await.unwrap();
            c.open(fh, true).await.unwrap();
            c.write(fh, 0, &data).await.unwrap();
            c.fsync(fh).await.unwrap();
            // At this instant — before any further simulated time — every
            // block must be on the server, the evicted ones included.
            assert_eq!(c.pending_evictions(), 0, "fsync waited out evictions");
            let (bytes, _, _) = fs.read(fh, 0, (8 * BLOCK_SIZE) as u32).await.unwrap();
            assert_eq!(bytes, data, "server holds all blocks at fsync return");
            c.close(fh, true).await.unwrap();
        }
    });
    sim.run_until(h);
    assert_eq!(c.dirty_blocks(), 0);
    assert_eq!(c.stats().writeback_failures, 0);
    assert_eq!(c.stats().written_back_blocks, 8, "each block written once");
}

#[test]
fn callback_write_back_covers_in_flight_evictions() {
    // The cross-client version of the same ordering: B's open makes the
    // server call A back for its dirty data; the callback may not reply
    // ok until A's in-flight eviction write-backs have landed, or B
    // could read stale bytes.
    let tb = Testbed::build_with_clients(
        TestbedParams {
            protocol: Protocol::Snfs,
            update_enabled: false,
            client_cache_blocks: 4,
            ..TestbedParams::default()
        },
        2,
    );
    let (a, b) = (snfs_client(&tb, 0), snfs_client(&tb, 1));
    let root = tb.server_fs.root();
    let sim = tb.sim.clone();
    let h = sim.spawn({
        let (a, b) = (a.clone(), b.clone());
        async move {
            let (fh, _) = a.create(root, "handoff").await.unwrap();
            a.open(fh, true).await.unwrap();
            let data: Vec<u8> = (0..8 * BLOCK_SIZE)
                .map(|i| (i / BLOCK_SIZE + 1) as u8)
                .collect();
            a.write(fh, 0, &data).await.unwrap();
            a.close(fh, true).await.unwrap();
            b.open(fh, false).await.unwrap();
            let (got, _) = b.read(fh, 0, (8 * BLOCK_SIZE) as u32).await.unwrap();
            assert_eq!(got, data, "B sees all of A's data, evicted blocks too");
            b.close(fh, false).await.unwrap();
        }
    });
    sim.run_until(h);
    assert!(a.stats().callbacks_served >= 1, "the open did call A back");
    assert_eq!(a.pending_evictions(), 0);
    assert_eq!(a.stats().writeback_failures, 0);
}

#[test]
fn paper_mode_pool_matches_serial_flush_rpc_for_rpc() {
    // The fidelity contract: with the default (paper-mode) pool the
    // flush is byte-identical to the old serial one — one single-block
    // RPC per dirty block, one in flight, same simulated duration
    // profile as run_flush asserts elsewhere. Checked here end-to-end
    // through the public runner.
    let run = run_flush("paper", WriteBehindParams::default(), 32);
    assert_eq!(run.write_rpcs, 32);
    assert_eq!(run.peak_inflight, 1);
    assert!((run.mean_batch - 1.0).abs() < 1e-9);
    let again = run_flush("paper", WriteBehindParams::default(), 32);
    assert_eq!(run.flush_time, again.flush_time, "deterministic too");
}
