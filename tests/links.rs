//! Hard links and symbolic links through the whole stack (RFC 1094
//! LINK/SYMLINK/READLINK): local FS, baseline NFS, and SNFS — including
//! the interplay with delayed-write cancellation and the consistent name
//! cache.

use spritely::harness::{Protocol, RemoteClient, Testbed, TestbedParams};
use spritely::proto::{FileType, NfsStatus, BLOCK_SIZE};
use spritely::vfs::OpenFlags;

fn testbed(protocol: Protocol) -> Testbed {
    Testbed::build(TestbedParams {
        protocol,
        ..TestbedParams::default()
    })
}

#[test]
fn symlink_resolution_follows_and_lstat_does_not() {
    for protocol in [Protocol::Local, Protocol::Nfs, Protocol::Snfs] {
        let tb = testbed(protocol);
        let p = tb.proc();
        let sim = tb.sim.clone();
        let h = sim.spawn(async move {
            let fd = p
                .open("/remote/real", OpenFlags::create_write())
                .await
                .unwrap();
            p.write(fd, b"payload").await.unwrap();
            p.close(fd).await.unwrap();
            p.symlink("/remote/real", "/remote/alias").await.unwrap();
            // stat follows.
            let st = p.stat("/remote/alias").await.unwrap();
            assert_eq!(st.ftype, FileType::Regular, "{protocol:?}");
            assert_eq!(st.size, 7);
            // lstat does not.
            let lst = p.lstat("/remote/alias").await.unwrap();
            assert_eq!(lst.ftype, FileType::Symlink);
            assert_eq!(p.readlink("/remote/alias").await.unwrap(), "/remote/real");
            // open follows: reading through the alias sees the payload.
            let fd = p.open("/remote/alias", OpenFlags::read()).await.unwrap();
            assert_eq!(p.read(fd, 100).await.unwrap(), b"payload");
            p.close(fd).await.unwrap();
        });
        sim.run_until(h);
    }
}

#[test]
fn relative_symlinks_resolve_against_their_directory() {
    let tb = testbed(Protocol::Snfs);
    let p = tb.proc();
    let sim = tb.sim.clone();
    let h = sim.spawn(async move {
        p.mkdir("/remote/a").await.unwrap();
        p.mkdir("/remote/a/b").await.unwrap();
        let fd = p
            .open("/remote/a/target.txt", OpenFlags::create_write())
            .await
            .unwrap();
        p.write(fd, b"x").await.unwrap();
        p.close(fd).await.unwrap();
        // ../target.txt from inside /remote/a/b.
        p.symlink("../target.txt", "/remote/a/b/rel").await.unwrap();
        let st = p.stat("/remote/a/b/rel").await.unwrap();
        assert_eq!(st.size, 1);
        // A dotted chain: ./b/rel from /remote/a.
        p.symlink("./b/rel", "/remote/a/chain").await.unwrap();
        assert_eq!(p.stat("/remote/a/chain").await.unwrap().size, 1);
    });
    sim.run_until(h);
}

#[test]
fn symlink_loops_are_cut() {
    let tb = testbed(Protocol::Local);
    let p = tb.proc();
    let sim = tb.sim.clone();
    let h = sim.spawn(async move {
        p.symlink("/remote/loop_b", "/remote/loop_a").await.unwrap();
        p.symlink("/remote/loop_a", "/remote/loop_b").await.unwrap();
        assert_eq!(
            p.stat("/remote/loop_a").await.unwrap_err(),
            NfsStatus::Inval,
            "ELOOP equivalent"
        );
    });
    sim.run_until(h);
}

#[test]
fn dangling_symlinks_stat_noent_but_lstat_ok() {
    let tb = testbed(Protocol::Nfs);
    let p = tb.proc();
    let sim = tb.sim.clone();
    let h = sim.spawn(async move {
        p.symlink("/remote/nowhere", "/remote/dangling")
            .await
            .unwrap();
        assert_eq!(
            p.stat("/remote/dangling").await.unwrap_err(),
            NfsStatus::NoEnt
        );
        assert_eq!(
            p.lstat("/remote/dangling").await.unwrap().ftype,
            FileType::Symlink
        );
        // Removing the dangling link works like removing any file.
        p.unlink("/remote/dangling").await.unwrap();
        assert_eq!(
            p.lstat("/remote/dangling").await.unwrap_err(),
            NfsStatus::NoEnt
        );
    });
    sim.run_until(h);
}

#[test]
fn hard_links_share_the_inode() {
    for protocol in [Protocol::Local, Protocol::Nfs, Protocol::Snfs] {
        let tb = testbed(protocol);
        let p = tb.proc();
        let sim = tb.sim.clone();
        let h = sim.spawn(async move {
            let fd = p
                .open("/remote/one", OpenFlags::create_write())
                .await
                .unwrap();
            p.write(fd, b"shared bytes").await.unwrap();
            p.close(fd).await.unwrap();
            p.link("/remote/one", "/remote/two").await.unwrap();
            let a = p.stat("/remote/one").await.unwrap();
            let b = p.stat("/remote/two").await.unwrap();
            assert_eq!(a.fileid, b.fileid, "{protocol:?}: same inode");
            assert_eq!(a.nlink, 2);
            // Data visible through either name.
            let fd = p.open("/remote/two", OpenFlags::read()).await.unwrap();
            assert_eq!(p.read(fd, 100).await.unwrap(), b"shared bytes");
            p.close(fd).await.unwrap();
            // Removing one name keeps the file alive.
            p.unlink("/remote/one").await.unwrap();
            let b = p.stat("/remote/two").await.unwrap();
            assert_eq!(b.nlink, 1);
            let fd = p.open("/remote/two", OpenFlags::read()).await.unwrap();
            assert_eq!(p.read(fd, 100).await.unwrap(), b"shared bytes");
            p.close(fd).await.unwrap();
        });
        sim.run_until(h);
    }
}

#[test]
fn removing_one_hard_link_does_not_cancel_delayed_writes() {
    // The write-cancellation optimization must respect nlink: dropping
    // one of two names must not throw away dirty data.
    let tb = testbed(Protocol::Snfs);
    let c = match &tb.clients[0].remote {
        RemoteClient::Snfs(c) => c.clone(),
        _ => panic!("expected SNFS"),
    };
    let p = tb.proc();
    let fs = tb.server_fs.clone();
    let sim = tb.sim.clone();
    let h = sim.spawn({
        let sim = sim.clone();
        async move {
            let fd = p
                .open("/remote/name1", OpenFlags::create_write())
                .await
                .unwrap();
            p.write(fd, &[9u8; BLOCK_SIZE]).await.unwrap();
            p.close(fd).await.unwrap();
            p.link("/remote/name1", "/remote/name2").await.unwrap();
            assert!(c.dirty_blocks() > 0, "data still delayed");
            p.unlink("/remote/name1").await.unwrap();
            // Wait for the write-back; the data must reach the server.
            sim.sleep(spritely::sim::SimDuration::from_secs(65)).await;
            let st = p.stat("/remote/name2").await.unwrap();
            assert_eq!(st.size, BLOCK_SIZE as u64);
            let (fh, _) = fs.lookup(fs.root(), "name2").unwrap();
            let stable = fs.stable_contents(fh).unwrap();
            assert!(
                stable.iter().all(|&b| b == 9),
                "dirty data survived the unlink of its sibling name"
            );
        }
    });
    sim.run_until(h);
}

#[test]
fn snfs_name_cache_sees_remote_link_and_symlink_creation() {
    let tb = Testbed::build_with_clients(
        TestbedParams {
            protocol: Protocol::Snfs,
            name_cache: true,
            ..TestbedParams::default()
        },
        2,
    );
    let (a, b) = match (&tb.clients[0].remote, &tb.clients[1].remote) {
        (RemoteClient::Snfs(a), RemoteClient::Snfs(b)) => (a.clone(), b.clone()),
        _ => panic!("expected SNFS"),
    };
    let root = tb.server_fs.root();
    let sim = tb.sim.clone();
    let h = sim.spawn(async move {
        let (fh, _) = a.create(root, "orig").await.unwrap();
        // A warms its name cache on the directory.
        let _ = a.lookup(root, "orig").await.unwrap();
        assert_eq!(
            a.lookup(root, "newlink").await.unwrap_err(),
            NfsStatus::NoEnt
        );
        // B links a new name; A must be able to resolve it immediately —
        // the directory callback dropped A's (stale) view.
        b.link(fh, root, "newlink").await.unwrap();
        let (via_link, _) = a.lookup(root, "newlink").await.unwrap();
        assert_eq!(via_link, fh);
    });
    sim.run_until(h);
}
