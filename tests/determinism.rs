//! Whole-experiment determinism: identical inputs produce bit-identical
//! measurements, across every protocol. This is what makes the
//! reproduction auditable — any observed difference between two configs
//! is caused by the config, not by scheduling noise.

use spritely::harness::{run_sort_experiment, run_temp_lifetime, Protocol};
use spritely::sim::SimDuration;

#[test]
fn sort_runs_are_bit_identical() {
    for p in [Protocol::Local, Protocol::Nfs, Protocol::Snfs] {
        let a = run_sort_experiment(p, 281 * 1024, true);
        let b = run_sort_experiment(p, 281 * 1024, true);
        assert_eq!(a.elapsed, b.elapsed, "{p:?} elapsed");
        assert_eq!(a.ops, b.ops, "{p:?} op counts");
        assert_eq!(a.client_disk_writes, b.client_disk_writes, "{p:?} disk");
    }
}

#[test]
fn temp_lifetime_runs_are_bit_identical() {
    let run = || {
        let r = run_temp_lifetime(Protocol::Snfs, 64 * 1024, SimDuration::from_secs(45));
        r.write_rpcs
    };
    assert_eq!(run(), run());
}

#[test]
fn different_seeds_differ_but_same_seed_agrees() {
    use spritely::workloads::{AndrewBenchmark, AndrewParams};
    let a = AndrewBenchmark::new(7, AndrewParams::default());
    let b = AndrewBenchmark::new(7, AndrewParams::default());
    let c = AndrewBenchmark::new(8, AndrewParams::default());
    assert_eq!(a.source_bytes(), b.source_bytes());
    assert_ne!(a.source_bytes(), c.source_bytes());
}
