//! Integration tests for open delegations (DESIGN.md §17): grant,
//! local fast path, recall on conflict, return, and the accounting.

use spritely::harness::{
    report, DelegationParams, Protocol, ServerIoParams, Testbed, TestbedParams, TransportParams,
    WriteBehindParams,
};
use spritely::sim::SimDuration;
use spritely::vfs::OpenFlags;

fn params(d: DelegationParams) -> TestbedParams {
    TestbedParams {
        protocol: Protocol::Snfs,
        server_io: ServerIoParams::pipelined(),
        write_behind: WriteBehindParams::pipelined(),
        transport: TransportParams::pipelined(),
        name_cache: true,
        delegation: d,
        trace: true,
        ..TestbedParams::default()
    }
}

/// Client 0 creates a file (granted a write delegation), client 1 then
/// opens it for read: the server must recall client 0's delegation and
/// apply its return — no revoke — before client 1's open completes.
#[test]
fn conflicting_open_recalls_and_returns() {
    let tb = Testbed::build_with_clients(params(DelegationParams::pipelined()), 2);
    {
        let p = tb.proc();
        let sim = tb.sim.clone();
        let h = tb.sim.spawn(async move {
            let fd = p
                .open("/remote/doc", OpenFlags::create_write())
                .await
                .unwrap();
            p.write(fd, &[7u8; 4 * 4096]).await.unwrap();
            p.close(fd).await.unwrap();
            sim.sleep(SimDuration::from_secs(65)).await;
        });
        tb.sim.run_until(h);
    }
    {
        let p = tb.clients[1].proc(&tb.sim);
        let h = tb.sim.spawn(async move {
            let fd = p.open("/remote/doc", OpenFlags::read()).await.unwrap();
            while !p.read(fd, 4096).await.unwrap().is_empty() {}
            p.close(fd).await.unwrap();
        });
        tb.sim.run_until(h);
    }
    let snap = tb.stats_snapshot();
    let d = snap.delegation.expect("delegation section present");
    assert!(
        d.stats.grants_write >= 1,
        "create grants a write delegation"
    );
    assert_eq!(d.stats.recalls, 1, "conflicting open recalls it");
    assert_eq!(d.stats.returns, 1, "holder returns it");
    assert_eq!(d.stats.revokes, 0, "no revoke on a healthy network");
    let trace = tb.finish_trace().expect("tracing on");
    assert!(
        trace.ok(),
        "checker violations:\n{}",
        report::trace_summary(&trace)
    );
}

/// One holder, many concurrent conflicts: client 0 creates eight files
/// (eight write delegations), then five other clients storm all eight
/// concurrently. Every recall must resolve by return — the N−1 callback
/// budget and the per-file locks must not starve any of them into a
/// revoke.
#[test]
fn concurrent_recalls_against_one_holder_all_return() {
    let tb = Testbed::build_with_clients(params(DelegationParams::pipelined()), 6);
    {
        let p = tb.proc();
        let sim = tb.sim.clone();
        let h = tb.sim.spawn(async move {
            for f in 0..8 {
                let path = format!("/remote/doc{f}");
                let fd = p.open(&path, OpenFlags::create_write()).await.unwrap();
                p.write(fd, &[7u8; 4 * 4096]).await.unwrap();
                p.close(fd).await.unwrap();
            }
            sim.sleep(SimDuration::from_secs(65)).await;
        });
        tb.sim.run_until(h);
    }
    let mut handles = Vec::new();
    for host in tb.clients.iter().skip(1) {
        let p = host.proc(&tb.sim);
        handles.push(tb.sim.spawn(async move {
            for f in 0..8 {
                let path = format!("/remote/doc{f}");
                let fd = p.open(&path, OpenFlags::read()).await.unwrap();
                while !p.read(fd, 4096).await.unwrap().is_empty() {}
                p.close(fd).await.unwrap();
            }
        }));
    }
    for h in handles {
        tb.sim.run_until(h);
    }
    let snap = tb.stats_snapshot();
    let d = snap.delegation.expect("delegation section present");
    assert_eq!(d.stats.recalls, 8, "one recall per stormed file");
    assert_eq!(d.stats.returns, 8, "every recall resolves by return");
    assert_eq!(d.stats.revokes, 0, "no recall may starve into a revoke");
    let trace = tb.finish_trace().expect("tracing on");
    assert!(
        trace.ok(),
        "checker violations:\n{}",
        report::trace_summary(&trace)
    );
}
