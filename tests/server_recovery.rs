//! The §2.4 server crash-recovery protocol: the extension the paper names
//! as necessary "to completely refute the dogma of statelessness".
//!
//! Mechanics under test (after Welch's Sprite recovery):
//!
//! 1. the server's volatile state (state table, global version counter,
//!    buffer cache) dies with it; stable storage survives;
//! 2. clients detect the reboot via keepalive epochs and re-register
//!    their opens, cached versions and dirty claims (`recover`);
//! 3. during the grace period only recovery traffic is served, so the
//!    consistency state cannot change before it is rebuilt;
//! 4. after recovery, the consistency guarantees hold exactly as before —
//!    including write-backs of dirty data that predates the crash.

use spritely::harness::{report, DelegationParams, Protocol, RemoteClient, Testbed, TestbedParams};
use spritely::proto::BLOCK_SIZE;
use spritely::sim::SimDuration;
use spritely::snfs::{FileState, SnfsClient};

fn snfs_client(tb: &Testbed, i: usize) -> SnfsClient {
    match &tb.clients[i].remote {
        RemoteClient::Snfs(c) => c.clone(),
        _ => panic!("expected SNFS client"),
    }
}

/// Takes the server down (endpoint dead + volatile state lost), then back
/// up after `down_for`.
async fn crash_and_reboot(tb: &Testbed, down_for: SimDuration) {
    let ep = tb.endpoint.clone().expect("endpoint");
    let server = tb.snfs_server.clone().expect("snfs server");
    ep.set_alive(false);
    server.crash();
    tb.sim.sleep(down_for).await;
    server.reboot();
    ep.set_alive(true);
}

#[test]
fn dirty_data_survives_a_server_crash() {
    // The headline: a client holds delayed-write data; the server crashes
    // and reboots; a SECOND client then opens the file and reads exactly
    // what the first client wrote. Statelessness is refuted: state was
    // lost and rebuilt, and no data went missing.
    let tb = Testbed::build_with_clients(
        TestbedParams {
            protocol: Protocol::Snfs,
            ..TestbedParams::default()
        },
        2,
    );
    let a = snfs_client(&tb, 0);
    let b = snfs_client(&tb, 1);
    let root = tb.server_fs.root();
    let server = tb.snfs_server.clone().expect("snfs server");
    let sim = tb.sim.clone();
    let h = sim.spawn({
        let sim = sim.clone();
        async move {
            let (fh, _) = a.create(root, "f").await.unwrap();
            a.open(fh, true).await.unwrap();
            a.write(fh, 0, &[7u8; 2 * BLOCK_SIZE]).await.unwrap();
            // Let a keepalive land so A knows epoch 1.
            sim.sleep(SimDuration::from_secs(12)).await;
            assert!(a.dirty_blocks() > 0, "data still delayed at A");
            let epoch_before = server.epoch();
            crash_and_reboot(&tb, SimDuration::from_secs(5)).await;
            assert_eq!(server.table_len(), 0, "volatile state is gone");
            // A's keepalive notices the epoch change and re-registers.
            sim.sleep(SimDuration::from_secs(40)).await;
            assert!(server.epoch() > epoch_before);
            assert!(a.stats().recoveries >= 1, "A re-registered");
            assert_eq!(
                server.state_of(fh),
                FileState::OneWriter,
                "open state reconstructed from the client"
            );
            // B opens: the usual write-back callback must fire against
            // the RECOVERED state, pulling A's pre-crash dirty data.
            a.close(fh, true).await.unwrap();
            b.open(fh, false).await.unwrap();
            let (got, _) = b.read(fh, 0, (2 * BLOCK_SIZE) as u32).await.unwrap();
            assert!(
                got.iter().all(|&x| x == 7),
                "B sees A's pre-crash delayed data"
            );
            b.close(fh, false).await.unwrap();
        }
    });
    sim.run_until(h);
}

#[test]
fn grace_period_blocks_new_work_but_not_recovery() {
    let tb = Testbed::build(TestbedParams {
        protocol: Protocol::Snfs,
        ..TestbedParams::default()
    });
    let c = snfs_client(&tb, 0);
    let root = tb.server_fs.root();
    let server = tb.snfs_server.clone().expect("snfs server");
    let sim = tb.sim.clone();
    let h = sim.spawn({
        let sim = sim.clone();
        async move {
            let (fh, _) = c.create(root, "f").await.unwrap();
            sim.sleep(SimDuration::from_secs(12)).await; // learn epoch
            crash_and_reboot(&tb, SimDuration::from_secs(2)).await;
            assert!(server.in_grace());
            // Recovery works during grace.
            let epoch = c.recover().await.unwrap();
            assert_eq!(epoch, server.epoch());
            // A normal open during grace is answered with Grace and the
            // client retries until the period ends — so the call succeeds,
            // it just takes at least the rest of the grace period.
            let t0 = sim.now();
            c.open(fh, false).await.unwrap();
            assert!(
                sim.now().duration_since(t0) >= SimDuration::from_secs(2),
                "the open waited out the grace period"
            );
            assert!(!server.in_grace());
            c.close(fh, false).await.unwrap();
        }
    });
    sim.run_until(h);
}

#[test]
fn version_numbers_never_regress_across_a_crash() {
    // §4.3.3's "obvious problem" with an in-memory global counter: after
    // a reboot it restarts at 1. Recovery must raise it above every
    // version a surviving client still holds, or caches would validate
    // against the wrong generation.
    let tb = Testbed::build(TestbedParams {
        protocol: Protocol::Snfs,
        ..TestbedParams::default()
    });
    let c = snfs_client(&tb, 0);
    let root = tb.server_fs.root();
    let sim = tb.sim.clone();
    let counter = tb.counter.clone();
    let h = sim.spawn({
        let sim = sim.clone();
        async move {
            // Drive the version counter up.
            let (fh, _) = c.create(root, "f").await.unwrap();
            for _ in 0..5 {
                c.open(fh, true).await.unwrap();
                c.write(fh, 0, &[1u8; BLOCK_SIZE]).await.unwrap();
                c.close(fh, true).await.unwrap();
            }
            sim.sleep(SimDuration::from_secs(12)).await; // learn epoch
            crash_and_reboot(&tb, SimDuration::from_secs(2)).await;
            sim.sleep(SimDuration::from_secs(40)).await; // keepalive + recover
                                                         // Reopen read-only: if the version floor were not restored,
                                                         // the server would hand out a low version, the cache check
                                                         // would "validate" stale identity or spuriously invalidate.
            let before_reads = counter.get(spritely::proto::NfsProc::Read);
            c.open(fh, false).await.unwrap();
            let (got, _) = c.read(fh, 0, BLOCK_SIZE as u32).await.unwrap();
            assert!(got.iter().all(|&x| x == 1));
            assert_eq!(
                counter.get(spritely::proto::NfsProc::Read),
                before_reads,
                "cache stayed valid across the crash (version floor held)"
            );
            c.close(fh, false).await.unwrap();
        }
    });
    sim.run_until(h);
}

#[test]
fn unrecovered_clients_are_simply_forgotten() {
    // A client that never re-registers holds no claim after recovery;
    // new opens proceed (flagged inconsistent if it held dirty data).
    let tb = Testbed::build_with_clients(
        TestbedParams {
            protocol: Protocol::Snfs,
            ..TestbedParams::default()
        },
        2,
    );
    let a = snfs_client(&tb, 0);
    let b = snfs_client(&tb, 1);
    let root = tb.server_fs.root();
    let server = tb.snfs_server.clone().expect("snfs server");
    let sim = tb.sim.clone();
    let h = sim.spawn({
        let sim = sim.clone();
        async move {
            let (fh, _) = a.create(root, "f").await.unwrap();
            a.open(fh, true).await.unwrap();
            a.write(fh, 0, &[1u8; BLOCK_SIZE]).await.unwrap();
            // A "dies with the server down": we model it by crashing the
            // server and never letting A's keepalive run its recovery —
            // kill A's callback channel and drop its state silently.
            sim.sleep(SimDuration::from_secs(12)).await;
            crash_and_reboot(&tb, SimDuration::from_secs(2)).await;
            // B recovers promptly (it had nothing); after grace it can
            // open the file even though A never re-registered.
            sim.sleep(SimDuration::from_secs(25)).await;
            b.open(fh, false).await.unwrap();
            let (_, eof) = b.read(fh, 0, BLOCK_SIZE as u32).await.unwrap();
            assert!(eof);
            b.close(fh, false).await.unwrap();
            let _ = server;
        }
    });
    sim.run_until(h);
}

#[test]
fn reboot_discards_delegations_and_recovery_makes_holders_follow() {
    // DESIGN.md §17.4: delegation records are volatile with the state
    // table, so a reboot leaves the server knowing of none — and the
    // recovery handshake makes the holder forget too. This is a
    // *discard*, not a recall (there is no server state left to recall
    // from): no callback fires, nothing is revoked, and the holder's
    // next open simply goes back over RPC and re-earns a grant.
    let tb = Testbed::build_with_clients(
        TestbedParams {
            protocol: Protocol::Snfs,
            delegation: DelegationParams::pipelined(),
            trace: true,
            ..TestbedParams::default()
        },
        2,
    );
    let a = snfs_client(&tb, 0);
    let b = snfs_client(&tb, 1);
    let root = tb.server_fs.root();
    let server = tb.snfs_server.clone().expect("snfs server");
    let ep = tb.endpoint.clone().expect("endpoint");
    let counter = tb.counter.clone();
    let sim = tb.sim.clone();
    let h = sim.spawn({
        let sim = sim.clone();
        let server = server.clone();
        async move {
            let (fh, _) = a.create(root, "d").await.unwrap();
            a.open(fh, true).await.unwrap();
            a.write(fh, 0, &[5u8; BLOCK_SIZE]).await.unwrap();
            a.fsync(fh).await.unwrap();
            a.close(fh, true).await.unwrap();
            assert_eq!(a.delegations_held(), 1, "create granted a delegation");
            assert_eq!(server.delegation_count(), 1);
            // Let a keepalive land so A knows the pre-crash epoch.
            sim.sleep(SimDuration::from_secs(12)).await;
            ep.set_alive(false);
            server.crash();
            sim.sleep(SimDuration::from_secs(5)).await;
            server.reboot();
            ep.set_alive(true);
            assert_eq!(
                server.delegation_count(),
                0,
                "delegation records die with the state table"
            );
            // A's keepalive notices the epoch change and re-registers;
            // `recover` drops the stale records instead of trusting them.
            sim.sleep(SimDuration::from_secs(40)).await;
            assert!(a.stats().recoveries >= 1, "A re-registered");
            assert_eq!(
                a.delegations_held(),
                0,
                "recovery discarded the stale delegation record"
            );
            // B's open needs no recall — there is nothing left to recall
            // — and sees A's pre-crash (synced) data.
            b.open(fh, false).await.unwrap();
            let (got, _) = b.read(fh, 0, BLOCK_SIZE as u32).await.unwrap();
            assert!(got.iter().all(|&x| x == 5));
            b.close(fh, false).await.unwrap();
            // A's next open travels over RPC again (the fast path is
            // gone until the server re-grants).
            let before = counter.get(spritely::proto::NfsProc::Open);
            a.open(fh, false).await.unwrap();
            assert!(
                counter.get(spritely::proto::NfsProc::Open) > before,
                "the open went over RPC"
            );
            a.close(fh, false).await.unwrap();
        }
    });
    sim.run_until(h);
    let d = server.delegation_stats();
    assert_eq!(d.recalls, 0, "a reboot recalls nothing — it discards");
    assert_eq!(d.revokes, 0, "and fences nobody");
    let trace = tb.finish_trace().expect("tracing on");
    assert!(
        trace.ok(),
        "checker violations:\n{}",
        report::trace_summary(&trace)
    );
}

#[test]
fn nfs_needs_no_recovery_protocol() {
    // The control: the stateless baseline really does just restart. A
    // server "crash" (cache loss) plus reboot is invisible to the NFS
    // client beyond in-flight retransmissions.
    let tb = Testbed::build(TestbedParams {
        protocol: Protocol::Nfs,
        ..TestbedParams::default()
    });
    let c = match &tb.clients[0].remote {
        RemoteClient::Nfs(c) => c.clone(),
        _ => panic!("expected NFS"),
    };
    let root = tb.server_fs.root();
    let ep = tb.endpoint.clone().expect("endpoint");
    let fs = tb.server_fs.clone();
    let sim = tb.sim.clone();
    let h = sim.spawn({
        let sim = sim.clone();
        async move {
            let (fh, _) = c.create(root, "f").await.unwrap();
            c.open(fh, true).await.unwrap();
            c.write(fh, 0, &[3u8; BLOCK_SIZE]).await.unwrap();
            c.close(fh, true).await.unwrap();
            // Crash: the server cache is lost, stable data is not.
            ep.set_alive(false);
            fs.crash();
            sim.sleep(SimDuration::from_millis(300)).await;
            ep.set_alive(true);
            // The client just keeps going.
            c.open(fh, false).await.unwrap();
            let (got, _) = c.read(fh, 0, BLOCK_SIZE as u32).await.unwrap();
            assert!(got.iter().all(|&x| x == 3));
            c.close(fh, false).await.unwrap();
        }
    });
    sim.run_until(h);
}
