//! Regression tests for the lossy-network bugs the fault-injection layer
//! exposed: callback retries across partitions (a partitioned client is
//! not a crashed client), retransmit-outcome mapping for non-idempotent
//! procedures after dup-cache loss, and idempotent handling of
//! duplicated server→client callbacks.

use spritely::harness::{
    report, DelegationParams, PartitionDir, Protocol, RemoteClient, SnfsServerParams, Testbed,
    TestbedParams,
};
use spritely::proto::BLOCK_SIZE;
use spritely::sim::SimDuration;

fn two_client_snfs(server: SnfsServerParams) -> Testbed {
    Testbed::build_with_clients(
        TestbedParams {
            protocol: Protocol::Snfs,
            // Keep dirty data un-flushed long enough for partitions to
            // matter (the default delay would race the scenarios below).
            snfs_write_delay: SimDuration::from_secs(120),
            snfs_server: server,
            ..TestbedParams::default()
        },
        2,
    )
}

/// A partitioned-then-healed client's dirty data survives: the server
/// retries the write-back callback past the partition instead of
/// declaring the client crashed on the first timeout.
#[test]
fn partitioned_client_dirty_data_survives_heal() {
    let tb = two_client_snfs(SnfsServerParams::default());
    let a = match &tb.clients[0].remote {
        RemoteClient::Snfs(c) => c.clone(),
        _ => panic!("expected SNFS"),
    };
    let b = match &tb.clients[1].remote {
        RemoteClient::Snfs(c) => c.clone(),
        _ => panic!("expected SNFS"),
    };
    let root = tb.server_fs.root();
    let server = tb.snfs_server.clone().expect("snfs server");
    let net = tb.net.clone();
    let sim = tb.sim.clone();
    let h = sim.spawn({
        let sim = sim.clone();
        async move {
            // B writes and holds the data dirty.
            let (fh, _) = a.create(root, "f").await.unwrap();
            b.open(fh, true).await.unwrap();
            b.write(fh, 0, &[2u8; BLOCK_SIZE]).await.unwrap();
            b.close(fh, true).await.unwrap();
            // B's host drops off the network for 12 s.
            net.partition(
                2,
                PartitionDir::Both,
                sim.now() + SimDuration::from_secs(12),
            );
            // A opens while B is unreachable. The server's write-back
            // callback to B fails until the heal; A's own RPC ladder
            // (~5 s) is shorter than the server's retry horizon, so A
            // re-issues the open as a hard-mounted client would.
            let mut got = None;
            for _ in 0..20 {
                if let Ok(attr) = a.open(fh, false).await {
                    got = Some(attr);
                    break;
                }
            }
            let attr = got.expect("open succeeded after the heal");
            assert_eq!(attr.size, BLOCK_SIZE as u64);
            let (data, _) = a.read(fh, 0, BLOCK_SIZE as u32).await.unwrap();
            assert!(
                data.iter().all(|&x| x == 2),
                "B's dirty data survived the partition"
            );
            a.close(fh, false).await.unwrap();
        }
    });
    sim.run_until(h);
    assert!(
        server.callback_retries() >= 1,
        "the server retried the callback across the partition"
    );
    assert_eq!(
        server.stats().callbacks_failed,
        0,
        "B was never declared crashed"
    );
}

/// Pins the *old* bug: with a zero keepalive horizon the server gives up
/// on the first failed callback, declares the partitioned client
/// crashed, and its dirty data is discarded.
#[test]
fn zero_horizon_reproduces_the_lost_data_bug() {
    let tb = two_client_snfs(SnfsServerParams {
        callback_dead_after: SimDuration::ZERO,
        ..SnfsServerParams::default()
    });
    let a = match &tb.clients[0].remote {
        RemoteClient::Snfs(c) => c.clone(),
        _ => panic!("expected SNFS"),
    };
    let b = match &tb.clients[1].remote {
        RemoteClient::Snfs(c) => c.clone(),
        _ => panic!("expected SNFS"),
    };
    let root = tb.server_fs.root();
    let server = tb.snfs_server.clone().expect("snfs server");
    let net = tb.net.clone();
    let sim = tb.sim.clone();
    let h = sim.spawn({
        let sim = sim.clone();
        async move {
            let (fh, _) = a.create(root, "f").await.unwrap();
            b.open(fh, true).await.unwrap();
            b.write(fh, 0, &[2u8; BLOCK_SIZE]).await.unwrap();
            b.close(fh, true).await.unwrap();
            net.partition(
                2,
                PartitionDir::Both,
                sim.now() + SimDuration::from_secs(12),
            );
            let mut opened = false;
            for _ in 0..20 {
                if a.open(fh, false).await.is_ok() {
                    opened = true;
                    break;
                }
            }
            assert!(opened);
            // B's data never reached the server: the legacy behaviour
            // treats one lost callback as a client crash.
            let (data, _) = a.read(fh, 0, BLOCK_SIZE as u32).await.unwrap();
            assert!(
                data.is_empty() || data.iter().all(|&x| x == 0),
                "legacy server discarded B's dirty data"
            );
            a.close(fh, false).await.unwrap();
        }
    });
    sim.run_until(h);
    assert!(server.stats().callbacks_failed >= 1, "B declared crashed");
}

/// The create-returns-EEXIST retransmission race: reply lost after the
/// server executed, dup cache lost before the retransmit arrived. The
/// client must recognize the spurious EEXIST on a retransmitted create
/// and map it to success via lookup.
#[test]
fn retransmitted_create_after_dup_cache_loss_succeeds() {
    let tb = Testbed::build(TestbedParams {
        protocol: Protocol::Snfs,
        ..TestbedParams::default()
    });
    let c = match &tb.clients[0].remote {
        RemoteClient::Snfs(c) => c.clone(),
        _ => panic!("expected SNFS"),
    };
    let root = tb.server_fs.root();
    let net = tb.net.clone();
    let ep = tb.endpoint.clone().expect("server endpoint");
    let sim = tb.sim.clone();
    // Model a server that executed the create, lost the reply, and then
    // lost its duplicate cache (e.g. rebooted its RPC layer) before the
    // retransmit arrived.
    {
        let sim2 = sim.clone();
        let ep = ep.clone();
        sim.spawn(async move {
            // The first attempt executes within milliseconds; the caller
            // retransmits after its 1 s timeout. Wipe the cache between.
            sim2.sleep(SimDuration::from_millis(500)).await;
            ep.clear_dup_cache();
        });
    }
    let h = sim.spawn(async move {
        net.lose_next_reply(1, false);
        let (fh, _) = c
            .create(root, "victim")
            .await
            .expect("retransmitted create maps EEXIST to success");
        // The handle is the one the first execution created.
        let (looked, _) = c.lookup(root, "victim").await.unwrap();
        assert_eq!(fh, looked);
    });
    sim.run_until(h);
}

/// The remove-returns-ENOENT twin: the retransmitted remove finds the
/// name already gone (its own first transmission removed it) and must
/// report success, not ENOENT.
#[test]
fn retransmitted_remove_after_dup_cache_loss_succeeds() {
    let tb = Testbed::build(TestbedParams {
        protocol: Protocol::Snfs,
        ..TestbedParams::default()
    });
    let c = match &tb.clients[0].remote {
        RemoteClient::Snfs(c) => c.clone(),
        _ => panic!("expected SNFS"),
    };
    let root = tb.server_fs.root();
    let net = tb.net.clone();
    let ep = tb.endpoint.clone().expect("server endpoint");
    let sim = tb.sim.clone();
    let h = sim.spawn({
        let sim = sim.clone();
        async move {
            let (fh, _) = c.create(root, "doomed").await.unwrap();
            {
                let sim2 = sim.clone();
                let ep = ep.clone();
                sim.spawn(async move {
                    sim2.sleep(SimDuration::from_millis(500)).await;
                    ep.clear_dup_cache();
                });
            }
            net.lose_next_reply(1, false);
            c.remove(root, "doomed", Some(fh))
                .await
                .expect("retransmitted remove maps ENOENT to success");
            assert!(c.lookup(root, "doomed").await.is_err(), "name is gone");
        }
    });
    sim.run_until(h);
}

/// A duplicated delivery of a server→client callback must be idempotent
/// at the client. The duplicate here comes from the server's own retry
/// (a fresh xid, so the client endpoint's dup cache cannot catch it):
/// the callback executes, its reply is lost in an outbound-only
/// partition, and the retry must not invalidate twice.
#[test]
fn duplicated_callback_invalidates_once() {
    let tb = two_client_snfs(SnfsServerParams::default());
    let a = match &tb.clients[0].remote {
        RemoteClient::Snfs(c) => c.clone(),
        _ => panic!("expected SNFS"),
    };
    let b = match &tb.clients[1].remote {
        RemoteClient::Snfs(c) => c.clone(),
        _ => panic!("expected SNFS"),
    };
    let root = tb.server_fs.root();
    let server = tb.snfs_server.clone().expect("snfs server");
    let net = tb.net.clone();
    let sim = tb.sim.clone();
    let h = sim.spawn({
        let sim = sim.clone();
        let a = a.clone();
        async move {
            // A caches the file as a reader.
            let (fh, _) = a.create(root, "shared").await.unwrap();
            a.open(fh, true).await.unwrap();
            a.write(fh, 0, &[1u8; BLOCK_SIZE]).await.unwrap();
            a.fsync(fh).await.unwrap();
            a.close(fh, true).await.unwrap();
            a.open(fh, false).await.unwrap();
            let _ = a.read(fh, 0, BLOCK_SIZE as u32).await.unwrap();
            // A can receive callbacks but its replies are lost: the
            // server's first callback executes at A, the reply vanishes,
            // the RPC ladder exhausts, and the server's retry re-delivers
            // the same logical callback under a fresh xid.
            net.partition(
                1,
                PartitionDir::Outbound,
                sim.now() + SimDuration::from_secs(7),
            );
            // B opening for write forces the invalidate callback to A.
            let mut opened = false;
            for _ in 0..20 {
                if b.open(fh, true).await.is_ok() {
                    opened = true;
                    break;
                }
            }
            assert!(opened, "B's open succeeded after the heal");
            b.close(fh, true).await.unwrap();
            a.close(fh, false).await.unwrap();
        }
    });
    sim.run_until(h);
    assert_eq!(
        a.stats().invalidations,
        1,
        "the duplicated callback invalidated exactly once"
    );
    assert!(
        a.callback_dupes() >= 1,
        "the client-side sequence guard absorbed the retry"
    );
    assert_eq!(server.stats().callbacks_failed, 0);
}

fn two_client_delegated() -> Testbed {
    Testbed::build_with_clients(
        TestbedParams {
            protocol: Protocol::Snfs,
            delegation: DelegationParams::pipelined(),
            trace: true,
            ..TestbedParams::default()
        },
        2,
    )
}

/// Retransmitted-recall idempotency (DESIGN.md §17.2): the holder
/// returns its delegation and acks the recall, but the ack is lost on
/// the wire. The server's callback caller retransmits; the holder's
/// duplicate-request cache must replay the ack instead of re-running
/// the recall — one return applied, nothing revoked.
#[test]
fn retransmitted_recall_applies_the_return_once() {
    let tb = two_client_delegated();
    let a = match &tb.clients[0].remote {
        RemoteClient::Snfs(c) => c.clone(),
        _ => panic!("expected SNFS"),
    };
    let b = match &tb.clients[1].remote {
        RemoteClient::Snfs(c) => c.clone(),
        _ => panic!("expected SNFS"),
    };
    let root = tb.server_fs.root();
    let server = tb.snfs_server.clone().expect("snfs server");
    let net = tb.net.clone();
    let sim = tb.sim.clone();
    let h = sim.spawn({
        let b = b.clone();
        async move {
            // B earns a write delegation and flushes, so the recall's only
            // observable work is the state return itself.
            let (fh, _) = b.create(root, "deleg").await.unwrap();
            b.open(fh, true).await.unwrap();
            b.write(fh, 0, &[9u8; BLOCK_SIZE]).await.unwrap();
            b.fsync(fh).await.unwrap();
            b.close(fh, true).await.unwrap();
            // The next reply on B's callback link — the recall ack — is
            // lost after B has executed the recall and returned.
            net.lose_next_reply(2, true);
            // A's conflicting open triggers the recall; the retransmitted
            // recall is answered from B's dup cache and the open proceeds.
            let attr = a.open(fh, false).await.unwrap();
            assert_eq!(attr.size, BLOCK_SIZE as u64);
            let (data, _) = a.read(fh, 0, BLOCK_SIZE as u32).await.unwrap();
            assert!(data.iter().all(|&x| x == 9), "A sees B's returned version");
            a.close(fh, false).await.unwrap();
        }
    });
    sim.run_until(h);
    let d = server.delegation_stats();
    assert_eq!(d.recalls, 1, "one logical recall");
    assert_eq!(d.returns, 1, "the return applied exactly once");
    assert_eq!(d.revokes, 0, "a lost ack is not a dead holder");
    assert_eq!(b.delegations_held(), 0, "B no longer holds the delegation");
    let faults = tb.stats_snapshot().faults.expect("scripted fault state");
    assert_eq!(faults.reply_losses, 1, "the scripted ack loss fired");
    assert!(
        faults.dup_cache_hits >= 1,
        "the retransmit was replayed from the dup cache, not re-run"
    );
    let trace = tb.finish_trace().expect("tracing on");
    assert!(
        trace.ok(),
        "checker violations:\n{}",
        report::trace_summary(&trace)
    );
}

/// Revoke-after-timeout fencing (DESIGN.md §17.3): the holder drops off
/// the network for longer than the recall timeout. The server revokes
/// and fences it, the conflicting opener proceeds, and the healed
/// holder — whose lease lapsed and whose keepalive therefore discards
/// its stale records — falls back to RPC opens instead of serving any
/// local state from the revoked delegation.
#[test]
fn revoke_after_timeout_fences_the_dead_holder() {
    let tb = two_client_delegated();
    let a = match &tb.clients[0].remote {
        RemoteClient::Snfs(c) => c.clone(),
        _ => panic!("expected SNFS"),
    };
    let b = match &tb.clients[1].remote {
        RemoteClient::Snfs(c) => c.clone(),
        _ => panic!("expected SNFS"),
    };
    let root = tb.server_fs.root();
    let server = tb.snfs_server.clone().expect("snfs server");
    let net = tb.net.clone();
    let sim = tb.sim.clone();
    let h = sim.spawn({
        let sim = sim.clone();
        let b = b.clone();
        async move {
            let (fh, _) = b.create(root, "fenced").await.unwrap();
            b.open(fh, true).await.unwrap();
            b.write(fh, 0, &[3u8; BLOCK_SIZE]).await.unwrap();
            b.fsync(fh).await.unwrap();
            b.close(fh, true).await.unwrap();
            // B drops off the network for 25 s — longer than both the
            // lease (15 s) and the recall timeout (20 s).
            let healed_at = sim.now() + SimDuration::from_secs(25);
            net.partition(2, PartitionDir::Both, healed_at);
            // A's open must not wait forever on the dead holder: the
            // recall times out at 20 s, B is revoked and fenced, and the
            // open proceeds. A's own RPC ladder is shorter, so it
            // re-issues the open as a hard-mounted client would.
            let started = sim.now();
            let mut got = None;
            while got.is_none() {
                match a.open(fh, false).await {
                    Ok(attr) => got = Some(attr),
                    Err(_) => sim.sleep(SimDuration::from_millis(500)).await,
                }
            }
            let waited = sim.now().saturating_duration_since(started);
            assert!(
                waited >= SimDuration::from_secs(19),
                "the open waited out the recall timeout, not less ({waited})"
            );
            assert!(
                waited < SimDuration::from_secs(25),
                "the opener was unblocked by the revoke, not the heal ({waited})"
            );
            let attr = got.unwrap();
            assert_eq!(attr.size, BLOCK_SIZE as u64);
            let (data, _) = a.read(fh, 0, BLOCK_SIZE as u32).await.unwrap();
            assert!(data.iter().all(|&x| x == 3), "B's flushed data survived");
            a.close(fh, false).await.unwrap();
            // Wait past the heal plus one keepalive interval (10 s): B's
            // first successful probe finds its lease lapsed and discards
            // the stale delegation record.
            let drain = healed_at + SimDuration::from_secs(12);
            let dt = drain.saturating_duration_since(sim.now());
            sim.sleep(dt).await;
            assert_eq!(
                b.delegations_held(),
                0,
                "the lapsed lease discarded B's stale record"
            );
            // The healed holder opens over RPC (lifting its fence) and
            // sees the current file — no local state from the revoked
            // delegation survives.
            b.open(fh, false).await.expect("B's RPC open succeeds");
            let (data, _) = b.read(fh, 0, BLOCK_SIZE as u32).await.unwrap();
            assert!(data.iter().all(|&x| x == 3));
            b.close(fh, false).await.unwrap();
        }
    });
    sim.run_until(h);
    let d = server.delegation_stats();
    assert_eq!(d.revokes, 1, "the dead holder was revoked exactly once");
    assert_eq!(d.returns, 0, "nothing ever came back from B");
    assert!(d.recalls >= 1, "the conflicting open forced a recall");
    let trace = tb.finish_trace().expect("tracing on");
    assert!(
        trace.ok(),
        "checker violations:\n{}",
        report::trace_summary(&trace)
    );
}
