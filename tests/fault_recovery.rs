//! Regression tests for the lossy-network bugs the fault-injection layer
//! exposed: callback retries across partitions (a partitioned client is
//! not a crashed client), retransmit-outcome mapping for non-idempotent
//! procedures after dup-cache loss, and idempotent handling of
//! duplicated server→client callbacks.

use spritely::harness::{
    PartitionDir, Protocol, RemoteClient, SnfsServerParams, Testbed, TestbedParams,
};
use spritely::proto::BLOCK_SIZE;
use spritely::sim::SimDuration;

fn two_client_snfs(server: SnfsServerParams) -> Testbed {
    Testbed::build_with_clients(
        TestbedParams {
            protocol: Protocol::Snfs,
            // Keep dirty data un-flushed long enough for partitions to
            // matter (the default delay would race the scenarios below).
            snfs_write_delay: SimDuration::from_secs(120),
            snfs_server: server,
            ..TestbedParams::default()
        },
        2,
    )
}

/// A partitioned-then-healed client's dirty data survives: the server
/// retries the write-back callback past the partition instead of
/// declaring the client crashed on the first timeout.
#[test]
fn partitioned_client_dirty_data_survives_heal() {
    let tb = two_client_snfs(SnfsServerParams::default());
    let a = match &tb.clients[0].remote {
        RemoteClient::Snfs(c) => c.clone(),
        _ => panic!("expected SNFS"),
    };
    let b = match &tb.clients[1].remote {
        RemoteClient::Snfs(c) => c.clone(),
        _ => panic!("expected SNFS"),
    };
    let root = tb.server_fs.root();
    let server = tb.snfs_server.clone().expect("snfs server");
    let net = tb.net.clone();
    let sim = tb.sim.clone();
    let h = sim.spawn({
        let sim = sim.clone();
        async move {
            // B writes and holds the data dirty.
            let (fh, _) = a.create(root, "f").await.unwrap();
            b.open(fh, true).await.unwrap();
            b.write(fh, 0, &[2u8; BLOCK_SIZE]).await.unwrap();
            b.close(fh, true).await.unwrap();
            // B's host drops off the network for 12 s.
            net.partition(
                2,
                PartitionDir::Both,
                sim.now() + SimDuration::from_secs(12),
            );
            // A opens while B is unreachable. The server's write-back
            // callback to B fails until the heal; A's own RPC ladder
            // (~5 s) is shorter than the server's retry horizon, so A
            // re-issues the open as a hard-mounted client would.
            let mut got = None;
            for _ in 0..20 {
                if let Ok(attr) = a.open(fh, false).await {
                    got = Some(attr);
                    break;
                }
            }
            let attr = got.expect("open succeeded after the heal");
            assert_eq!(attr.size, BLOCK_SIZE as u64);
            let (data, _) = a.read(fh, 0, BLOCK_SIZE as u32).await.unwrap();
            assert!(
                data.iter().all(|&x| x == 2),
                "B's dirty data survived the partition"
            );
            a.close(fh, false).await.unwrap();
        }
    });
    sim.run_until(h);
    assert!(
        server.callback_retries() >= 1,
        "the server retried the callback across the partition"
    );
    assert_eq!(
        server.stats().callbacks_failed,
        0,
        "B was never declared crashed"
    );
}

/// Pins the *old* bug: with a zero keepalive horizon the server gives up
/// on the first failed callback, declares the partitioned client
/// crashed, and its dirty data is discarded.
#[test]
fn zero_horizon_reproduces_the_lost_data_bug() {
    let tb = two_client_snfs(SnfsServerParams {
        callback_dead_after: SimDuration::ZERO,
        ..SnfsServerParams::default()
    });
    let a = match &tb.clients[0].remote {
        RemoteClient::Snfs(c) => c.clone(),
        _ => panic!("expected SNFS"),
    };
    let b = match &tb.clients[1].remote {
        RemoteClient::Snfs(c) => c.clone(),
        _ => panic!("expected SNFS"),
    };
    let root = tb.server_fs.root();
    let server = tb.snfs_server.clone().expect("snfs server");
    let net = tb.net.clone();
    let sim = tb.sim.clone();
    let h = sim.spawn({
        let sim = sim.clone();
        async move {
            let (fh, _) = a.create(root, "f").await.unwrap();
            b.open(fh, true).await.unwrap();
            b.write(fh, 0, &[2u8; BLOCK_SIZE]).await.unwrap();
            b.close(fh, true).await.unwrap();
            net.partition(
                2,
                PartitionDir::Both,
                sim.now() + SimDuration::from_secs(12),
            );
            let mut opened = false;
            for _ in 0..20 {
                if a.open(fh, false).await.is_ok() {
                    opened = true;
                    break;
                }
            }
            assert!(opened);
            // B's data never reached the server: the legacy behaviour
            // treats one lost callback as a client crash.
            let (data, _) = a.read(fh, 0, BLOCK_SIZE as u32).await.unwrap();
            assert!(
                data.is_empty() || data.iter().all(|&x| x == 0),
                "legacy server discarded B's dirty data"
            );
            a.close(fh, false).await.unwrap();
        }
    });
    sim.run_until(h);
    assert!(server.stats().callbacks_failed >= 1, "B declared crashed");
}

/// The create-returns-EEXIST retransmission race: reply lost after the
/// server executed, dup cache lost before the retransmit arrived. The
/// client must recognize the spurious EEXIST on a retransmitted create
/// and map it to success via lookup.
#[test]
fn retransmitted_create_after_dup_cache_loss_succeeds() {
    let tb = Testbed::build(TestbedParams {
        protocol: Protocol::Snfs,
        ..TestbedParams::default()
    });
    let c = match &tb.clients[0].remote {
        RemoteClient::Snfs(c) => c.clone(),
        _ => panic!("expected SNFS"),
    };
    let root = tb.server_fs.root();
    let net = tb.net.clone();
    let ep = tb.endpoint.clone().expect("server endpoint");
    let sim = tb.sim.clone();
    // Model a server that executed the create, lost the reply, and then
    // lost its duplicate cache (e.g. rebooted its RPC layer) before the
    // retransmit arrived.
    {
        let sim2 = sim.clone();
        let ep = ep.clone();
        sim.spawn(async move {
            // The first attempt executes within milliseconds; the caller
            // retransmits after its 1 s timeout. Wipe the cache between.
            sim2.sleep(SimDuration::from_millis(500)).await;
            ep.clear_dup_cache();
        });
    }
    let h = sim.spawn(async move {
        net.lose_next_reply(1, false);
        let (fh, _) = c
            .create(root, "victim")
            .await
            .expect("retransmitted create maps EEXIST to success");
        // The handle is the one the first execution created.
        let (looked, _) = c.lookup(root, "victim").await.unwrap();
        assert_eq!(fh, looked);
    });
    sim.run_until(h);
}

/// The remove-returns-ENOENT twin: the retransmitted remove finds the
/// name already gone (its own first transmission removed it) and must
/// report success, not ENOENT.
#[test]
fn retransmitted_remove_after_dup_cache_loss_succeeds() {
    let tb = Testbed::build(TestbedParams {
        protocol: Protocol::Snfs,
        ..TestbedParams::default()
    });
    let c = match &tb.clients[0].remote {
        RemoteClient::Snfs(c) => c.clone(),
        _ => panic!("expected SNFS"),
    };
    let root = tb.server_fs.root();
    let net = tb.net.clone();
    let ep = tb.endpoint.clone().expect("server endpoint");
    let sim = tb.sim.clone();
    let h = sim.spawn({
        let sim = sim.clone();
        async move {
            let (fh, _) = c.create(root, "doomed").await.unwrap();
            {
                let sim2 = sim.clone();
                let ep = ep.clone();
                sim.spawn(async move {
                    sim2.sleep(SimDuration::from_millis(500)).await;
                    ep.clear_dup_cache();
                });
            }
            net.lose_next_reply(1, false);
            c.remove(root, "doomed", Some(fh))
                .await
                .expect("retransmitted remove maps ENOENT to success");
            assert!(c.lookup(root, "doomed").await.is_err(), "name is gone");
        }
    });
    sim.run_until(h);
}

/// A duplicated delivery of a server→client callback must be idempotent
/// at the client. The duplicate here comes from the server's own retry
/// (a fresh xid, so the client endpoint's dup cache cannot catch it):
/// the callback executes, its reply is lost in an outbound-only
/// partition, and the retry must not invalidate twice.
#[test]
fn duplicated_callback_invalidates_once() {
    let tb = two_client_snfs(SnfsServerParams::default());
    let a = match &tb.clients[0].remote {
        RemoteClient::Snfs(c) => c.clone(),
        _ => panic!("expected SNFS"),
    };
    let b = match &tb.clients[1].remote {
        RemoteClient::Snfs(c) => c.clone(),
        _ => panic!("expected SNFS"),
    };
    let root = tb.server_fs.root();
    let server = tb.snfs_server.clone().expect("snfs server");
    let net = tb.net.clone();
    let sim = tb.sim.clone();
    let h = sim.spawn({
        let sim = sim.clone();
        let a = a.clone();
        async move {
            // A caches the file as a reader.
            let (fh, _) = a.create(root, "shared").await.unwrap();
            a.open(fh, true).await.unwrap();
            a.write(fh, 0, &[1u8; BLOCK_SIZE]).await.unwrap();
            a.fsync(fh).await.unwrap();
            a.close(fh, true).await.unwrap();
            a.open(fh, false).await.unwrap();
            let _ = a.read(fh, 0, BLOCK_SIZE as u32).await.unwrap();
            // A can receive callbacks but its replies are lost: the
            // server's first callback executes at A, the reply vanishes,
            // the RPC ladder exhausts, and the server's retry re-delivers
            // the same logical callback under a fresh xid.
            net.partition(
                1,
                PartitionDir::Outbound,
                sim.now() + SimDuration::from_secs(7),
            );
            // B opening for write forces the invalidate callback to A.
            let mut opened = false;
            for _ in 0..20 {
                if b.open(fh, true).await.is_ok() {
                    opened = true;
                    break;
                }
            }
            assert!(opened, "B's open succeeded after the heal");
            b.close(fh, true).await.unwrap();
            a.close(fh, false).await.unwrap();
        }
    });
    sim.run_until(h);
    assert_eq!(
        a.stats().invalidations,
        1,
        "the duplicated callback invalidated exactly once"
    );
    assert!(
        a.callback_dupes() >= 1,
        "the client-side sequence guard absorbed the retry"
    );
    assert_eq!(server.stats().callbacks_failed, 0);
}
