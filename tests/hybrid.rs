//! §6.1 coexistence: plain NFS clients and SNFS clients sharing one
//! Spritely NFS server. The SNFS server answers the whole NFS vocabulary
//! (its handlers delegate to the baseline service code), and — with
//! `hybrid_nfs` on — treats NFS accesses to SNFS-open files as implicit
//! opens so both worlds stay consistent.

use std::rc::Rc;

use spritely::blockdev::{Disk, DiskParams};
use spritely::localfs::{FsParams, LocalFs};
use spritely::metrics::OpCounter;
use spritely::nfs::{NfsClient, NfsClientParams};
use spritely::proto::{ClientId, BLOCK_SIZE};
use spritely::rpcnet::{Caller, CallerParams, EndpointParams, NetParams, Network};
use spritely::sim::{Resource, Sim};
use spritely::snfs::{SnfsClient, SnfsClientParams, SnfsServer, SnfsServerParams};

struct HybridRig {
    sim: Sim,
    fs: LocalFs,
    snfs_client: SnfsClient,
    nfs_client: NfsClient,
}

fn rig(hybrid: bool) -> HybridRig {
    let sim = Sim::new();
    let disk = Disk::new(&sim, "sdisk", DiskParams::ra81());
    let fs = LocalFs::new(&sim, 1, disk, FsParams::default());
    let server_cpu = Resource::new(&sim, "scpu", 1);
    let server = SnfsServer::new(
        &sim,
        fs.clone(),
        4,
        SnfsServerParams {
            hybrid_nfs: hybrid,
            ..SnfsServerParams::default()
        },
    );
    let counter = OpCounter::new();
    let endpoint = server.endpoint(
        "snfsd",
        server_cpu.clone(),
        EndpointParams::default(),
        counter,
    );
    let net = Network::new(&sim, "eth", NetParams::ethernet_10mbit());
    // SNFS client (id 1) with its callback channel.
    let cpu1 = Resource::new(&sim, "c1", 1);
    let caller1 = Caller::new(
        &sim,
        net.clone(),
        endpoint.clone(),
        ClientId(1),
        cpu1.clone(),
        CallerParams::default(),
    );
    let snfs_client = SnfsClient::new(&sim, caller1, SnfsClientParams::default());
    let cb_ep =
        snfs_client.callback_endpoint("cb1", cpu1, EndpointParams::default(), OpCounter::new());
    let cb_caller = Caller::new(
        &sim,
        net.clone(),
        cb_ep,
        ClientId(0),
        server_cpu,
        CallerParams::default(),
    );
    server.register_client(ClientId(1), cb_caller);
    // Plain NFS client (id 2): same endpoint, no callback channel, no
    // open/close RPCs — it has no idea the server is stateful.
    let cpu2 = Resource::new(&sim, "c2", 1);
    let caller2 = Caller::new(
        &sim,
        net,
        endpoint,
        ClientId(2),
        cpu2,
        CallerParams::default(),
    );
    let nfs_client = NfsClient::new(&sim, caller2, NfsClientParams::default());
    HybridRig {
        sim,
        fs,
        snfs_client,
        nfs_client,
    }
}

#[test]
fn nfs_client_works_against_snfs_server() {
    // The basic §6.1 claim: an SNFS server serves plain NFS unmodified.
    let r = rig(true);
    let root = r.fs.root();
    let n = r.nfs_client.clone();
    let sim = r.sim.clone();
    let h = sim.spawn(async move {
        let (fh, _) = n.create(root, "plain").await.unwrap();
        n.open(fh, true).await.unwrap();
        n.write(fh, 0, b"hello from 1984").await.unwrap();
        n.close(fh, true).await.unwrap();
        n.open(fh, false).await.unwrap();
        let (got, _) = n.read(fh, 0, 100).await.unwrap();
        assert_eq!(got, b"hello from 1984");
        n.close(fh, false).await.unwrap();
    });
    sim.run_until(h);
}

#[test]
fn hybrid_read_pulls_snfs_writers_dirty_data() {
    // An SNFS client holds dirty delayed-write data; a plain NFS client
    // reads the file. With hybrid mode the implicit open triggers the
    // write-back callback, so the NFS client sees current data.
    let r = rig(true);
    let root = r.fs.root();
    let s = r.snfs_client.clone();
    let n = r.nfs_client.clone();
    let sim = r.sim.clone();
    let h = sim.spawn(async move {
        let (fh, _) = s.create(root, "shared").await.unwrap();
        s.open(fh, true).await.unwrap();
        s.write(fh, 0, &[3u8; BLOCK_SIZE]).await.unwrap();
        s.close(fh, true).await.unwrap();
        assert!(s.dirty_blocks() > 0);
        // NFS client reads: server sees a foreign access to a closed-dirty
        // file → implicit open → callback → fresh data.
        n.open(fh, false).await.unwrap();
        let (got, _) = n.read(fh, 0, BLOCK_SIZE as u32).await.unwrap();
        assert!(
            got.iter().all(|&x| x == 3),
            "hybrid server recalled the SNFS client's dirty blocks"
        );
        n.close(fh, false).await.unwrap();
    });
    sim.run_until(h);
}

#[test]
fn without_hybrid_mode_nfs_reader_can_see_stale_data() {
    // Negative control: with hybrid_nfs off, the same scenario serves the
    // server's (stale, empty) copy.
    let r = rig(false);
    let root = r.fs.root();
    let s = r.snfs_client.clone();
    let n = r.nfs_client.clone();
    let sim = r.sim.clone();
    let h = sim.spawn(async move {
        let (fh, _) = s.create(root, "shared").await.unwrap();
        s.open(fh, true).await.unwrap();
        s.write(fh, 0, &[3u8; BLOCK_SIZE]).await.unwrap();
        s.close(fh, true).await.unwrap();
        n.open(fh, false).await.unwrap();
        let (got, _) = n.read(fh, 0, BLOCK_SIZE as u32).await.unwrap();
        assert!(
            got.is_empty() || got.iter().all(|&x| x == 0),
            "without hybrid mode the server returns pre-write-back bytes"
        );
        n.close(fh, false).await.unwrap();
    });
    sim.run_until(h);
}

#[test]
fn hybrid_nfs_writer_invalidates_snfs_reader() {
    // A caching SNFS reader must not keep serving stale data after a
    // plain NFS client writes the file.
    let r = rig(true);
    let root = r.fs.root();
    let s = r.snfs_client.clone();
    let n = r.nfs_client.clone();
    let sim = r.sim.clone();
    let h = sim.spawn(async move {
        let (fh, _) = s.create(root, "f").await.unwrap();
        s.open(fh, true).await.unwrap();
        s.write(fh, 0, &[1u8; BLOCK_SIZE]).await.unwrap();
        s.close(fh, true).await.unwrap();
        // SNFS reopens read-only and caches.
        s.open(fh, false).await.unwrap();
        let _ = s.read(fh, 0, BLOCK_SIZE as u32).await.unwrap();
        // NFS client writes through (implicit open-for-write → version
        // bump + invalidate callback to the SNFS reader).
        n.open(fh, true).await.unwrap();
        n.write(fh, 0, &[2u8; BLOCK_SIZE]).await.unwrap();
        n.close(fh, true).await.unwrap();
        // SNFS reader must now observe the new data.
        let (got, _) = s.read(fh, 0, BLOCK_SIZE as u32).await.unwrap();
        assert!(
            got.iter().all(|&x| x == 2),
            "SNFS reader was invalidated by the hybrid write"
        );
        s.close(fh, false).await.unwrap();
    });
    sim.run_until(h);
}

#[test]
fn namespace_interop_is_symmetric() {
    // Files created by either client are visible to the other.
    let r = rig(true);
    let root = r.fs.root();
    let s = r.snfs_client.clone();
    let n = r.nfs_client.clone();
    let sim = r.sim.clone();
    let h = sim.spawn(async move {
        let (d, _) = s.mkdir(root, "proj").await.unwrap();
        n.create(d, "from_nfs").await.unwrap();
        s.create(d, "from_snfs").await.unwrap();
        let names_n: Vec<_> = n
            .readdir(d)
            .await
            .unwrap()
            .into_iter()
            .map(|e| e.name)
            .collect();
        let names_s: Vec<_> = s
            .readdir(d)
            .await
            .unwrap()
            .into_iter()
            .map(|e| e.name)
            .collect();
        assert_eq!(names_n, vec!["from_nfs", "from_snfs"]);
        assert_eq!(names_n, names_s);
        let _ = Rc::new(());
    });
    sim.run_until(h);
}
