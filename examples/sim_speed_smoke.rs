//! Tier-1 smoke gate for the simulator core (run by `scripts/check.sh`):
//!
//! 1. a cancelled `Sleep` (a timeout whose inner future won) must leave
//!    no live timer entry behind — the stale-timer regression;
//! 2. the executor must clear ≥ 1.5× the pre-PR timer-storm throughput
//!    recorded in `baselines/sim_speed.txt` (`--bench sim_speed` holds
//!    the full ≥ 2× gate; this is the fast always-on check).

use std::fs;
use std::time::Instant;

use spritely::sim::{Sim, SimDuration};

fn timer_storm(tasks: u64, iters: u64) -> f64 {
    let sim = Sim::new();
    for i in 0..tasks {
        let s = sim.clone();
        sim.spawn(async move {
            s.sleep(SimDuration::from_micros(i)).await;
            for _ in 0..iters {
                let r = s
                    .timeout(
                        SimDuration::from_secs(10),
                        s.sleep(SimDuration::from_millis(1)),
                    )
                    .await;
                assert!(r.is_ok());
            }
        });
    }
    let t0 = Instant::now();
    sim.run_to_quiescence();
    let wall = t0.elapsed().as_secs_f64();
    let stats = sim.stats();
    assert_eq!(
        stats.stale_wakes, 0,
        "abandoned guard timers fired spuriously"
    );
    assert_eq!(
        stats.timer_cancels,
        tasks * iters,
        "every abandoned guard must be cancelled on drop"
    );
    assert_eq!(sim.live_timers(), 0, "timers left after quiescence");
    (tasks * iters) as f64 / wall
}

fn reference_units_per_sec() -> f64 {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/baselines/sim_speed.txt");
    let text = fs::read_to_string(path).expect("read baselines/sim_speed.txt");
    text.lines()
        .find_map(|l| l.strip_prefix("timer_storm_units_per_sec "))
        .expect("timer_storm_units_per_sec line")
        .trim()
        .parse()
        .expect("numeric reference")
}

fn main() {
    // Regression: a timeout whose inner future wins cancels its guard.
    let sim = Sim::new();
    let s = sim.clone();
    sim.block_on(async move {
        let r = s
            .timeout(
                SimDuration::from_secs(100),
                s.sleep(SimDuration::from_millis(1)),
            )
            .await;
        assert!(r.is_ok());
        assert_eq!(s.live_timers(), 0, "guard timer survived its timeout");
    });
    sim.run_to_quiescence();
    assert_eq!(
        sim.now().as_micros(),
        1_000,
        "quiescence must come at the inner deadline, not the guard's"
    );

    // Throughput gate, best of 3.
    let units = (0..3)
        .map(|_| timer_storm(256, 500))
        .fold(f64::MIN, f64::max);
    let reference = reference_units_per_sec();
    let ratio = units / reference;
    println!(
        "sim_speed smoke: {units:.0} timeouts/s vs pre-PR {reference:.0} = {ratio:.2}x \
         (gate 1.5x); cancelled sleeps leave no live timers"
    );
    assert!(
        ratio >= 1.5,
        "executor fell below 1.5x the recorded pre-PR throughput: {ratio:.2}x"
    );
}
