//! Smoke test for the transport pipeline: runs a 4-client shared-file
//! read workload (read-ahead window 8, so background fetches batch into
//! compounds) against the paper transport and the pipelined one
//! (compound batching + piggybacked attributes + switched wire), with
//! tracing on for the pipelined run so the batch-conservation and
//! at-most-once checker rules are exercised. Exits non-zero if the
//! pipelined transport does not cut both messages and makespan, or if
//! the checker finds a violation. `scripts/check.sh` runs this as a
//! gate.
//!
//! Run with: `cargo run --release --example transport_smoke`

use std::process::ExitCode;

use spritely::harness::{
    report, Protocol, RemoteClient, ServerIoParams, Testbed, TestbedParams, TransportParams,
    WriteBehindParams,
};
use spritely::sim::SimDuration;
use spritely::vfs::OpenFlags;

const CLIENTS: usize = 4;
const FILE_BLOCKS: usize = 256;

fn params(t: TransportParams, trace: bool) -> TestbedParams {
    TestbedParams {
        protocol: Protocol::Snfs,
        server_io: ServerIoParams::pipelined(),
        write_behind: WriteBehindParams::pipelined(),
        read_ahead_window: 8,
        transport: t,
        trace,
        ..TestbedParams::default()
    }
}

/// Client 0 seeds a shared file (untimed), every client cold-boots,
/// then all clients read the whole file concurrently. Returns the
/// testbed plus the measured makespan and wire message count.
fn run(t: TransportParams, trace: bool) -> (Testbed, f64, u64) {
    let tb = Testbed::build_with_clients(params(t, trace), CLIENTS);
    {
        let p = tb.proc();
        let sim = tb.sim.clone();
        let h = tb.sim.spawn(async move {
            let fd = p
                .open("/remote/shared", OpenFlags::create_write())
                .await
                .unwrap();
            p.write(fd, &[3u8; FILE_BLOCKS * 4096]).await.unwrap();
            p.close(fd).await.unwrap();
            sim.sleep(SimDuration::from_secs(65)).await;
        });
        tb.sim.run_until(h);
        for host in &tb.clients {
            match host.remote.clone() {
                RemoteClient::None => {}
                RemoteClient::Nfs(c) => {
                    let h = tb.sim.spawn(async move {
                        c.cold_boot().await.expect("cold boot");
                    });
                    tb.sim.run_until(h);
                }
                RemoteClient::Snfs(c) => {
                    let h = tb.sim.spawn(async move {
                        c.cold_boot().await.expect("cold boot");
                    });
                    tb.sim.run_until(h);
                }
            }
        }
    }
    let t0 = tb.sim.now();
    let m0 = tb.net.messages();
    let mut handles = Vec::new();
    for host in &tb.clients {
        let p = host.proc(&tb.sim);
        handles.push(tb.sim.spawn(async move {
            let fd = p.open("/remote/shared", OpenFlags::read()).await.unwrap();
            while !p.read(fd, 4096).await.unwrap().is_empty() {}
            p.close(fd).await.unwrap();
        }));
    }
    for h in handles {
        tb.sim.run_until(h);
    }
    let makespan = tb.sim.now().duration_since(t0).as_secs_f64();
    let messages = tb.net.messages() - m0;
    (tb, makespan, messages)
}

fn main() -> ExitCode {
    let (paper_tb, paper_mk, paper_msgs) = run(TransportParams::paper(), false);
    let (pipe_tb, pipe_mk, pipe_msgs) = run(TransportParams::pipelined(), true);
    let ps = paper_tb.stats_snapshot().transport;
    let xs = pipe_tb.stats_snapshot().transport;
    println!(
        "{}",
        report::transport_table(&[("paper", &ps), ("pipelined", &xs)])
    );
    println!(
        "measured phase: paper {paper_msgs} msgs / {paper_mk:.2} s, \
         pipelined {pipe_msgs} msgs / {pipe_mk:.2} s ({:.2}x)",
        paper_mk / pipe_mk
    );
    let trace = pipe_tb.finish_trace().expect("tracing was enabled");
    if !trace.ok() {
        eprintln!(
            "trace checker found violations:\n{}",
            report::trace_summary(&trace)
        );
        return ExitCode::FAILURE;
    }
    if pipe_msgs >= paper_msgs {
        eprintln!("pipelined transport did not reduce wire messages");
        return ExitCode::FAILURE;
    }
    if pipe_mk >= paper_mk {
        eprintln!("pipelined transport is not faster than the paper transport");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
