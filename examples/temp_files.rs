//! The §5.4 mechanism, parameterized: how long does a temp file have to
//! live before its data escapes to the server?
//!
//! Under SNFS a temp file deleted before the update daemon's tick costs
//! zero write RPCs; NFS writes every block through regardless. This sweep
//! also shows the §6.2 delayed-close variant saving the open/close RPCs
//! of short-lived reopen patterns.
//!
//! Run with: `cargo run --example temp_files`

use spritely::harness::{run_reopen, run_temp_lifetime, Protocol};
use spritely::metrics::TextTable;
use spritely::proto::NfsProc;
use spritely::sim::SimDuration;

fn main() {
    println!("Temp-file lifetime sweep (64 KB file, deleted after <lifetime>):\n");
    let mut t = TextTable::new(vec!["lifetime", "NFS write RPCs", "SNFS write RPCs"]);
    for secs in [1u64, 5, 15, 45, 90] {
        let lifetime = SimDuration::from_secs(secs);
        let nfs = run_temp_lifetime(Protocol::Nfs, 64 * 1024, lifetime);
        let snfs = run_temp_lifetime(Protocol::Snfs, 64 * 1024, lifetime);
        t.row(vec![
            format!("{secs} s"),
            nfs.write_rpcs.to_string(),
            snfs.write_rpcs.to_string(),
        ]);
    }
    println!("{}", t.render());

    println!("§5.3 write-close-reopen-read probe (256 KB):\n");
    let mut t = TextTable::new(vec!["protocol", "reread", "read time", "read RPCs"]);
    for (p, same) in [
        (Protocol::Nfs, true),
        (Protocol::Nfs, false),
        (Protocol::NfsFixed, true),
        (Protocol::Snfs, true),
    ] {
        let run = run_reopen(p, same, 256 * 1024);
        t.row(vec![
            p.label().to_string(),
            if same { "same file" } else { "other file" }.to_string(),
            format!("{:.2} s", run.result.read_time.as_secs_f64()),
            run.ops.get(NfsProc::Read).to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "The vintage NFS client purges its cache at close, so re-reading the same\n\
         file costs the same as reading a different one — the §5.3 observation."
    );
}
