//! Server scaling (paper §2.3): how many active clients can one server
//! carry before response times inflate? Each client runs a compact
//! compile workload as a diskless workstation (/tmp on the server);
//! makespan and server utilization tell the capacity story the Sprite
//! measurements hinted at (≈4x NFS's client capacity).
//!
//! Run with: `cargo run --release --example server_scaling`

use spritely::harness::{run_scaling, Protocol};
use spritely::metrics::TextTable;

fn main() {
    let mut t = TextTable::new(vec![
        "clients",
        "NFS makespan",
        "NFS util",
        "SNFS makespan",
        "SNFS util",
        "speedup",
    ]);
    for &n in &[1usize, 2, 4, 8] {
        let nfs = run_scaling(Protocol::Nfs, n, 42);
        let snfs = run_scaling(Protocol::Snfs, n, 42);
        t.row(vec![
            n.to_string(),
            format!("{:.0} s", nfs.makespan.as_secs_f64()),
            format!("{:.2}", nfs.server_util),
            format!("{:.0} s", snfs.makespan.as_secs_f64()),
            format!("{:.2}", snfs.server_util),
            format!(
                "{:.2}x",
                nfs.makespan.as_secs_f64() / snfs.makespan.as_secs_f64()
            ),
        ]);
    }
    println!("{}", t.render());
    println!(
        "The gap widens with client count: NFS's synchronous writes serialize on\n\
         the server disk, while SNFS clients mostly stay out of the server's way."
    );
}
