//! Emits the Figure 5-1 / 5-2 series (server CPU utilization and RPC
//! call rates over time during the Andrew benchmark, `/tmp` remote) as
//! CSV on stdout, ready for any plotting tool.
//!
//! Run with: `cargo run --release --example figures > figures.csv`

use spritely::harness::{report, run_andrew, Protocol};

fn main() {
    let nfs = run_andrew(Protocol::Nfs, true, 42);
    let snfs = run_andrew(Protocol::Snfs, true, 42);

    println!("# Figure 5-1: NFS server utilization and call rates (/tmp remote)");
    print!("{}", report::figure_series(&nfs));
    println!("# Figure 5-2: SNFS server utilization and call rates (/tmp remote)");
    print!("{}", report::figure_series(&snfs));

    eprintln!(
        "NFS : mean util {:.2}, peak {:.2}, elapsed {:.0}s",
        mean_util(&nfs),
        peak_util(&nfs),
        nfs.times.total().as_secs_f64()
    );
    eprintln!(
        "SNFS: mean util {:.2}, peak {:.2}, elapsed {:.0}s",
        mean_util(&snfs),
        peak_util(&snfs),
        snfs.times.total().as_secs_f64()
    );
    eprintln!(
        "The paper's observation holds: load tracks the aggregate call rate, and\n\
         because SNFS finishes sooner its *average* load during the run is a bit\n\
         higher and burstier, while the time-integral of load is slightly lower."
    );
}

fn mean_util(run: &spritely::harness::AndrewRun) -> f64 {
    let n = run.util_samples.len().max(1);
    run.util_samples.iter().map(|&(_, u)| u).sum::<f64>() / n as f64
}

fn peak_util(run: &spritely::harness::AndrewRun) -> f64 {
    run.util_samples.iter().map(|&(_, u)| u).fold(0.0, f64::max)
}
