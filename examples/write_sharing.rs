//! The correctness story: two clients share one file, one of them
//! writing. Baseline NFS serves stale data inside its attribute-probe
//! window; Spritely NFS disables caching for the write-shared file and
//! never returns stale bytes — the guarantee that §2.3 suggests is why
//! shared-database applications didn't exist over NFS.
//!
//! Run with: `cargo run --example write_sharing`

use spritely::harness::{Protocol, RemoteClient, Testbed, TestbedParams};
use spritely::proto::{FileHandle, BLOCK_SIZE};
use spritely::sim::{Sim, SimDuration};

enum WriterReader {
    Nfs(spritely::nfs::NfsClient, spritely::nfs::NfsClient),
    Snfs(spritely::snfs::SnfsClient, spritely::snfs::SnfsClient),
}

impl WriterReader {
    /// Writer seeds the file with generation 1, the reader caches it,
    /// then the writer bumps it to generation 2 while *both keep the file
    /// open*. Returns (stale reads, total re-reads) at the reader.
    async fn run(&self, root: FileHandle, sim: &Sim) -> (u64, u64) {
        match self {
            WriterReader::Nfs(w, r) => {
                let (fh, _) = w.create(root, "shared.db").await.unwrap();
                w.open(fh, true).await.unwrap();
                w.write(fh, 0, &[1u8; BLOCK_SIZE]).await.unwrap();
                w.fsync(fh).await.unwrap();
                r.open(fh, false).await.unwrap();
                let _ = r.read(fh, 0, BLOCK_SIZE as u32).await.unwrap();
                // Writer updates the record; NFS pushes it through.
                w.write(fh, 0, &[2u8; BLOCK_SIZE]).await.unwrap();
                w.fsync(fh).await.unwrap();
                // Reader polls for a while.
                let mut stale = 0;
                let mut total = 0;
                for _ in 0..10 {
                    sim.sleep(SimDuration::from_millis(500)).await;
                    let (data, _) = r.read(fh, 0, BLOCK_SIZE as u32).await.unwrap();
                    total += 1;
                    if data[0] == 1 {
                        stale += 1;
                    }
                }
                w.close(fh, true).await.unwrap();
                r.close(fh, false).await.unwrap();
                (stale, total)
            }
            WriterReader::Snfs(w, r) => {
                let (fh, _) = w.create(root, "shared.db").await.unwrap();
                w.open(fh, true).await.unwrap();
                w.write(fh, 0, &[1u8; BLOCK_SIZE]).await.unwrap();
                // Reader arrives: the file becomes write-shared; the
                // server calls the writer back and disables caching.
                r.open(fh, false).await.unwrap();
                let _ = r.read(fh, 0, BLOCK_SIZE as u32).await.unwrap();
                w.write(fh, 0, &[2u8; BLOCK_SIZE]).await.unwrap();
                let mut stale = 0;
                let mut total = 0;
                for _ in 0..10 {
                    sim.sleep(SimDuration::from_millis(500)).await;
                    let (data, _) = r.read(fh, 0, BLOCK_SIZE as u32).await.unwrap();
                    total += 1;
                    if data[0] == 1 {
                        stale += 1;
                    }
                }
                w.close(fh, true).await.unwrap();
                r.close(fh, false).await.unwrap();
                (stale, total)
            }
        }
    }
}

fn scenario(protocol: Protocol) -> (u64, u64) {
    let tb = Testbed::build_with_clients(
        TestbedParams {
            protocol,
            ..TestbedParams::default()
        },
        2,
    );
    let root = tb.server_fs.root();
    let sim = tb.sim.clone();
    let pair = match (&tb.clients[0].remote, &tb.clients[1].remote) {
        (RemoteClient::Nfs(a), RemoteClient::Nfs(b)) => WriterReader::Nfs(a.clone(), b.clone()),
        (RemoteClient::Snfs(a), RemoteClient::Snfs(b)) => WriterReader::Snfs(a.clone(), b.clone()),
        _ => unreachable!("homogeneous protocols only in this example"),
    };
    let sim2 = sim.clone();
    let h = sim.spawn(async move { pair.run(root, &sim2).await });
    sim.run_until(h)
}

fn main() {
    let (nfs_stale, nfs_total) = scenario(Protocol::Nfs);
    let (snfs_stale, snfs_total) = scenario(Protocol::Snfs);
    println!("write-sharing a file between two clients, writer updates mid-stream:");
    println!("  NFS : {nfs_stale}/{nfs_total} reads returned STALE data (probe window)");
    println!("  SNFS: {snfs_stale}/{snfs_total} reads returned stale data (guaranteed none)");
    assert!(nfs_stale > 0, "NFS should exhibit its stale window");
    assert_eq!(snfs_stale, 0, "SNFS guarantees consistency");
}
