//! Smoke test for the fault-injection layer: runs the Andrew benchmark,
//! a two-client write-sharing workload and a recall-heavy delegation
//! workload under the chaos fault schedule (5% request loss, 3%
//! duplication, 5% extra delay, 2% reply loss, plus a scripted
//! partition/heal cycle in the sharing and delegation workloads) and
//! exits non-zero unless both runs terminate, pass the causal trace
//! checker, converge to the fault-free server contents, and account for
//! every injected fault. `scripts/check.sh` runs this as a gate.
//!
//! Run with: `cargo run --release --example chaos_smoke`

use std::process::ExitCode;

use spritely::harness::{chaos_andrew, chaos_delegation, chaos_write_sharing};

fn main() -> ExitCode {
    let mut ok = true;
    for verdict in [
        chaos_write_sharing(11),
        chaos_delegation(13),
        chaos_andrew(7),
    ] {
        println!("{}", verdict.report());
        if verdict.injected() == 0 {
            println!("FAIL: the fault schedule injected nothing");
            ok = false;
        }
        if !verdict.converged() {
            println!("FAIL: faulted run did not converge");
            ok = false;
        }
        println!();
    }
    if ok {
        println!("chaos smoke OK");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
