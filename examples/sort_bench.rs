//! Regenerates the paper's sort-benchmark artifacts: Table 5-3 (elapsed
//! times for three input sizes), Table 5-4 (RPC calls), and Tables
//! 5-5/5-6 (infinite write-delay: the update daemon disabled).
//!
//! Run with: `cargo run --release --example sort_bench`

use spritely::harness::{report, run_sort_experiment, Protocol};

fn main() {
    println!("Running the external-sort benchmark...\n");

    // Table 5-3: three input sizes, /usr/tmp on local disk / NFS / SNFS.
    let mut runs = Vec::new();
    for &kb in &[281u64, 1408, 2816] {
        for p in [Protocol::Local, Protocol::Nfs, Protocol::Snfs] {
            runs.push(run_sort_experiment(p, kb * 1024, true));
        }
    }
    println!("Table 5-3: sort benchmark elapsed time\n");
    println!("{}", report::sort_table(&runs));

    println!("Table 5-4: RPC calls for the sort benchmark (2816 KB input)\n");
    let big: Vec<_> = runs
        .drain(..)
        .filter(|r| r.input_bytes == 2816 * 1024)
        .collect();
    println!("{}", report::sort_rpc_table(&big));

    // Tables 5-5 / 5-6: with the update daemons disabled, SNFS temp data
    // never reaches the server at all.
    let mut infinite = Vec::new();
    for p in [Protocol::Local, Protocol::Nfs, Protocol::Snfs] {
        infinite.push(run_sort_experiment(p, 2816 * 1024, false));
    }
    println!("Table 5-5: sort benchmark, infinite write-delay\n");
    println!("{}", report::sort_table(&infinite));

    println!("Table 5-6: RPC calls, update daemon on vs. off (2816 KB)\n");
    let mut t56 = big;
    t56.extend(
        infinite
            .into_iter()
            .filter(|r| r.protocol != Protocol::Local),
    );
    println!("{}", report::sort_rpc_table(&t56));
}
