//! Smoke test for the sharded namespace (DESIGN.md §18), run as a gate
//! by `scripts/check.sh`. Exits non-zero unless:
//!
//! - the paper configuration (`ShardParams::paper()`) emits no shards
//!   section at all — the single-server path stays byte-inert;
//! - two identical multi-shard runs produce byte-identical statistics
//!   snapshots (determinism extends to the sharded build);
//! - the shared-nothing scaling workload at 8 shards / 128 clients
//!   clears 1.5× the aggregate throughput of the same workload on one
//!   server (the real curve is steeper — see BENCH_scaling.json);
//! - the shard chaos workload (cross-shard renames with the coordinator
//!   partitioned mid-transaction, on top of seeded drop/dup/delay
//!   faults) converges to the fault-free server digest with zero trace
//!   violations.
//!
//! Run with: `cargo run --release --example shard_smoke`

use std::process::ExitCode;

use spritely::harness::{
    chaos_shard, report, run_scaling_shards, Protocol, ShardParams, Testbed, TestbedParams,
};

fn main() -> ExitCode {
    let mut ok = true;

    // Paper configuration: no shard hosts, no layout, no snapshot section.
    let paper = Testbed::build(TestbedParams {
        protocol: Protocol::Snfs,
        shards: ShardParams::paper(),
        ..TestbedParams::default()
    });
    let json = paper.stats_snapshot().to_json();
    if paper.shard_hosts.is_empty() && paper.layout.is_none() && !json.contains("\"shards\"") {
        println!("paper config: unsharded path, no shards section — OK");
    } else {
        println!("FAIL: ShardParams::paper() leaked sharding state into the testbed");
        ok = false;
    }

    // Determinism: the same seed must give byte-identical snapshots.
    let a = run_scaling_shards(4, 32, 42);
    let b = run_scaling_shards(4, 32, 42);
    if a.stats.to_json() == b.stats.to_json() && a.makespan == b.makespan {
        println!(
            "determinism: two 4-shard/32-client runs byte-identical ({} RPCs, {:.0} ops/s) — OK",
            a.total_rpcs, a.throughput
        );
    } else {
        println!("FAIL: identical sharded runs diverged");
        ok = false;
    }

    // Scaling: 8 shards must beat one server by 1.5x on the same
    // shared-nothing 128-client workload.
    let one = run_scaling_shards(1, 128, 42);
    let eight = run_scaling_shards(8, 128, 42);
    let speedup = eight.throughput / one.throughput;
    println!(
        "scaling, 128 clients: 1 shard {:.0} ops/s ({:.1}s), 8 shards {:.0} ops/s ({:.1}s) — {speedup:.2}x",
        one.throughput,
        one.makespan.as_secs_f64(),
        eight.throughput,
        eight.makespan.as_secs_f64(),
    );
    if let Some(s) = &eight.stats.shards {
        println!("{}", report::shard_table(s));
    }
    if speedup < 1.5 {
        println!("FAIL: sharding speedup {speedup:.2}x below the 1.5x gate");
        ok = false;
    }

    // Chaos: partition the coordinating shard mid-rename and converge.
    let verdict = chaos_shard(21);
    println!("{}", verdict.report());
    if verdict.injected() == 0 {
        println!("FAIL: the shard chaos schedule injected nothing");
        ok = false;
    }
    if !verdict.converged() {
        println!("FAIL: shard chaos run did not converge");
        ok = false;
    }

    if ok {
        println!("shard smoke: all gates passed");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
