//! Quickstart: build a Spritely NFS client/server pair by hand, write a
//! file, delete a temp file before its write-back, and watch the RPC and
//! disk counters tell the paper's story.
//!
//! Run with: `cargo run --example quickstart`

use std::rc::Rc;

use spritely::blockdev::{Disk, DiskParams};
use spritely::localfs::{FsParams, LocalFs};
use spritely::metrics::OpCounter;
use spritely::proto::{ClientId, NfsProc, BLOCK_SIZE};
use spritely::rpcnet::{Caller, CallerParams, EndpointParams, NetParams, Network};
use spritely::sim::{Resource, Sim, SimDuration};
use spritely::snfs::{SnfsClient, SnfsClientParams, SnfsServer, SnfsServerParams};

fn main() {
    // 1. A simulation, a server host (CPU + RA81 disk + Unix FS), and a
    //    10 Mbit Ethernet.
    let sim = Sim::new();
    let disk = Disk::new(&sim, "server-disk", DiskParams::ra81());
    let fs = LocalFs::new(&sim, 1, disk, FsParams::default());
    fs.spawn_update_daemon();
    let server_cpu = Resource::new(&sim, "server-cpu", 1);
    let net = Network::new(&sim, "ether", NetParams::ethernet_10mbit());

    // 2. The Spritely NFS server and its RPC endpoint.
    let server = SnfsServer::new(&sim, fs.clone(), 4, SnfsServerParams::default());
    let counter = OpCounter::new();
    let endpoint = server.endpoint(
        "snfsd",
        server_cpu.clone(),
        EndpointParams::default(),
        counter.clone(),
    );

    // 3. A client host with an SNFS client, plus the callback channel the
    //    server uses to reach it.
    let client_cpu = Resource::new(&sim, "client-cpu", 1);
    let caller = Caller::new(
        &sim,
        net.clone(),
        endpoint,
        ClientId(1),
        client_cpu.clone(),
        CallerParams::default(),
    );
    let client = SnfsClient::new(&sim, caller, SnfsClientParams::default());
    client.spawn_update_daemon();
    let cb_endpoint = client.callback_endpoint(
        "cbsrv",
        client_cpu,
        EndpointParams::default(),
        OpCounter::new(),
    );
    let cb_caller = Caller::new(
        &sim,
        net,
        cb_endpoint,
        ClientId(0),
        server_cpu,
        CallerParams::default(),
    );
    server.register_client(ClientId(1), cb_caller);

    // 4. Use it like a file system.
    let root = fs.root();
    let c = Rc::new(client);
    let sim2 = sim.clone();
    let c2 = Rc::clone(&c);
    let counter2 = counter.clone();
    sim.block_on(async move {
        // A file that lives: written, closed — and *not* flushed at close.
        let (fh, _) = c2.create(root, "report.txt").await.unwrap();
        c2.open(fh, true).await.unwrap();
        c2.write(fh, 0, b"consistency and performance, together")
            .await
            .unwrap();
        c2.close(fh, true).await.unwrap();
        println!(
            "[{}] closed report.txt: write RPCs so far = {} (delayed write-back!)",
            sim2.now(),
            counter2.get(NfsProc::Write)
        );

        // A temp file that dies young: its data never crosses the wire.
        let (tmp, _) = c2.create(root, "scratch.tmp").await.unwrap();
        c2.open(tmp, true).await.unwrap();
        c2.write(tmp, 0, &vec![0u8; 16 * BLOCK_SIZE]).await.unwrap();
        c2.close(tmp, true).await.unwrap();
        c2.remove(root, "scratch.tmp", Some(tmp)).await.unwrap();
        println!(
            "[{}] deleted scratch.tmp: {} dirty blocks cancelled, write RPCs = {}",
            sim2.now(),
            c2.stats().cancelled_blocks,
            counter2.get(NfsProc::Write)
        );

        // Let the 30 s update daemon write report.txt back.
        sim2.sleep(SimDuration::from_secs(35)).await;
        println!(
            "[{}] after the update tick: write RPCs = {} (report.txt only)",
            sim2.now(),
            counter2.get(NfsProc::Write)
        );

        // Reopen and read: version numbers validate the cache, so the read
        // is served locally.
        let reads_before = counter2.get(NfsProc::Read);
        c2.open(fh, false).await.unwrap();
        let (data, _) = c2.read(fh, 0, 100).await.unwrap();
        c2.close(fh, false).await.unwrap();
        println!(
            "[{}] reopened and read {:?}... with {} read RPCs (cache kept across close)",
            sim2.now(),
            String::from_utf8_lossy(&data[..11.min(data.len())]),
            counter2.get(NfsProc::Read) - reads_before
        );
    });

    println!("\nRPC totals:");
    for (p, n) in counter.snapshot().nonzero() {
        println!("  {p:<8} {n}");
    }
    println!("server disk writes: {}", fs.disk().stats().writes);
}
