//! Profiles a traced SNFS Andrew run and asserts the attribution
//! invariants the profiler promises: every span's phase durations sum
//! exactly to its wall-clock latency, at least 99% of all op time lands
//! in a named phase, and the disk and network phases are nonzero (a
//! remote-mount run that shows no wire or disk time means the span
//! reconstruction broke). `scripts/check.sh` runs this as a gate.
//!
//! Run with: `cargo run --release --example profile_smoke`

use std::process::ExitCode;

use spritely::harness::{report, run_andrew_with, Protocol, TestbedParams};
use spritely::trace::{profile_trace, Phase};

fn main() -> ExitCode {
    println!("Profiling a traced Andrew run (SNFS, /usr/tmp remote)...\n");
    let run = run_andrew_with(
        TestbedParams {
            protocol: Protocol::Snfs,
            tmp_remote: true,
            trace: true,
            ..TestbedParams::default()
        },
        42,
    );
    let trace = run.trace.expect("tracing was enabled");
    let profile = profile_trace(&trace.events);
    println!("{}", report::profile_table(&profile));

    let mut ok = true;
    let mut check = |label: &str, pass: bool| {
        println!("{} {}", if pass { "ok  " } else { "FAIL" }, label);
        ok &= pass;
    };

    let mut exact = true;
    for o in &profile.ops {
        exact &= o.phase_us.iter().sum::<u64>() == o.total_us();
    }
    check("every span's phase durations sum to its latency", exact);
    check(
        "every rpc_call claimed exactly once",
        profile.claims.total() == profile.total_rpcs,
    );
    check(
        &format!(
            ">=99% of op time attributed (got {:.3}%)",
            profile.attributed_fraction() * 100.0
        ),
        profile.attributed_fraction() >= 0.99,
    );
    check(
        "network transit phase is nonzero",
        profile.phase_total(Phase::Net) > 0,
    );
    check(
        "disk phases are nonzero",
        profile.phase_total(Phase::DiskQueue) + profile.phase_total(Phase::DiskService) > 0,
    );
    check(
        "cache-local phase is nonzero",
        profile.phase_total(Phase::CacheLocal) > 0,
    );

    if ok {
        ExitCode::SUCCESS
    } else {
        eprintln!("\nprofile smoke checks failed");
        ExitCode::FAILURE
    }
}
