//! Runs the Andrew benchmark on SNFS with event tracing on, prints the
//! trace summary, and exits non-zero if the protocol invariant checker
//! finds any violation. `scripts/check.sh` runs this as a gate.
//!
//! Run with: `cargo run --release --example traced_andrew`

use std::process::ExitCode;

use spritely::harness::{report, run_andrew_with, Protocol, TestbedParams};

fn main() -> ExitCode {
    println!("Running the Andrew benchmark on SNFS with tracing on...\n");
    let run = run_andrew_with(
        TestbedParams {
            protocol: Protocol::Snfs,
            tmp_remote: true,
            trace: true,
            ..TestbedParams::default()
        },
        42,
    );
    let trace = run.trace.expect("tracing was enabled");
    println!("{}", report::trace_summary(&trace));
    println!("stats snapshot:\n{}", run.stats.to_json());
    if trace.ok() {
        ExitCode::SUCCESS
    } else {
        eprintln!("trace checker found violations");
        ExitCode::FAILURE
    }
}
