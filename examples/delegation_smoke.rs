//! Smoke test for open delegations (DESIGN.md §17): a two-client SNFS
//! testbed runs an open-churn mix — one client re-opens/reads/closes a
//! file it effectively owns, a second client barges in with a write —
//! with delegations off (the paper protocol) and on. The delegated run
//! must serve the churn locally (grant → local opens → recall on the
//! conflicting open → return), cut the wire messages of the mix by at
//! least 30%, revoke nothing, and produce a trace the delegation-safety
//! checker accepts. Exits non-zero otherwise. `scripts/check.sh` runs
//! this as a gate.
//!
//! Run with: `cargo run --release --example delegation_smoke`

use std::process::ExitCode;

use spritely::harness::{report, DelegationParams, Protocol, Testbed, TestbedParams};
use spritely::sim::SimDuration;
use spritely::vfs::OpenFlags;

const CHURN_BEFORE: usize = 40;
const CHURN_AFTER: usize = 10;
const FILE_BLOCKS: usize = 8;

fn params(d: DelegationParams, trace: bool) -> TestbedParams {
    TestbedParams {
        protocol: Protocol::Snfs,
        name_cache: true,
        delegation: d,
        trace,
        ..TestbedParams::default()
    }
}

/// Seeds `/remote/doc` from client 0 (untimed), then runs the measured
/// open-churn mix: `CHURN_BEFORE` open/read/close cycles on client 0, a
/// conflicting write open from client 1, and `CHURN_AFTER` more cycles
/// on client 0. Returns the testbed and the measured message count.
fn run(d: DelegationParams, trace: bool) -> (Testbed, u64) {
    let tb = Testbed::build_with_clients(params(d, trace), 2);
    {
        let p = tb.proc();
        let sim = tb.sim.clone();
        let h = tb.sim.spawn(async move {
            let fd = p
                .open("/remote/doc", OpenFlags::create_write())
                .await
                .unwrap();
            p.write(fd, &[7u8; FILE_BLOCKS * 4096]).await.unwrap();
            p.close(fd).await.unwrap();
            // Drain the delayed write-back so the churn phase is clean.
            sim.sleep(SimDuration::from_secs(65)).await;
        });
        tb.sim.run_until(h);
    }
    let m0 = tb.net.messages();
    let churn = |n: usize| {
        let p = tb.clients[0].proc(&tb.sim);
        let h = tb.sim.spawn(async move {
            for _ in 0..n {
                let fd = p.open("/remote/doc", OpenFlags::read()).await.unwrap();
                while !p.read(fd, 4096).await.unwrap().is_empty() {}
                p.close(fd).await.unwrap();
            }
        });
        tb.sim.run_until(h);
    };
    churn(CHURN_BEFORE);
    {
        let p = tb.clients[1].proc(&tb.sim);
        let h = tb.sim.spawn(async move {
            let fd = p
                .open("/remote/doc", OpenFlags::read_write())
                .await
                .unwrap();
            p.write(fd, &[9u8; 4096]).await.unwrap();
            p.close(fd).await.unwrap();
        });
        tb.sim.run_until(h);
    }
    churn(CHURN_AFTER);
    let messages = tb.net.messages() - m0;
    (tb, messages)
}

fn main() -> ExitCode {
    let (paper_tb, paper_msgs) = run(DelegationParams::paper(), false);
    let (deleg_tb, deleg_msgs) = run(DelegationParams::pipelined(), true);
    let reduction = 100.0 * (1.0 - deleg_msgs as f64 / paper_msgs as f64);

    let snap = deleg_tb.stats_snapshot();
    let d = snap.delegation.expect("delegations were enabled");
    println!("{}", report::delegation_table(&[("delegated", &d)]));
    println!(
        "open-churn mix: paper {paper_msgs} msgs, delegated {deleg_msgs} msgs \
         ({reduction:.0}% reduction)"
    );

    let trace = deleg_tb.finish_trace().expect("tracing was enabled");
    if !trace.ok() {
        eprintln!(
            "trace checker found violations:\n{}",
            report::trace_summary(&trace)
        );
        return ExitCode::FAILURE;
    }
    let s = d.stats;
    if s.grants_read == 0 || s.grants_write == 0 {
        eprintln!("expected both delegation kinds granted, got {s:?}");
        return ExitCode::FAILURE;
    }
    if s.local_opens < CHURN_BEFORE as u64 {
        eprintln!(
            "expected >= {CHURN_BEFORE} local opens, got {}",
            s.local_opens
        );
        return ExitCode::FAILURE;
    }
    if s.recalls < 2 || s.returns < 2 {
        eprintln!("expected the conflicting opens to recall and return (>= 2 each), got {s:?}");
        return ExitCode::FAILURE;
    }
    if s.revokes != 0 {
        eprintln!("a healthy run must not revoke, got {}", s.revokes);
        return ExitCode::FAILURE;
    }
    if reduction < 30.0 {
        eprintln!("delegations must cut the mix's messages by >= 30%, got {reduction:.1}%");
        return ExitCode::FAILURE;
    }
    if paper_tb.stats_snapshot().delegation.is_some() {
        eprintln!("paper-mode snapshot must not carry a delegation section");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
