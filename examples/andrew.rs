//! Regenerates the paper's Andrew-benchmark artifacts: Table 5-1 (elapsed
//! times per phase), Table 5-2 (RPC counts per procedure), and the data
//! behind Figures 5-1/5-2 (server utilization and call rates over time).
//!
//! Run with: `cargo run --release --example andrew`

use spritely::harness::{report, run_andrew, Protocol};

fn main() {
    println!("Running the Andrew benchmark in five configurations...\n");
    let runs = vec![
        run_andrew(Protocol::Local, false, 42),
        run_andrew(Protocol::Nfs, false, 42),
        run_andrew(Protocol::Nfs, true, 42),
        run_andrew(Protocol::Snfs, false, 42),
        run_andrew(Protocol::Snfs, true, 42),
    ];

    println!("Table 5-1: Andrew benchmark elapsed time (seconds)\n");
    println!("{}", report::table_5_1(&runs));

    println!("Table 5-2: RPC calls for the Andrew benchmark (steady state)\n");
    println!("{}", report::table_5_2(&runs));

    // Figures 5-1 / 5-2 use the /tmp-remote runs (indices 2 and 4), as in
    // the paper ("in both cases, /tmp was remotely mounted").
    println!(
        "Figure 5-1 series (NFS, /tmp remote):\n{}",
        report::figure_series(&runs[2])
    );
    println!(
        "Figure 5-2 series (SNFS, /tmp remote):\n{}",
        report::figure_series(&runs[4])
    );

    println!(
        "RPC latency (NFS, /tmp remote):\n{}",
        report::latency_table(&runs[2].latency)
    );

    let nfs = &runs[2];
    let snfs = &runs[4];
    println!(
        "SNFS finishes the whole benchmark {:.0}% faster than NFS (/tmp remote); \
         server disk writes {:.0}% lower.",
        (1.0 - snfs.times.total().as_secs_f64() / nfs.times.total().as_secs_f64()) * 100.0,
        (1.0 - snfs.server_disk.writes as f64 / nfs.server_disk.writes as f64) * 100.0,
    );
}
