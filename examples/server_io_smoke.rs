//! Smoke test for the server I/O pipeline: runs the 4-client SNFS
//! scaling workload against the paper-faithful FIFO server and the
//! pipelined one (C-LOOK arm + server block cache + wider admission),
//! with tracing on for the pipelined run so the disk-queue/reorder
//! checker rule is exercised. Exits non-zero if the pipeline is not
//! faster or the checker finds a violation. `scripts/check.sh` runs
//! this as a gate.
//!
//! Run with: `cargo run --release --example server_io_smoke`

use std::process::ExitCode;

use spritely::harness::{report, run_scaling_with, Protocol, ServerIoParams, TestbedParams};

fn params(io: ServerIoParams, trace: bool) -> TestbedParams {
    TestbedParams {
        protocol: Protocol::Snfs,
        tmp_remote: true,
        server_io: io,
        trace,
        ..TestbedParams::default()
    }
}

fn main() -> ExitCode {
    let paper = run_scaling_with(params(ServerIoParams::paper(), false), 4, 42);
    let pipe = run_scaling_with(params(ServerIoParams::pipelined(), true), 4, 42);
    let labeled = [("paper", &paper), ("pipelined", &pipe)];
    println!("{}", report::server_io_table(&labeled));
    println!(
        "makespan: paper {:.1} s, pipelined {:.1} s ({:.2}x)",
        paper.makespan.as_secs_f64(),
        pipe.makespan.as_secs_f64(),
        paper.makespan.as_secs_f64() / pipe.makespan.as_secs_f64()
    );
    let trace = pipe.trace.as_ref().expect("tracing was enabled");
    if !trace.ok() {
        eprintln!(
            "trace checker found violations:\n{}",
            report::trace_summary(trace)
        );
        return ExitCode::FAILURE;
    }
    if pipe.makespan >= paper.makespan {
        eprintln!("pipelined server I/O is not faster than the paper server");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
