#!/usr/bin/env bash
# Tier-1 gate: everything a change must pass before it lands.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy -p spritely-trace -- -D warnings"
cargo clippy -p spritely-trace --all-targets -- -D warnings

echo "==> cargo clippy -p spritely-blockdev -- -D warnings"
cargo clippy -p spritely-blockdev --all-targets -- -D warnings

echo "==> cargo clippy -p spritely-proto -p spritely-rpcnet -- -D warnings"
cargo clippy -p spritely-proto -p spritely-rpcnet --all-targets -- -D warnings

echo "==> cargo clippy -p spritely-sim -- -D warnings"
cargo clippy -p spritely-sim --all-targets -- -D warnings

echo "==> cargo clippy -p spritely-metrics -- -D warnings"
cargo clippy -p spritely-metrics --all-targets -- -D warnings

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> traced Andrew run (invariant checker gate)"
cargo run --release --quiet --example traced_andrew

echo "==> server I/O pipeline smoke run (pipelined must beat paper)"
cargo run --release --quiet --example server_io_smoke

echo "==> transport pipeline smoke run (pipelined must beat paper)"
cargo run --release --quiet --example transport_smoke

echo "==> chaos smoke run (faulted runs must converge to fault-free contents)"
cargo run --release --quiet --example chaos_smoke

echo "==> delegation smoke run (open churn must shed messages, trace must stay clean)"
cargo run --release --quiet --example delegation_smoke

echo "==> sim-core smoke run (>= 1.5x pre-PR events/sec, cancelled sleeps leave no timers)"
cargo run --release --quiet --example sim_speed_smoke

echo "==> latency profiler smoke run (phase accounting must be exact, >= 99% attributed)"
cargo run --release --quiet --example profile_smoke

echo "==> shard smoke run (paper mode inert, deterministic, >= 1.5x at 8 shards, chaos converges)"
cargo run --release --quiet --example shard_smoke

echo "==> snapshot regression gate (fresh Andrew profile vs baselines/)"
cargo run --release --quiet --bin spritely -- profile andrew > /dev/null
cargo run --release --quiet --bin spritely -- compare \
    baselines/profile_andrew_snfs.json artifacts/profile_andrew_snfs.json

echo "==> OK"
