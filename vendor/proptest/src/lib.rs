//! Offline stand-in for [proptest](https://crates.io/crates/proptest).
//!
//! The build environment has no access to a cargo registry, so this crate
//! implements exactly the subset of the proptest API the workspace's
//! property tests use: the [`proptest!`] test macro (with
//! `#![proptest_config(..)]`), integer-range / tuple / `any` strategies,
//! `prop_map`, weighted [`prop_oneof!`], [`collection::vec`], and the
//! `prop_assert*` macros.
//!
//! Differences from real proptest, by design:
//!
//! * case generation is fully deterministic (fixed per-case seeds), so a
//!   failure reproduces on every run without a persistence file;
//! * there is no shrinking — a failing case reports its panic directly;
//! * `prop_assert*` panic instead of returning `TestCaseError`, which is
//!   indistinguishable at the test-harness level.

#![allow(clippy::type_complexity)]

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! Strategies for collections (only `vec` is provided).

    use std::ops::Range;

    use crate::strategy::{Strategy, VecStrategy};

    /// A strategy producing `Vec`s of `element` with a length drawn
    /// uniformly from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy::new(element, size)
    }
}

pub mod prelude {
    //! The glob-import surface: strategies, config, and macros.

    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestRng, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests: each inner `#[test] fn name(arg in strategy, ..)`
/// becomes a normal `#[test]` that runs the body over `cases` generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr)
     $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                $crate::test_runner::TestRunner::new(config).run_cases(|__proptest_rng| {
                    $(let $arg =
                        $crate::strategy::Strategy::generate_value(&($strat), __proptest_rng);)*
                    $body
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Weighted choice between strategies: `prop_oneof![3 => a, 1 => b]`.
/// Unweighted arms get weight 1.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((
                $weight as u32,
                {
                    let __strategy = $strat;
                    Box::new(move |__rng: &mut $crate::test_runner::TestRng| {
                        $crate::strategy::Strategy::generate_value(&__strategy, __rng)
                    })
                },
            )),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}
