//! Value-generation strategies: ranges, tuples, `any`, map, union, vec.

use std::marker::PhantomData;
use std::ops::Range;

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value` from a seeded RNG.
///
/// Unlike real proptest there is no value tree and no shrinking; a
/// strategy generates a value directly.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// A strategy producing a single fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate_value(rng))
    }
}

/// Types with a canonical uniform strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {
        $(impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        })*
    };
}
arbitrary_uint!(u8, u16, u32, u64, usize);

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// The canonical strategy for `T`: uniform over the whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {
        $(impl Strategy for Range<$t> {
            type Value = $t;
            fn generate_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.below(span) as $t)
            }
        })*
    };
}
range_strategy!(u8, u16, u32, u64, usize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate_value(rng),)+)
            }
        }
    };
}
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);

/// Weighted union of strategies, built by `prop_oneof!`.
pub struct Union<V> {
    arms: Vec<(u32, Box<dyn Fn(&mut TestRng) -> V>)>,
    total_weight: u64,
}

impl<V> Union<V> {
    /// Builds a union from `(weight, generator)` arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty or all weights are zero.
    pub fn new(arms: Vec<(u32, Box<dyn Fn(&mut TestRng) -> V>)>) -> Self {
        let total_weight: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(
            total_weight > 0,
            "prop_oneof! needs a positive total weight"
        );
        Union { arms, total_weight }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate_value(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(self.total_weight);
        for (weight, gen) in &self.arms {
            let weight = u64::from(*weight);
            if pick < weight {
                return gen(rng);
            }
            pick -= weight;
        }
        unreachable!("weighted pick out of range")
    }
}

/// The result of [`crate::collection::vec`].
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> VecStrategy<S> {
    pub(crate) fn new(element: S, size: Range<usize>) -> Self {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate_value(rng)).collect()
    }
}
