//! The per-test case loop and its deterministic RNG.

/// Configuration for a `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic SplitMix64 stream feeding the strategies.
///
/// Each test case gets a fresh stream seeded from the case index, so runs
/// are bit-for-bit reproducible with no persistence file.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a stream from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)` without modulo bias.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty draw range");
        let zone = u64::MAX - u64::MAX % n;
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % n;
            }
        }
    }
}

/// Runs a property over `config.cases` deterministic inputs.
pub struct TestRunner {
    config: ProptestConfig,
}

impl TestRunner {
    /// Creates a runner with the given config.
    pub fn new(config: ProptestConfig) -> Self {
        TestRunner { config }
    }

    /// Calls `property` once per case with a per-case seeded RNG.
    ///
    /// Assertion failures panic out of the loop, failing the enclosing
    /// `#[test]` with the offending case's panic message.
    pub fn run_cases<F: FnMut(&mut TestRng)>(&mut self, mut property: F) {
        for case in 0..self.config.cases {
            // An arbitrary odd constant separates per-case streams.
            let mut rng = TestRng::new(0xC0FF_EE00_0000_0001 ^ (u64::from(case) << 17));
            property(&mut rng);
        }
    }
}
