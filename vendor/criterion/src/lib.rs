//! Offline stand-in for [criterion](https://crates.io/crates/criterion).
//!
//! The build environment has no access to a cargo registry, so this crate
//! implements the subset of the criterion API the workspace's benches
//! use: `Criterion` with the builder knobs the benches set,
//! `benchmark_group`/`bench_function`/`iter`, and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement is deliberately simple — mean wall-clock time over up to
//! `sample_size` iterations bounded by `measurement_time`, after a short
//! warm-up — because for this workspace the benches' primary product is
//! the printed paper-style artifact, with timing as a sanity signal.

use std::time::{Duration, Instant};

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    /// Target number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Wall-clock budget for the measurement phase.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Wall-clock budget for the warm-up phase.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named collection of benchmarks sharing the parent's settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark and prints its mean iteration time.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            mode: Mode::WarmUp,
            budget: self.criterion.warm_up_time,
            max_samples: usize::MAX,
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.mode = Mode::Measure;
        bencher.budget = self.criterion.measurement_time;
        bencher.max_samples = self.criterion.sample_size;
        bencher.samples.clear();
        f(&mut bencher);
        let n = bencher.samples.len().max(1) as u32;
        let mean = bencher.samples.iter().sum::<Duration>() / n;
        println!(
            "{}/{}: time: [{:?} over {} samples]",
            self.name,
            id,
            mean,
            bencher.samples.len()
        );
        self
    }

    /// Ends the group (kept for API compatibility; prints nothing).
    pub fn finish(self) {}
}

enum Mode {
    WarmUp,
    Measure,
}

/// Handed to the closure passed to `bench_function`; drives iterations.
pub struct Bencher {
    mode: Mode,
    budget: Duration,
    max_samples: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times repeated calls of `routine` within the phase's budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let phase_start = Instant::now();
        let mut done = 0usize;
        loop {
            let start = Instant::now();
            black_box(routine());
            let elapsed = start.elapsed();
            if let Mode::Measure = self.mode {
                self.samples.push(elapsed);
            }
            done += 1;
            // Always run at least one iteration; stop on either budget.
            if phase_start.elapsed() >= self.budget || done >= self.max_samples {
                break;
            }
        }
    }
}

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Declares a benchmark group runner function, mirroring criterion's
/// macro of the same name (both the `name =`/`config =`/`targets =` form
/// and the positional form).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+);
    };
}

/// Declares `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
