//! The NFS client: attribute cache with adaptive probes, data cache,
//! asynchronous write-behind with flush-on-close.
//!
//! Implements the reference-port behaviour the paper measured (§2.1, §4):
//!
//! * **consistency by probing**: cached data is trusted while the
//!   attribute cache is fresh; the probe interval adapts between 3 s and
//!   150 s based on how recently the file changed (footnote 3);
//! * a `getattr` RPC at every file open (the call SNFS's `open` subsumes);
//! * **write-behind daemons** (`biod`s): full blocks are handed to a
//!   daemon pool and written through immediately; the application does not
//!   wait, but `close` synchronously drains all pending writes;
//! * **partial-block write delay** (footnote 4): writes that do not reach
//!   the end of a block accumulate client-side until the block fills or
//!   the file closes;
//! * the **invalidate-on-close bug** of the authors' vintage reference
//!   port (§5.2): the data cache is purged when a file is closed, so a
//!   write-close-reopen-read cycle re-reads everything from the server.
//!   Toggleable via [`NfsClientParams::invalidate_on_close`] to model
//!   newer clients.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use spritely_localfs::BlockCache;
use spritely_proto::{
    block_of, DirEntry, Fattr, FileHandle, NfsReply, NfsRequest, NfsStatus, ReadReply, Result,
    BLOCK_SIZE,
};
use spritely_rpcnet::{RpcError, ShardCaller};
use spritely_sim::{Event, Semaphore, Sim, SimDuration, SimTime};

/// Configuration of an [`NfsClient`].
#[derive(Debug, Clone, Copy)]
pub struct NfsClientParams {
    /// Minimum attribute-cache lifetime (probe interval floor).
    pub attr_min: SimDuration,
    /// Maximum attribute-cache lifetime (probe interval ceiling).
    pub attr_max: SimDuration,
    /// Number of write-behind daemons.
    pub biods: usize,
    /// Data cache capacity in blocks.
    pub cache_blocks: usize,
    /// Purge the file's cached data on final close (the vintage
    /// reference-port bug the paper measured around, §5.2).
    pub invalidate_on_close: bool,
    /// Delay writes that do not extend to a block boundary (footnote 4).
    pub delay_partial_writes: bool,
    /// Prefetch the next block on cache-missing sequential reads.
    pub read_ahead: bool,
    /// Cache name translations with a TTL, like post-1989 NFS clients
    /// ("recent versions of NFS also do more extensive caching of name
    /// translations", §5.2). Unlike the SNFS §7 name cache this is only
    /// probabilistically consistent: within the TTL a renamed or removed
    /// file can still resolve here.
    pub name_cache: bool,
    /// Lifetime of a name-cache entry.
    pub name_cache_ttl: SimDuration,
}

impl Default for NfsClientParams {
    fn default() -> Self {
        NfsClientParams {
            attr_min: SimDuration::from_secs(3),
            attr_max: SimDuration::from_secs(150),
            biods: 4,
            cache_blocks: 4096,
            invalidate_on_close: true,
            delay_partial_writes: true,
            read_ahead: true,
            name_cache: false,
            name_cache_ttl: SimDuration::from_secs(30),
        }
    }
}

type Key = (FileHandle, u64);

struct AttrEntry {
    attr: Fattr,
    fetched: SimTime,
}

#[derive(Default)]
struct PendingWrites {
    count: u32,
    done: Event,
    /// First asynchronous write error, reported at close (Unix EIO
    /// convention).
    error: Option<NfsStatus>,
}

struct Tail {
    offset: u64,
    data: Vec<u8>,
}

impl Tail {
    fn end(&self) -> u64 {
        self.offset + self.data.len() as u64
    }
}

struct Inner {
    sim: Sim,
    caller: ShardCaller,
    params: NfsClientParams,
    cache: RefCell<BlockCache<Key>>,
    attrs: RefCell<HashMap<FileHandle, AttrEntry>>,
    pending: RefCell<HashMap<FileHandle, PendingWrites>>,
    tails: RefCell<HashMap<FileHandle, Tail>>,
    opens: RefCell<HashMap<FileHandle, u32>>,
    /// Reads in flight, so a demand read and a read-ahead of the same
    /// block coalesce into one RPC.
    in_flight: RefCell<HashMap<Key, Event>>,
    /// TTL-based name-translation cache (dnlc-style), when enabled.
    names: RefCell<HashMap<(FileHandle, String), NameEntry>>,
    /// Open-time `getattr` probes elided because a piggybacked post-op
    /// attribute was still inside the probe floor (piggybacking
    /// transports only).
    elided_probes: Cell<u64>,
    biods: Semaphore,
}

struct NameEntry {
    fh: FileHandle,
    attr: Fattr,
    fetched: SimTime,
}

/// An NFS client bound to one server.
#[derive(Clone)]
pub struct NfsClient {
    inner: Rc<Inner>,
}

fn status_of(e: RpcError) -> NfsStatus {
    match e {
        RpcError::Timeout => NfsStatus::Io,
    }
}

impl NfsClient {
    /// Creates a client that calls the server through `caller` — a plain
    /// [`Caller`](spritely_rpcnet::Caller) for the single-server
    /// configuration, or a [`ShardCaller`] routing over several shards.
    pub fn new(sim: &Sim, caller: impl Into<ShardCaller>, params: NfsClientParams) -> Self {
        NfsClient {
            inner: Rc::new(Inner {
                sim: sim.clone(),
                caller: caller.into(),
                biods: Semaphore::new(params.biods.max(1)),
                params,
                cache: RefCell::new(BlockCache::new(params.cache_blocks)),
                attrs: RefCell::new(HashMap::new()),
                pending: RefCell::new(HashMap::new()),
                tails: RefCell::new(HashMap::new()),
                opens: RefCell::new(HashMap::new()),
                in_flight: RefCell::new(HashMap::new()),
                names: RefCell::new(HashMap::new()),
                elided_probes: Cell::new(0),
            }),
        }
    }

    /// Data cache `(hits, misses)`.
    pub fn cache_stats(&self) -> (u64, u64) {
        self.inner.cache.borrow().hit_stats()
    }

    /// Open-time `getattr` probes elided thanks to piggybacked post-op
    /// attributes (always 0 on the paper transport).
    pub fn elided_probes(&self) -> u64 {
        self.inner.elided_probes.get()
    }

    async fn call(&self, req: NfsRequest) -> Result<NfsReply> {
        match self.inner.caller.call(req).await {
            Ok(rep) => rep.into_result(),
            Err(e) => Err(status_of(e)),
        }
    }

    /// Background variant for biod traffic (write-behind, read-ahead):
    /// the transport batcher may hold such a call briefly to coalesce it
    /// with its peers.
    async fn call_bg(&self, req: NfsRequest) -> Result<NfsReply> {
        match self.inner.caller.call_bg(0, req).await {
            Ok(rep) => rep.into_result(),
            Err(e) => Err(status_of(e)),
        }
    }

    // ---- attribute cache --------------------------------------------------

    fn attr_timeout(&self, e: &AttrEntry) -> SimDuration {
        // Adaptive probe interval: a file modified recently is probed
        // often; one that has been stable for a long time is probed
        // rarely. Ultrix clamped the interval to [3 s, 150 s] (footnote 3).
        let age_us = e.fetched.as_micros().saturating_sub(e.attr.mtime);
        let t = SimDuration::from_micros(age_us / 4);
        t.max(self.inner.params.attr_min)
            .min(self.inner.params.attr_max)
    }

    /// Records fresh server attributes, invalidating cached data if the
    /// file changed under us.
    fn note_attrs_checking(&self, fh: FileHandle, new: Fattr) {
        let changed = self
            .inner
            .attrs
            .borrow()
            .get(&fh)
            .is_some_and(|old| new.data_changed_from(&old.attr));
        if changed {
            self.inner.cache.borrow_mut().drop_matching(|k| k.0 == fh);
        }
        self.inner.attrs.borrow_mut().insert(
            fh,
            AttrEntry {
                attr: new,
                fetched: self.inner.sim.now(),
            },
        );
    }

    /// Refreshes attributes from a piggybacked reply (our own operation
    /// caused any change, so no invalidation check).
    fn note_attrs_own(&self, fh: FileHandle, new: Fattr) {
        let mut attrs = self.inner.attrs.borrow_mut();
        let e = attrs.entry(fh).or_insert(AttrEntry {
            attr: new,
            fetched: self.inner.sim.now(),
        });
        if new.mtime >= e.attr.mtime {
            e.attr = new;
        }
        e.fetched = self.inner.sim.now();
    }

    /// Returns attributes, probing the server if the cache has expired
    /// (or unconditionally with `force`).
    pub async fn probe_attrs(&self, fh: FileHandle, force: bool) -> Result<Fattr> {
        if !force {
            let fresh = {
                let attrs = self.inner.attrs.borrow();
                attrs.get(&fh).and_then(|e| {
                    let age = self.inner.sim.now().saturating_duration_since(e.fetched);
                    (age < self.attr_timeout(e)).then_some(e.attr)
                })
            };
            if let Some(a) = fresh {
                return Ok(a);
            }
        }
        let rep = self.call(NfsRequest::GetAttr { fh }).await?;
        match rep {
            NfsReply::Attr(attr) => {
                self.note_attrs_checking(fh, attr);
                Ok(attr)
            }
            _ => Err(NfsStatus::Io),
        }
    }

    // ---- open / close -------------------------------------------------------

    /// Opens a file: bumps the open count and performs the NFS open-time
    /// consistency check (a `getattr` RPC).
    pub async fn open(&self, fh: FileHandle, _write: bool) -> Result<Fattr> {
        *self.inner.opens.borrow_mut().entry(fh).or_insert(0) += 1;
        // The open-time check always goes to the server — unless the
        // transport piggybacks post-op attributes and a reply refreshed
        // them within the probe floor, in which case that reply already
        // was the consistency check.
        if self.inner.caller.transport().piggyback {
            let fresh = {
                let attrs = self.inner.attrs.borrow();
                attrs.get(&fh).and_then(|e| {
                    let age = self.inner.sim.now().saturating_duration_since(e.fetched);
                    (age < self.inner.params.attr_min).then_some(e.attr)
                })
            };
            if let Some(a) = fresh {
                self.inner
                    .elided_probes
                    .set(self.inner.elided_probes.get() + 1);
                return Ok(a);
            }
        }
        self.probe_attrs(fh, true).await
    }

    /// Closes a file: drains the partial-write tail and every pending
    /// write-behind RPC, then (with the vintage bug enabled) purges the
    /// file's cached data on final close.
    pub async fn close(&self, fh: FileHandle, _write: bool) -> Result<()> {
        self.flush_tail(fh);
        self.wait_pending(fh).await;
        let err = self
            .inner
            .pending
            .borrow_mut()
            .get_mut(&fh)
            .and_then(|p| p.error.take());
        let last = {
            let mut opens = self.inner.opens.borrow_mut();
            match opens.get_mut(&fh) {
                Some(c) if *c > 1 => {
                    *c -= 1;
                    false
                }
                Some(_) => {
                    opens.remove(&fh);
                    true
                }
                None => true,
            }
        };
        if last && self.inner.params.invalidate_on_close {
            self.inner.cache.borrow_mut().drop_matching(|k| k.0 == fh);
        }
        match err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    // ---- data path ----------------------------------------------------------

    async fn fetch_block(&self, fh: FileHandle, lblk: u64, bg: bool) -> Result<Vec<u8>> {
        let key = (fh, lblk);
        // Coalesce with an identical fetch already in flight. If that
        // fetch is a read-ahead parked in the batcher, kick it onto the
        // wire: someone is waiting for the data now.
        let waiting = self.inner.in_flight.borrow().get(&key).cloned();
        if let Some(ev) = waiting {
            if !bg {
                self.inner.caller.kick();
            }
            ev.wait().await;
            if let Some(b) = self.inner.cache.borrow_mut().get(&key) {
                return Ok(b);
            }
            // Fall through and fetch ourselves (the other fetch failed).
        }
        let ev = Event::new();
        self.inner.in_flight.borrow_mut().insert(key, ev.clone());
        let req = NfsRequest::Read {
            fh,
            offset: lblk * BLOCK_SIZE as u64,
            count: BLOCK_SIZE as u32,
        };
        let res = if bg {
            self.call_bg(req).await
        } else {
            self.call(req).await
        };
        self.inner.in_flight.borrow_mut().remove(&key);
        ev.set();
        match res? {
            NfsReply::Read(ReadReply { data, attr, .. }) => {
                self.note_attrs_own(fh, attr);
                self.inner
                    .cache
                    .borrow_mut()
                    .insert_clean(key, data.clone());
                Ok(data)
            }
            _ => Err(NfsStatus::Io),
        }
    }

    fn spawn_read_ahead(&self, fh: FileHandle, lblk: u64, size: u64) {
        if !self.inner.params.read_ahead {
            return;
        }
        let next = lblk + 1;
        if next * (BLOCK_SIZE as u64) >= size
            || self.inner.cache.borrow().contains(&(fh, next))
            || self.inner.in_flight.borrow().contains_key(&(fh, next))
        {
            return;
        }
        let this = self.clone();
        self.inner.sim.spawn(async move {
            let _permit = this.inner.biods.acquire().await;
            if this.inner.cache.borrow().contains(&(fh, next)) {
                return;
            }
            let _ = this.fetch_block(fh, next, true).await;
        });
    }

    /// Reads up to `len` bytes at `offset`. Returns `(data, eof)`.
    pub async fn read(&self, fh: FileHandle, offset: u64, len: u32) -> Result<(Vec<u8>, bool)> {
        // Consistency check (may be served by the attribute cache).
        let attr = self.probe_attrs(fh, false).await?;
        // A pending partial-write tail overlapping the read must be pushed
        // to the server first.
        let overlaps = self
            .inner
            .tails
            .borrow()
            .get(&fh)
            .is_some_and(|t| t.offset < offset + u64::from(len) && offset < t.end());
        if overlaps {
            self.flush_tail(fh);
            self.wait_pending(fh).await;
        }
        let size = attr.size;
        if offset >= size || len == 0 {
            return Ok((Vec::new(), true));
        }
        let end = size.min(offset + u64::from(len));
        let mut out = Vec::with_capacity((end - offset) as usize);
        let first = block_of(offset);
        let last = block_of(end - 1);
        for lblk in first..=last {
            let blk_start = lblk * BLOCK_SIZE as u64;
            let from = (offset.max(blk_start) - blk_start) as usize;
            let to = ((end - blk_start).min(BLOCK_SIZE as u64)) as usize;
            let cached = self.inner.cache.borrow_mut().get(&(fh, lblk));
            let block = match cached {
                Some(b) if b.len() >= to => b,
                _ => {
                    let b = self.fetch_block(fh, lblk, false).await?;
                    self.spawn_read_ahead(fh, lblk, size);
                    b
                }
            };
            let to = to.min(block.len());
            if from < to {
                out.extend_from_slice(&block[from..to]);
            }
        }
        Ok((out, end == size))
    }

    fn bump_pending(&self, fh: FileHandle) {
        let mut pending = self.inner.pending.borrow_mut();
        let p = pending.entry(fh).or_default();
        if p.count == 0 {
            p.done = Event::new();
        }
        p.count += 1;
    }

    fn spawn_write_rpc(&self, fh: FileHandle, offset: u64, data: Vec<u8>) {
        self.bump_pending(fh);
        let this = self.clone();
        self.inner.sim.spawn(async move {
            let permit = this.inner.biods.acquire().await;
            let res = this.call_bg(NfsRequest::Write { fh, offset, data }).await;
            drop(permit);
            let mut pending = this.inner.pending.borrow_mut();
            let p = pending.entry(fh).or_default();
            match res {
                Ok(NfsReply::Attr(attr)) => {
                    drop(pending);
                    this.note_attrs_own(fh, attr);
                }
                Ok(_) => {
                    p.error.get_or_insert(NfsStatus::Io);
                    drop(pending);
                }
                Err(e) => {
                    p.error.get_or_insert(e);
                    drop(pending);
                }
            }
            let mut pending = this.inner.pending.borrow_mut();
            let p = pending.entry(fh).or_default();
            p.count -= 1;
            if p.count == 0 {
                p.done.set();
            }
        });
    }

    async fn wait_pending(&self, fh: FileHandle) {
        let ev = {
            let pending = self.inner.pending.borrow();
            match pending.get(&fh) {
                Some(p) if p.count > 0 => Some(p.done.clone()),
                _ => None,
            }
        };
        if let Some(ev) = ev {
            // About to block on write-behind: push any parked batch out
            // now rather than letting it ride the Nagle window.
            self.inner.caller.kick();
            ev.wait().await;
        }
    }

    /// Emits the pending partial-block tail as a write RPC, if any.
    fn flush_tail(&self, fh: FileHandle) {
        if let Some(t) = self.inner.tails.borrow_mut().remove(&fh) {
            self.emit_pieces(fh, t.offset, t.data);
        }
    }

    /// Splits `[offset, offset+data.len())` at block boundaries and spawns
    /// one write-behind RPC per piece, caching full-block pieces.
    fn emit_pieces(&self, fh: FileHandle, offset: u64, data: Vec<u8>) {
        let end = offset + data.len() as u64;
        let mut cur = offset;
        while cur < end {
            let blk_end = (block_of(cur) + 1) * BLOCK_SIZE as u64;
            let piece_end = end.min(blk_end);
            let piece = data[(cur - offset) as usize..(piece_end - offset) as usize].to_vec();
            if piece.len() == BLOCK_SIZE {
                self.inner
                    .cache
                    .borrow_mut()
                    .insert_clean((fh, block_of(cur)), piece.clone());
            }
            self.spawn_write_rpc(fh, cur, piece);
            cur = piece_end;
        }
    }

    /// Writes `data` at `offset` with write-behind semantics: the call
    /// returns as soon as the write is queued; `close` synchronizes.
    pub async fn write(&self, fh: FileHandle, offset: u64, data: &[u8]) -> Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        // Merge with (or flush) the partial-write tail.
        let mut start = offset;
        let mut buf: Vec<u8>;
        {
            let mut tails = self.inner.tails.borrow_mut();
            match tails.remove(&fh) {
                Some(t) if t.end() == offset => {
                    start = t.offset;
                    buf = t.data;
                    buf.extend_from_slice(data);
                }
                Some(t) => {
                    drop(tails);
                    // Non-contiguous: push the old tail out first.
                    self.emit_pieces(fh, t.offset, t.data);
                    buf = data.to_vec();
                }
                None => {
                    buf = data.to_vec();
                }
            }
        }
        let end = start + buf.len() as u64;
        let emit_end = if self.inner.params.delay_partial_writes {
            (end / BLOCK_SIZE as u64) * BLOCK_SIZE as u64
        } else {
            end
        };
        if emit_end > start {
            let rest = buf.split_off((emit_end - start) as usize);
            self.emit_pieces(fh, start, buf);
            if !rest.is_empty() {
                self.inner.tails.borrow_mut().insert(
                    fh,
                    Tail {
                        offset: emit_end,
                        data: rest,
                    },
                );
            }
        } else if !buf.is_empty() {
            self.inner.tails.borrow_mut().insert(
                fh,
                Tail {
                    offset: start,
                    data: buf,
                },
            );
        }
        Ok(())
    }

    /// Synchronously pushes everything pending for `fh` to the server.
    pub async fn fsync(&self, fh: FileHandle) -> Result<()> {
        self.flush_tail(fh);
        self.wait_pending(fh).await;
        Ok(())
    }

    /// Simulates an orderly client reboot (experiment setup): pending
    /// writes are drained, then every cache is dropped.
    pub async fn cold_boot(&self) -> Result<()> {
        let files: Vec<FileHandle> = self.inner.tails.borrow().keys().copied().collect();
        for fh in files {
            self.flush_tail(fh);
        }
        let pending: Vec<FileHandle> = self.inner.pending.borrow().keys().copied().collect();
        for fh in pending {
            self.wait_pending(fh).await;
        }
        self.inner.cache.borrow_mut().clear();
        self.inner.attrs.borrow_mut().clear();
        self.inner.names.borrow_mut().clear();
        Ok(())
    }

    // ---- namespace operations ----------------------------------------------

    /// Translates one name component. The vintage client always issues an
    /// RPC (which is why lookups dominate Table 5-2); with
    /// [`NfsClientParams::name_cache`] a TTL-based dnlc answers repeats.
    pub async fn lookup(&self, dir: FileHandle, name: &str) -> Result<(FileHandle, Fattr)> {
        if self.inner.params.name_cache {
            let hit = {
                let names = self.inner.names.borrow();
                names.get(&(dir, name.to_string())).and_then(|e| {
                    let age = self.inner.sim.now().saturating_duration_since(e.fetched);
                    (age < self.inner.params.name_cache_ttl).then_some((e.fh, e.attr))
                })
            };
            if let Some(hit) = hit {
                return Ok(hit);
            }
        }
        let rep = self
            .call(NfsRequest::Lookup {
                dir,
                name: name.to_string(),
            })
            .await?;
        match rep {
            NfsReply::Handle { fh, attr } => {
                self.note_attrs_checking(fh, attr);
                if self.inner.params.name_cache {
                    self.inner.names.borrow_mut().insert(
                        (dir, name.to_string()),
                        NameEntry {
                            fh,
                            attr,
                            fetched: self.inner.sim.now(),
                        },
                    );
                }
                Ok((fh, attr))
            }
            _ => Err(NfsStatus::Io),
        }
    }

    /// Creates a regular file.
    pub async fn create(&self, dir: FileHandle, name: &str) -> Result<(FileHandle, Fattr)> {
        let rep = self
            .call(NfsRequest::Create {
                dir,
                name: name.to_string(),
            })
            .await?;
        match rep {
            NfsReply::Handle { fh, attr } => {
                self.note_attrs_own(fh, attr);
                if self.inner.params.name_cache {
                    self.inner.names.borrow_mut().insert(
                        (dir, name.to_string()),
                        NameEntry {
                            fh,
                            attr,
                            fetched: self.inner.sim.now(),
                        },
                    );
                }
                Ok((fh, attr))
            }
            _ => Err(NfsStatus::Io),
        }
    }

    /// Removes a file. The caller should pass the file's handle via
    /// [`forget`](Self::forget) to drop local caching.
    pub async fn remove(&self, dir: FileHandle, name: &str) -> Result<()> {
        self.inner
            .names
            .borrow_mut()
            .remove(&(dir, name.to_string()));
        let rep = self
            .call(NfsRequest::Remove {
                dir,
                name: name.to_string(),
            })
            .await?;
        match rep {
            NfsReply::Ok => Ok(()),
            _ => Err(NfsStatus::Io),
        }
    }

    /// Creates a directory.
    pub async fn mkdir(&self, dir: FileHandle, name: &str) -> Result<(FileHandle, Fattr)> {
        let rep = self
            .call(NfsRequest::Mkdir {
                dir,
                name: name.to_string(),
            })
            .await?;
        match rep {
            NfsReply::Handle { fh, attr } => Ok((fh, attr)),
            _ => Err(NfsStatus::Io),
        }
    }

    /// Removes an empty directory.
    pub async fn rmdir(&self, dir: FileHandle, name: &str) -> Result<()> {
        let rep = self
            .call(NfsRequest::Rmdir {
                dir,
                name: name.to_string(),
            })
            .await?;
        match rep {
            NfsReply::Ok => Ok(()),
            _ => Err(NfsStatus::Io),
        }
    }

    /// Renames a file or directory.
    pub async fn rename(
        &self,
        from_dir: FileHandle,
        from_name: &str,
        to_dir: FileHandle,
        to_name: &str,
    ) -> Result<()> {
        {
            let mut names = self.inner.names.borrow_mut();
            names.remove(&(from_dir, from_name.to_string()));
            names.remove(&(to_dir, to_name.to_string()));
        }
        let rep = self
            .call(NfsRequest::Rename {
                from_dir,
                from_name: from_name.to_string(),
                to_dir,
                to_name: to_name.to_string(),
            })
            .await?;
        match rep {
            NfsReply::Ok => Ok(()),
            _ => Err(NfsStatus::Io),
        }
    }

    /// Lists a directory.
    pub async fn readdir(&self, dir: FileHandle) -> Result<Vec<DirEntry>> {
        let rep = self.call(NfsRequest::Readdir { dir }).await?;
        match rep {
            NfsReply::Readdir { entries } => Ok(entries),
            _ => Err(NfsStatus::Io),
        }
    }

    /// Creates a hard link `to_dir/to_name` to `from`.
    pub async fn link(&self, from: FileHandle, to_dir: FileHandle, to_name: &str) -> Result<Fattr> {
        let rep = self
            .call(NfsRequest::Link {
                from,
                to_dir,
                to_name: to_name.to_string(),
            })
            .await?;
        match rep {
            NfsReply::Attr(attr) => {
                self.note_attrs_own(from, attr);
                if self.inner.params.name_cache {
                    self.inner.names.borrow_mut().insert(
                        (to_dir, to_name.to_string()),
                        NameEntry {
                            fh: from,
                            attr,
                            fetched: self.inner.sim.now(),
                        },
                    );
                }
                Ok(attr)
            }
            _ => Err(NfsStatus::Io),
        }
    }

    /// Creates a symbolic link `dir/name` → `target`.
    pub async fn symlink(
        &self,
        dir: FileHandle,
        name: &str,
        target: &str,
    ) -> Result<(FileHandle, Fattr)> {
        let rep = self
            .call(NfsRequest::Symlink {
                dir,
                name: name.to_string(),
                target: target.to_string(),
            })
            .await?;
        match rep {
            NfsReply::Handle { fh, attr } => Ok((fh, attr)),
            _ => Err(NfsStatus::Io),
        }
    }

    /// Reads a symbolic link's target.
    pub async fn readlink(&self, fh: FileHandle) -> Result<String> {
        let rep = self.call(NfsRequest::Readlink { fh }).await?;
        match rep {
            NfsReply::Path(p) => Ok(p),
            _ => Err(NfsStatus::Io),
        }
    }

    /// Sets attributes (truncate).
    pub async fn setattr(&self, fh: FileHandle, size: Option<u64>) -> Result<Fattr> {
        let rep = self.call(NfsRequest::SetAttr { fh, size }).await?;
        match rep {
            NfsReply::Attr(attr) => {
                if let Some(sz) = size {
                    let cut = spritely_proto::blocks_for(sz);
                    self.inner
                        .cache
                        .borrow_mut()
                        .drop_matching(|k| k.0 == fh && k.1 >= cut);
                }
                self.note_attrs_own(fh, attr);
                Ok(attr)
            }
            _ => Err(NfsStatus::Io),
        }
    }

    /// Drops all local state for a handle (after unlink).
    pub fn forget(&self, fh: FileHandle) {
        self.inner.cache.borrow_mut().drop_matching(|k| k.0 == fh);
        self.inner.attrs.borrow_mut().remove(&fh);
        self.inner.tails.borrow_mut().remove(&fh);
        self.inner.names.borrow_mut().retain(|_, e| e.fh != fh);
    }
}
