//! Baseline NFS: the stateless client/server pair the paper measures
//! Spritely NFS against.
//!
//! * [`nfs_server`] builds the stateless server endpoint (every `write`
//!   synchronous to disk, no per-client state, `open`/`close` rejected).
//! * [`NfsClient`] implements the vintage reference-port client semantics:
//!   adaptive attribute-cache probes for consistency, `getattr` at open,
//!   write-behind daemons with a synchronous drain at close, delayed
//!   partial-block writes, and (optionally) the invalidate-on-close bug.
//!
//! Consistency caveat reproduced faithfully: NFS only provides
//! *probabilistic* consistency. Within an attribute-cache window a client
//! will serve stale data written concurrently by another client — see the
//! `stale_read_window_exists` test below, and compare with the guarantees
//! tested in `spritely-core`.

mod client;
mod server;

pub use client::{NfsClient, NfsClientParams};
pub use server::{handle, nfs_server};

#[cfg(test)]
mod tests {
    use super::*;
    use spritely_blockdev::{Disk, DiskParams};
    use spritely_localfs::{FsParams, LocalFs};
    use spritely_metrics::OpCounter;
    use spritely_proto::{ClientId, NfsProc, NfsReply, NfsRequest, NfsStatus, BLOCK_SIZE};
    use spritely_rpcnet::{Caller, CallerParams, Endpoint, EndpointParams, NetParams, Network};
    use spritely_sim::{Resource, Sim};

    /// A one-server test rig with any number of NFS clients.
    struct Rig {
        sim: Sim,
        fs: LocalFs,
        endpoint: Endpoint<NfsRequest, NfsReply>,
        counter: OpCounter,
        net: Network,
    }

    impl Rig {
        fn new() -> Self {
            let sim = Sim::new();
            let disk = Disk::new(&sim, "sdisk", DiskParams::ra81());
            let fs = LocalFs::new(
                &sim,
                1,
                disk,
                FsParams {
                    cache_blocks: 896, // ~3.5 MB server cache
                    ..FsParams::default()
                },
            );
            let cpu = Resource::new(&sim, "scpu", 1);
            let counter = OpCounter::new();
            let endpoint = nfs_server(
                &sim,
                "nfsd",
                fs.clone(),
                cpu,
                EndpointParams::default(),
                counter.clone(),
            );
            let net = Network::new(&sim, "eth", NetParams::ethernet_10mbit());
            Rig {
                sim,
                fs,
                endpoint,
                counter,
                net,
            }
        }

        fn client(&self, id: u32, params: NfsClientParams) -> NfsClient {
            let cpu = Resource::new(&self.sim, format!("ccpu{id}"), 1);
            let caller = Caller::new(
                &self.sim,
                self.net.clone(),
                self.endpoint.clone(),
                ClientId(id),
                cpu,
                CallerParams::default(),
            );
            NfsClient::new(&self.sim, caller, params)
        }
    }

    #[test]
    fn write_close_read_roundtrip() {
        let rig = Rig::new();
        let c = rig.client(1, NfsClientParams::default());
        let root = rig.fs.root();
        let sim = rig.sim.clone();
        sim.block_on(async move {
            let (fh, _) = c.create(root, "f").await.unwrap();
            c.open(fh, true).await.unwrap();
            let data: Vec<u8> = (0..9000u32).map(|i| (i % 253) as u8).collect();
            c.write(fh, 0, &data).await.unwrap();
            c.close(fh, true).await.unwrap();
            c.open(fh, false).await.unwrap();
            let (got, eof) = c.read(fh, 0, 9000).await.unwrap();
            assert_eq!(got, data);
            assert!(eof);
            c.close(fh, false).await.unwrap();
        });
    }

    #[test]
    fn close_drains_writes_to_server_disk() {
        let rig = Rig::new();
        let c = rig.client(1, NfsClientParams::default());
        let root = rig.fs.root();
        let fs = rig.fs.clone();
        let sim = rig.sim.clone();
        sim.block_on(async move {
            let (fh, _) = c.create(root, "f").await.unwrap();
            c.open(fh, true).await.unwrap();
            c.write(fh, 0, &[7u8; 2 * BLOCK_SIZE]).await.unwrap();
            c.close(fh, true).await.unwrap();
            // NFS server wrote synchronously: data is stable immediately.
            let stable = fs.stable_contents(fh).unwrap();
            assert_eq!(stable.len(), 2 * BLOCK_SIZE);
            assert!(stable.iter().all(|&b| b == 7));
            assert_eq!(fs.dirty_blocks(), 0);
        });
    }

    #[test]
    fn open_costs_a_getattr_rpc() {
        let rig = Rig::new();
        let c = rig.client(1, NfsClientParams::default());
        let root = rig.fs.root();
        let counter = rig.counter.clone();
        rig.sim.block_on(async move {
            let (fh, _) = c.create(root, "f").await.unwrap();
            let before = counter.get(NfsProc::GetAttr);
            c.open(fh, false).await.unwrap();
            assert_eq!(counter.get(NfsProc::GetAttr) - before, 1);
            c.close(fh, false).await.unwrap();
            c.open(fh, false).await.unwrap();
            assert_eq!(
                counter.get(NfsProc::GetAttr) - before,
                2,
                "every open probes"
            );
        });
    }

    #[test]
    fn attribute_cache_suppresses_probes_between_opens() {
        let rig = Rig::new();
        let c = rig.client(1, NfsClientParams::default());
        let root = rig.fs.root();
        let counter = rig.counter.clone();
        rig.sim.block_on(async move {
            let (fh, _) = c.create(root, "f").await.unwrap();
            c.open(fh, false).await.unwrap();
            let before = counter.get(NfsProc::GetAttr);
            // Reads shortly after the open ride the attribute cache.
            for _ in 0..10 {
                let _ = c.read(fh, 0, 10).await.unwrap();
            }
            assert_eq!(counter.get(NfsProc::GetAttr), before);
        });
    }

    #[test]
    fn probe_after_reopen_sees_remote_change() {
        let rig = Rig::new();
        let a = rig.client(1, NfsClientParams::default());
        let b = rig.client(2, NfsClientParams::default());
        let root = rig.fs.root();
        let sim = rig.sim.clone();
        sim.block_on(async move {
            let (fh, _) = a.create(root, "f").await.unwrap();
            a.open(fh, true).await.unwrap();
            a.write(fh, 0, &[1u8; BLOCK_SIZE]).await.unwrap();
            a.close(fh, true).await.unwrap();
            // B reads and caches.
            b.open(fh, false).await.unwrap();
            let (got, _) = b.read(fh, 0, BLOCK_SIZE as u32).await.unwrap();
            assert!(got.iter().all(|&x| x == 1));
            b.close(fh, false).await.unwrap();
            // A rewrites.
            a.open(fh, true).await.unwrap();
            a.write(fh, 0, &[2u8; BLOCK_SIZE]).await.unwrap();
            a.close(fh, true).await.unwrap();
            // B reopens: the open-time probe sees the new mtime and
            // invalidates, so B reads fresh data.
            b.open(fh, false).await.unwrap();
            let (got, _) = b.read(fh, 0, BLOCK_SIZE as u32).await.unwrap();
            assert!(
                got.iter().all(|&x| x == 2),
                "sequential write-sharing works"
            );
        });
    }

    #[test]
    fn stale_read_window_exists() {
        // The paper's central correctness point: NFS consistency is only
        // probabilistic. While B's attribute cache is fresh, it serves
        // stale data that A has already overwritten at the server.
        let rig = Rig::new();
        let a = rig.client(1, NfsClientParams::default());
        let b = rig.client(
            2,
            NfsClientParams {
                invalidate_on_close: false,
                ..NfsClientParams::default()
            },
        );
        let root = rig.fs.root();
        let sim = rig.sim.clone();
        sim.block_on(async move {
            let (fh, _) = a.create(root, "f").await.unwrap();
            a.open(fh, true).await.unwrap();
            a.write(fh, 0, &[1u8; BLOCK_SIZE]).await.unwrap();
            a.close(fh, true).await.unwrap();
            b.open(fh, false).await.unwrap();
            let _ = b.read(fh, 0, BLOCK_SIZE as u32).await.unwrap();
            // A overwrites while B still holds the file open.
            a.open(fh, true).await.unwrap();
            a.write(fh, 0, &[2u8; BLOCK_SIZE]).await.unwrap();
            a.close(fh, true).await.unwrap();
            // B re-reads immediately: attribute cache still fresh → stale.
            let (got, _) = b.read(fh, 0, BLOCK_SIZE as u32).await.unwrap();
            assert!(
                got.iter().all(|&x| x == 1),
                "expected stale data inside the probe window"
            );
        });
    }

    #[test]
    fn invalidate_on_close_bug_forces_rereads() {
        let run = |bug: bool| {
            let rig = Rig::new();
            let c = rig.client(
                1,
                NfsClientParams {
                    invalidate_on_close: bug,
                    ..NfsClientParams::default()
                },
            );
            let root = rig.fs.root();
            let counter = rig.counter.clone();
            rig.sim.block_on(async move {
                let (fh, _) = c.create(root, "f").await.unwrap();
                c.open(fh, true).await.unwrap();
                c.write(fh, 0, &[3u8; 4 * BLOCK_SIZE]).await.unwrap();
                c.close(fh, true).await.unwrap();
                c.open(fh, false).await.unwrap();
                let before = counter.get(NfsProc::Read);
                let (got, _) = c.read(fh, 0, (4 * BLOCK_SIZE) as u32).await.unwrap();
                assert!(got.iter().all(|&b| b == 3));
                counter.get(NfsProc::Read) - before
            })
        };
        let reads_with_bug = run(true);
        let reads_fixed = run(false);
        assert_eq!(reads_with_bug, 4, "cache purged at close → 4 read RPCs");
        assert_eq!(reads_fixed, 0, "fixed client serves reads from cache");
    }

    #[test]
    fn partial_block_writes_are_delayed_until_block_fills() {
        let rig = Rig::new();
        let c = rig.client(1, NfsClientParams::default());
        let root = rig.fs.root();
        let counter = rig.counter.clone();
        rig.sim.block_on(async move {
            let (fh, _) = c.create(root, "f").await.unwrap();
            c.open(fh, true).await.unwrap();
            let quarter = BLOCK_SIZE / 4;
            for i in 0..3u64 {
                c.write(fh, i * quarter as u64, &vec![9u8; quarter])
                    .await
                    .unwrap();
            }
            assert_eq!(counter.get(NfsProc::Write), 0, "partial writes delayed");
            // Fourth quarter completes the block.
            c.write(fh, 3 * quarter as u64, &vec![9u8; quarter])
                .await
                .unwrap();
            c.close(fh, true).await.unwrap();
            assert_eq!(counter.get(NfsProc::Write), 1, "one full-block RPC");
        });
    }

    #[test]
    fn close_flushes_partial_tail() {
        let rig = Rig::new();
        let c = rig.client(1, NfsClientParams::default());
        let root = rig.fs.root();
        let fs = rig.fs.clone();
        rig.sim.block_on(async move {
            let (fh, _) = c.create(root, "f").await.unwrap();
            c.open(fh, true).await.unwrap();
            c.write(fh, 0, b"short").await.unwrap();
            c.close(fh, true).await.unwrap();
            assert_eq!(fs.stable_contents(fh).unwrap(), b"short");
        });
    }

    #[test]
    fn temp_files_still_pay_write_through() {
        // NFS cannot cancel writes on delete: by the time the file is
        // removed, the data has already crossed the wire (§2.1).
        let rig = Rig::new();
        let c = rig.client(1, NfsClientParams::default());
        let root = rig.fs.root();
        let counter = rig.counter.clone();
        rig.sim.block_on(async move {
            let (fh, _) = c.create(root, "tmp").await.unwrap();
            c.open(fh, true).await.unwrap();
            c.write(fh, 0, &[1u8; 8 * BLOCK_SIZE]).await.unwrap();
            c.close(fh, true).await.unwrap();
            c.remove(root, "tmp").await.unwrap();
            c.forget(fh);
            assert_eq!(counter.get(NfsProc::Write), 8, "all blocks written anyway");
        });
    }

    #[test]
    fn write_behind_overlaps_with_application() {
        // The application hands blocks to biods and continues; a burst of
        // writes takes far less application time than the drain at close.
        let rig = Rig::new();
        let c = rig.client(1, NfsClientParams::default());
        let root = rig.fs.root();
        let sim = rig.sim.clone();
        let (queued_at, closed_at) = sim.block_on({
            let sim = sim.clone();
            async move {
                let (fh, _) = c.create(root, "f").await.unwrap();
                c.open(fh, true).await.unwrap();
                let t0 = sim.now();
                c.write(fh, 0, &[1u8; 8 * BLOCK_SIZE]).await.unwrap();
                let queued = sim.now() - t0;
                c.close(fh, true).await.unwrap();
                let closed = sim.now() - t0;
                (queued, closed)
            }
        });
        assert!(
            queued_at.as_micros() * 4 < closed_at.as_micros(),
            "write() returned quickly ({queued_at}) vs close ({closed_at})"
        );
    }

    #[test]
    fn lookup_goes_to_server_every_time() {
        let rig = Rig::new();
        let c = rig.client(1, NfsClientParams::default());
        let root = rig.fs.root();
        let counter = rig.counter.clone();
        rig.sim.block_on(async move {
            c.create(root, "f").await.unwrap();
            for _ in 0..5 {
                c.lookup(root, "f").await.unwrap();
            }
            assert_eq!(counter.get(NfsProc::Lookup), 5, "no name cache");
        });
    }

    #[test]
    fn stateless_server_rejects_open() {
        let rig = Rig::new();
        let fs = rig.fs.clone();
        rig.sim.block_on(async move {
            let rep = handle(
                &fs,
                NfsRequest::Open {
                    fh: fs.root(),
                    write: false,
                    client: ClientId(1),
                },
            )
            .await;
            assert_eq!(rep, NfsReply::Err(NfsStatus::Inval));
        });
    }

    #[test]
    fn namespace_ops_roundtrip() {
        let rig = Rig::new();
        let c = rig.client(1, NfsClientParams::default());
        let root = rig.fs.root();
        rig.sim.block_on(async move {
            let (d, _) = c.mkdir(root, "dir").await.unwrap();
            let (_f, _) = c.create(d, "a").await.unwrap();
            c.rename(d, "a", d, "b").await.unwrap();
            let names: Vec<_> = c
                .readdir(d)
                .await
                .unwrap()
                .into_iter()
                .map(|e| e.name)
                .collect();
            assert_eq!(names, vec!["b"]);
            c.remove(d, "b").await.unwrap();
            c.rmdir(root, "dir").await.unwrap();
            assert_eq!(c.lookup(root, "dir").await.unwrap_err(), NfsStatus::NoEnt);
        });
    }

    #[test]
    fn setattr_truncate_updates_cache_and_size() {
        let rig = Rig::new();
        let c = rig.client(1, NfsClientParams::default());
        let root = rig.fs.root();
        rig.sim.block_on(async move {
            let (fh, _) = c.create(root, "f").await.unwrap();
            c.open(fh, true).await.unwrap();
            c.write(fh, 0, &[5u8; 2 * BLOCK_SIZE]).await.unwrap();
            c.fsync(fh).await.unwrap();
            let attr = c.setattr(fh, Some(10)).await.unwrap();
            assert_eq!(attr.size, 10);
            let (got, eof) = c.read(fh, 0, 100).await.unwrap();
            assert_eq!(got.len(), 10);
            assert!(eof);
            c.close(fh, true).await.unwrap();
        });
    }

    #[test]
    fn deterministic_rpc_counts() {
        let run = || {
            let rig = Rig::new();
            let c = rig.client(1, NfsClientParams::default());
            let root = rig.fs.root();
            let counter = rig.counter.clone();
            rig.sim.block_on(async move {
                let (fh, _) = c.create(root, "f").await.unwrap();
                c.open(fh, true).await.unwrap();
                c.write(fh, 0, &[1u8; 10 * BLOCK_SIZE]).await.unwrap();
                c.close(fh, true).await.unwrap();
                c.open(fh, false).await.unwrap();
                let _ = c.read(fh, 0, (10 * BLOCK_SIZE) as u32).await.unwrap();
                c.close(fh, false).await.unwrap();
                counter.snapshot().total()
            })
        };
        assert_eq!(run(), run());
    }
}
