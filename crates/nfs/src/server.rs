//! The stateless NFS server.
//!
//! A direct translation of RPC requests into [`LocalFs`] operations, with
//! the two properties the paper's analysis hinges on (§2.1):
//!
//! * **statelessness** — no per-client or per-open-file state is kept
//!   between calls; every request is self-contained;
//! * **synchronous writes** — a `write` reaches stable storage (the disk)
//!   before the reply leaves the server.
//!
//! SNFS `open`/`close` requests are rejected with `NFSERR_INVAL`, which is
//! exactly how a hybrid client discovers it is talking to a plain NFS
//! server (paper §6.1).

use std::rc::Rc;

use spritely_localfs::LocalFs;
use spritely_metrics::OpCounter;
use spritely_proto::{NfsReply, NfsRequest, NfsStatus, ReadReply};
use spritely_rpcnet::{Endpoint, EndpointParams};
use spritely_sim::{Resource, Sim};

/// Builds an NFS server endpoint serving `fs`.
///
/// `cpu` is the server host's CPU; `counter` records every executed
/// procedure (the raw data behind Tables 5-2/5-4/5-6).
pub fn nfs_server(
    sim: &Sim,
    name: impl Into<String>,
    fs: LocalFs,
    cpu: Resource,
    params: EndpointParams,
    counter: OpCounter,
) -> Endpoint<NfsRequest, NfsReply> {
    let handler = {
        let fs = fs.clone();
        Rc::new(move |_from, _ctx: u64, req: NfsRequest| {
            let fs = fs.clone();
            Box::pin(async move { handle(&fs, req).await })
                as std::pin::Pin<Box<dyn std::future::Future<Output = NfsReply>>>
        })
    };
    Endpoint::new(sim, name, cpu, params, counter, handler)
}

/// Executes one NFS request against the local file system.
pub async fn handle(fs: &LocalFs, req: NfsRequest) -> NfsReply {
    match req {
        NfsRequest::Null => NfsReply::Ok,
        NfsRequest::GetAttr { fh } => match fs.getattr(fh) {
            Ok(attr) => NfsReply::Attr(attr),
            Err(e) => NfsReply::Err(e),
        },
        NfsRequest::SetAttr { fh, size } => match fs.setattr(fh, size).await {
            Ok(attr) => NfsReply::Attr(attr),
            Err(e) => NfsReply::Err(e),
        },
        NfsRequest::Lookup { dir, name } => match fs.lookup(dir, &name) {
            Ok((fh, attr)) => NfsReply::Handle { fh, attr },
            Err(e) => NfsReply::Err(e),
        },
        NfsRequest::Read { fh, offset, count } => match fs.read(fh, offset, count).await {
            Ok((data, eof, attr)) => NfsReply::Read(ReadReply { data, eof, attr }),
            Err(e) => NfsReply::Err(e),
        },
        NfsRequest::Write { fh, offset, data } => {
            // RFC 1094: the server must reach stable storage before the
            // reply. This is the write-through cost SNFS avoids.
            match fs.write(fh, offset, &data, true).await {
                Ok(attr) => NfsReply::Attr(attr),
                Err(e) => NfsReply::Err(e),
            }
        }
        NfsRequest::Create { dir, name } => match fs.create(dir, &name).await {
            Ok((fh, attr)) => NfsReply::Handle { fh, attr },
            Err(e) => NfsReply::Err(e),
        },
        NfsRequest::Remove { dir, name } => match fs.remove(dir, &name).await {
            Ok(()) => NfsReply::Ok,
            Err(e) => NfsReply::Err(e),
        },
        NfsRequest::Rename {
            from_dir,
            from_name,
            to_dir,
            to_name,
        } => match fs.rename(from_dir, &from_name, to_dir, &to_name).await {
            Ok(()) => NfsReply::Ok,
            Err(e) => NfsReply::Err(e),
        },
        NfsRequest::Mkdir { dir, name } => match fs.mkdir(dir, &name).await {
            Ok((fh, attr)) => NfsReply::Handle { fh, attr },
            Err(e) => NfsReply::Err(e),
        },
        NfsRequest::Rmdir { dir, name } => match fs.rmdir(dir, &name).await {
            Ok(()) => NfsReply::Ok,
            Err(e) => NfsReply::Err(e),
        },
        NfsRequest::Readdir { dir } => match fs.readdir(dir) {
            Ok(entries) => NfsReply::Readdir { entries },
            Err(e) => NfsReply::Err(e),
        },
        NfsRequest::StatFs { fh } => match fs.getattr(fh) {
            Ok(attr) => NfsReply::Attr(attr),
            Err(e) => NfsReply::Err(e),
        },
        NfsRequest::Link {
            from,
            to_dir,
            ref to_name,
        } => match fs.link(from, to_dir, to_name).await {
            Ok(attr) => NfsReply::Attr(attr),
            Err(e) => NfsReply::Err(e),
        },
        NfsRequest::Symlink {
            dir,
            ref name,
            ref target,
        } => match fs.symlink(dir, name, target).await {
            Ok((fh, attr)) => NfsReply::Handle { fh, attr },
            Err(e) => NfsReply::Err(e),
        },
        NfsRequest::Readlink { fh } => match fs.readlink(fh) {
            Ok(target) => NfsReply::Path(target),
            Err(e) => NfsReply::Err(e),
        },
        // A stateless server has no open/close and no recovery protocol:
        // reject, so SNFS clients fall back to plain NFS (§6.1). A
        // compound is a transport artifact — the batching caller delivers
        // its inner calls individually, so one must never reach a handler.
        NfsRequest::Open { .. }
        | NfsRequest::Close { .. }
        | NfsRequest::Keepalive { .. }
        | NfsRequest::Recover { .. }
        | NfsRequest::DelegReturn { .. }
        | NfsRequest::Compound { .. }
        | NfsRequest::TxPrepare { .. }
        | NfsRequest::TxCommit { .. }
        | NfsRequest::TxAbort { .. } => NfsReply::Err(NfsStatus::Inval),
    }
}
