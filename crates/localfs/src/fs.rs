//! The local file system: store + buffer cache + disk, with Unix
//! delayed-write semantics and the `/etc/update` sync daemon.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use spritely_blockdev::Disk;
use spritely_proto::{
    block_of, blocks_for, DirEntry, Fattr, FileHandle, FileType, NfsStatus, Result, BLOCK_SIZE,
};
use spritely_sim::{Event, Sim, SimDuration};
use spritely_trace::{EventKind, Tracer};

use crate::cache::BlockCache;
use crate::store::{Store, META_BASE};

/// Cache key: `(inode number, logical block index)`. Inode numbers are
/// never reused, so the generation is not needed here.
type Key = (u64, u64);

/// Configuration for a [`LocalFs`].
#[derive(Debug, Clone, Copy)]
pub struct FsParams {
    /// Buffer cache capacity in blocks.
    pub cache_blocks: usize,
    /// Interval of the `/etc/update` daemon; `None` disables it entirely
    /// ("infinite write-delay", paper §5.4).
    pub update_interval: Option<SimDuration>,
    /// Minimum dirty age for the daemon to flush a block. Traditional Unix
    /// `sync` flushes everything (zero); Sprite used 30 s.
    pub update_min_age: SimDuration,
    /// Charge one synchronous disk write for namespace operations
    /// (create/remove/mkdir/rmdir/rename), modelling synchronous directory
    /// and inode updates.
    pub charge_structural: bool,
    /// Charge an inode update (a small write in the metadata region) for
    /// every *synchronous* data write. RFC 1094 requires the server to
    /// have size/mtime on stable storage before replying to a `write`, so
    /// an NFS server pays this on every write RPC — it both adds a
    /// positioning delay and breaks the sequentiality of bulk writes,
    /// which is a large part of why write-through was so expensive.
    pub sync_inode_writes: bool,
    /// Collapse concurrent cache misses on the same block into one disk
    /// read: followers wait for the leader's fetch instead of queueing a
    /// duplicate request. Off by default — the paper-era server re-read
    /// the block once per RPC.
    pub single_flight_reads: bool,
}

impl Default for FsParams {
    fn default() -> Self {
        FsParams {
            cache_blocks: 4096, // 16 MB at 4 KB blocks
            update_interval: Some(SimDuration::from_secs(30)),
            update_min_age: SimDuration::ZERO,
            charge_structural: true,
            sync_inode_writes: true,
            single_flight_reads: false,
        }
    }
}

/// Cumulative statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FsStats {
    /// Dirty blocks written to disk (delayed flushes + sync writes).
    pub flushed_blocks: u64,
    /// Dirty blocks dropped because their file was deleted first — the
    /// "writes averted" the paper's §5.4 measures.
    pub cancelled_blocks: u64,
    /// Synchronous structural (inode/directory) writes.
    pub structural_writes: u64,
}

struct Inner {
    sim: Sim,
    disk: Disk,
    store: RefCell<Store>,
    cache: RefCell<BlockCache<Key>>,
    params: FsParams,
    stats: RefCell<FsStats>,
    /// Blocks with a disk read in flight (single-flight mode): followers
    /// wait on the event instead of issuing a duplicate read.
    inflight: RefCell<HashMap<Key, Event>>,
    tracer: RefCell<Option<Tracer>>,
}

/// A simulated local Unix file system on one disk.
///
/// All data operations are block-granular through a buffer cache with
/// delayed writes; namespace operations update the store immediately and
/// charge a synchronous structural disk write (as Unix does for directory
/// updates).
#[derive(Clone)]
pub struct LocalFs {
    inner: Rc<Inner>,
}

impl LocalFs {
    /// Creates an empty file system (just a root directory) on `disk`.
    pub fn new(sim: &Sim, fsid: u32, disk: Disk, params: FsParams) -> Self {
        LocalFs {
            inner: Rc::new(Inner {
                sim: sim.clone(),
                disk,
                store: RefCell::new(Store::new(fsid)),
                cache: RefCell::new(BlockCache::new(params.cache_blocks)),
                params,
                stats: RefCell::new(FsStats::default()),
                inflight: RefCell::new(HashMap::new()),
                tracer: RefCell::new(None),
            }),
        }
    }

    /// Attach a tracer; block-cache lookups on the read path emit
    /// `srv_cache_read` events from then on. Emission never awaits, so a
    /// traced run is behaviorally identical.
    pub fn set_tracer(&self, tracer: Tracer) {
        *self.inner.tracer.borrow_mut() = Some(tracer);
    }

    fn emit_cache_read(&self, ino: u64, blk: u64, hit: bool) {
        if let Some(t) = self.inner.tracer.borrow().as_ref() {
            t.emit(0, EventKind::SrvCacheRead { ino, blk, hit });
        }
    }

    /// Root directory handle.
    pub fn root(&self) -> FileHandle {
        self.inner.store.borrow().root()
    }

    /// Statistics so far.
    pub fn stats(&self) -> FsStats {
        *self.inner.stats.borrow()
    }

    /// Buffer-cache `(hits, misses)`.
    pub fn cache_stats(&self) -> (u64, u64) {
        self.inner.cache.borrow().hit_stats()
    }

    /// Number of dirty blocks currently in the cache.
    pub fn dirty_blocks(&self) -> usize {
        self.inner.cache.borrow().dirty_count()
    }

    /// The underlying disk.
    pub fn disk(&self) -> &Disk {
        &self.inner.disk
    }

    fn now_us(&self) -> u64 {
        self.inner.sim.now().as_micros()
    }

    // ---- namespace operations -------------------------------------------

    /// Attributes of a file (in-memory; inode metadata is assumed cached).
    pub fn getattr(&self, fh: FileHandle) -> Result<Fattr> {
        self.inner.store.borrow().getattr(fh)
    }

    /// Single-component lookup.
    pub fn lookup(&self, dir: FileHandle, name: &str) -> Result<(FileHandle, Fattr)> {
        self.inner.store.borrow().lookup(dir, name)
    }

    /// Directory listing.
    pub fn readdir(&self, dir: FileHandle) -> Result<Vec<DirEntry>> {
        self.inner.store.borrow().readdir(dir)
    }

    async fn structural_write(&self, ino: u64) {
        if !self.inner.params.charge_structural {
            return;
        }
        self.inner.stats.borrow_mut().structural_writes += 1;
        self.inner.disk.write(META_BASE + (ino % 997), 512).await;
    }

    /// Creates a regular file.
    pub async fn create(&self, dir: FileHandle, name: &str) -> Result<(FileHandle, Fattr)> {
        let now = self.now_us();
        let r = self.inner.store.borrow_mut().create(dir, name, now)?;
        self.structural_write(dir.inode).await;
        Ok(r)
    }

    /// Creates a directory.
    pub async fn mkdir(&self, dir: FileHandle, name: &str) -> Result<(FileHandle, Fattr)> {
        let now = self.now_us();
        let r = self.inner.store.borrow_mut().mkdir(dir, name, now)?;
        self.structural_write(dir.inode).await;
        Ok(r)
    }

    /// Removes a regular file, cancelling any of its delayed writes
    /// (paper §4.2.3: Sprite and SNFS "cancel" delayed writes on delete).
    pub async fn remove(&self, dir: FileHandle, name: &str) -> Result<()> {
        let now = self.now_us();
        let (victim, gone) = self.inner.store.borrow_mut().remove(dir, name, now)?;
        if gone {
            // Only the last hard link cancels the delayed writes.
            let dropped = self
                .inner
                .cache
                .borrow_mut()
                .drop_matching(|k| k.0 == victim.inode);
            self.inner.stats.borrow_mut().cancelled_blocks += dropped.dirty;
        }
        self.structural_write(dir.inode).await;
        Ok(())
    }

    /// Removes an empty directory.
    pub async fn rmdir(&self, dir: FileHandle, name: &str) -> Result<()> {
        let now = self.now_us();
        self.inner.store.borrow_mut().rmdir(dir, name, now)?;
        self.structural_write(dir.inode).await;
        Ok(())
    }

    /// Renames; a replaced target's delayed writes are cancelled.
    pub async fn rename(
        &self,
        from_dir: FileHandle,
        from_name: &str,
        to_dir: FileHandle,
        to_name: &str,
    ) -> Result<()> {
        let now = self.now_us();
        let replaced = self
            .inner
            .store
            .borrow_mut()
            .rename(from_dir, from_name, to_dir, to_name, now)?;
        if let Some(victim) = replaced {
            let dropped = self
                .inner
                .cache
                .borrow_mut()
                .drop_matching(|k| k.0 == victim.inode);
            self.inner.stats.borrow_mut().cancelled_blocks += dropped.dirty;
        }
        self.structural_write(from_dir.inode).await;
        Ok(())
    }

    /// Creates a hard link `dir/name` to `from`.
    pub async fn link(&self, from: FileHandle, dir: FileHandle, name: &str) -> Result<Fattr> {
        let now = self.now_us();
        let attr = self.inner.store.borrow_mut().link(from, dir, name, now)?;
        self.structural_write(dir.inode).await;
        Ok(attr)
    }

    /// Creates a symbolic link `dir/name` → `target`.
    pub async fn symlink(
        &self,
        dir: FileHandle,
        name: &str,
        target: &str,
    ) -> Result<(FileHandle, Fattr)> {
        let now = self.now_us();
        let r = self
            .inner
            .store
            .borrow_mut()
            .symlink(dir, name, target, now)?;
        self.structural_write(dir.inode).await;
        Ok(r)
    }

    /// Reads a symbolic link's target (metadata is in memory; no disk).
    pub fn readlink(&self, fh: FileHandle) -> Result<String> {
        self.inner.store.borrow().readlink(fh)
    }

    /// Sets attributes (currently: truncate).
    pub async fn setattr(&self, fh: FileHandle, size: Option<u64>) -> Result<Fattr> {
        let now = self.now_us();
        let attr = match size {
            Some(sz) => {
                let a = self.inner.store.borrow_mut().truncate(fh, sz, now)?;
                // Blocks beyond the new EOF are no longer meaningful.
                let cut = blocks_for(sz);
                self.inner
                    .cache
                    .borrow_mut()
                    .drop_matching(|k| k.0 == fh.inode && k.1 >= cut);
                self.structural_write(fh.inode).await;
                a
            }
            None => self.inner.store.borrow().getattr(fh)?,
        };
        Ok(attr)
    }

    // ---- data operations --------------------------------------------------

    async fn flush_victim(&self, key: Key, data: Vec<u8>) {
        let addr = self.inner.store.borrow().addr_by_ino(key.0, key.1);
        match addr {
            Some(addr) => {
                self.inner.disk.write(addr, data.len()).await;
                self.inner
                    .store
                    .borrow_mut()
                    .write_stable_by_ino(key.0, key.1, data);
                self.inner.stats.borrow_mut().flushed_blocks += 1;
            }
            None => {
                // The file vanished while the block waited; the write is
                // cancelled.
                self.inner.stats.borrow_mut().cancelled_blocks += 1;
            }
        }
    }

    /// One block of `fh` through the buffer cache: hit, or miss + disk
    /// read + clean insert. In single-flight mode, concurrent misses on
    /// the same block coalesce — followers wait for the leader's fetch
    /// and then re-check the cache.
    async fn fetch_cached_block(&self, fh: FileHandle, lblk: u64) -> Result<Vec<u8>> {
        let key = (fh.inode, lblk);
        loop {
            let cached = self.inner.cache.borrow_mut().get(&key);
            if let Some(b) = cached {
                self.emit_cache_read(fh.inode, lblk, true);
                return Ok(b);
            }
            if self.inner.params.single_flight_reads {
                let leader = self.inner.inflight.borrow().get(&key).cloned();
                if let Some(ev) = leader {
                    ev.wait().await;
                    // The leader populated the cache (or vanished); either
                    // way, re-check from the top.
                    continue;
                }
            }
            self.emit_cache_read(fh.inode, lblk, false);
            let gate = if self.inner.params.single_flight_reads {
                let ev = Event::new();
                self.inner.inflight.borrow_mut().insert(key, ev.clone());
                Some(ev)
            } else {
                None
            };
            let fetched = self.fetch_from_disk(fh, lblk).await;
            if let Some(ev) = gate {
                self.inner.inflight.borrow_mut().remove(&key);
                ev.set();
            }
            let data = fetched?;
            let victim = self
                .inner
                .cache
                .borrow_mut()
                .insert_clean(key, data.clone());
            if let Some(v) = victim {
                self.flush_victim(v.key, v.data).await;
            }
            return Ok(data);
        }
    }

    async fn fetch_from_disk(&self, fh: FileHandle, lblk: u64) -> Result<Vec<u8>> {
        let (has, addr) = {
            let st = self.inner.store.borrow();
            (
                st.has_stable(fh.inode, lblk),
                st.addr_by_ino(fh.inode, lblk),
            )
        };
        if has {
            let addr = addr.expect("stable block has an address");
            self.inner.disk.read(addr, BLOCK_SIZE).await;
            self.inner.store.borrow().read_stable(fh, lblk)
        } else {
            // Hole or never-flushed region: zero fill, no disk.
            Ok(vec![0; BLOCK_SIZE])
        }
    }

    /// Reads up to `len` bytes at `offset`. Returns `(data, eof, attr)`.
    pub async fn read(
        &self,
        fh: FileHandle,
        offset: u64,
        len: u32,
    ) -> Result<(Vec<u8>, bool, Fattr)> {
        let attr = self.inner.store.borrow().getattr(fh)?;
        if attr.ftype == FileType::Directory {
            return Err(NfsStatus::IsDir);
        }
        let size = attr.size;
        if offset >= size || len == 0 {
            let now = self.now_us();
            let attr = self.inner.store.borrow_mut().note_read(fh, now)?;
            return Ok((Vec::new(), true, attr));
        }
        let end = size.min(offset + u64::from(len));
        let mut out = Vec::with_capacity((end - offset) as usize);
        let first = block_of(offset);
        let last = block_of(end - 1);
        for lblk in first..=last {
            let block = self.fetch_cached_block(fh, lblk).await?;
            let blk_start = lblk * BLOCK_SIZE as u64;
            let from = offset.max(blk_start) - blk_start;
            let to = (end - blk_start).min(BLOCK_SIZE as u64);
            out.extend_from_slice(&block[from as usize..to as usize]);
        }
        let now = self.now_us();
        let attr = self.inner.store.borrow_mut().note_read(fh, now)?;
        Ok((out, end == size, attr))
    }

    /// Writes `data` at `offset`. With `sync`, the affected blocks are
    /// flushed to disk before returning (NFS server semantics); otherwise
    /// the write is delayed in the cache (Unix local semantics).
    pub async fn write(
        &self,
        fh: FileHandle,
        offset: u64,
        data: &[u8],
        sync: bool,
    ) -> Result<Fattr> {
        if data.is_empty() {
            return self.inner.store.borrow().getattr(fh);
        }
        let old_attr = self.inner.store.borrow().getattr(fh)?;
        if old_attr.ftype == FileType::Directory {
            return Err(NfsStatus::IsDir);
        }
        let now = self.inner.sim.now();
        let end = offset + data.len() as u64;
        let first = block_of(offset);
        let last = block_of(end - 1);
        for lblk in first..=last {
            let blk_start = lblk * BLOCK_SIZE as u64;
            let from = offset.max(blk_start);
            let to = end.min(blk_start + BLOCK_SIZE as u64);
            let chunk = &data[(from - offset) as usize..(to - offset) as usize];
            let key = (fh.inode, lblk);
            let full = from == blk_start && (to - from) as usize == BLOCK_SIZE;
            let merged = if full {
                chunk.to_vec()
            } else {
                // Read-modify-write of a partial block.
                let mut base = {
                    let cached = self.inner.cache.borrow_mut().get(&key);
                    match cached {
                        Some(b) => b,
                        None => {
                            let (has, addr) = {
                                let st = self.inner.store.borrow();
                                (
                                    st.has_stable(fh.inode, lblk),
                                    st.addr_by_ino(fh.inode, lblk),
                                )
                            };
                            if has {
                                let addr = addr.expect("stable block has an address");
                                self.inner.disk.read(addr, BLOCK_SIZE).await;
                                self.inner.store.borrow().read_stable(fh, lblk)?
                            } else {
                                vec![0; BLOCK_SIZE]
                            }
                        }
                    }
                };
                let off = (from - blk_start) as usize;
                base[off..off + chunk.len()].copy_from_slice(chunk);
                base
            };
            self.inner.store.borrow_mut().ensure_block(fh, lblk)?;
            let victim = self.inner.cache.borrow_mut().write(key, merged, now);
            if let Some(v) = victim {
                self.flush_victim(v.key, v.data).await;
            }
        }
        let attr = self.inner.store.borrow_mut().note_write(
            fh,
            offset,
            data.len() as u64,
            now.as_micros(),
        )?;
        if sync {
            self.flush_range(fh, first, last).await?;
            if self.inner.params.sync_inode_writes {
                // Stable size/mtime before the reply (RFC 1094).
                self.inner.stats.borrow_mut().structural_writes += 1;
                self.inner
                    .disk
                    .write(META_BASE + (fh.inode % 997), 512)
                    .await;
            }
        }
        Ok(attr)
    }

    async fn flush_range(&self, fh: FileHandle, first: u64, last: u64) -> Result<()> {
        for lblk in first..=last {
            let key = (fh.inode, lblk);
            let fd = self.inner.cache.borrow().flush_data(&key);
            if let Some(fd) = fd {
                let addr = self.inner.store.borrow_mut().ensure_block(fh, lblk)?;
                self.inner.disk.write(addr, fd.data.len()).await;
                self.inner
                    .store
                    .borrow_mut()
                    .write_stable_by_ino(fh.inode, lblk, fd.data);
                self.inner.cache.borrow_mut().mark_clean(&key, fd.seq);
                self.inner.stats.borrow_mut().flushed_blocks += 1;
            }
        }
        Ok(())
    }

    /// Flushes all of one file's dirty blocks (ascending block order, so
    /// the disk sees sequential addresses).
    pub async fn fsync(&self, fh: FileHandle) -> Result<()> {
        let mut keys = self.inner.cache.borrow().keys_matching(|k| k.0 == fh.inode);
        keys.sort_unstable();
        for key in keys {
            let fd = self.inner.cache.borrow().flush_data(&key);
            if let Some(fd) = fd {
                let seq = fd.seq;
                self.flush_victim(key, fd.data).await;
                self.inner.cache.borrow_mut().mark_clean(&key, seq);
            }
        }
        Ok(())
    }

    /// Flushes every dirty block at least `min_age` old (the `update`
    /// daemon's unit of work). `min_age = 0` is a full `sync`.
    pub async fn flush_aged(&self, min_age: SimDuration) {
        let now = self.inner.sim.now();
        let mut due: Vec<Key> = self
            .inner
            .cache
            .borrow()
            .dirty_blocks()
            .into_iter()
            .filter(|&(_, t)| now.saturating_duration_since(t) >= min_age)
            .map(|(k, _)| k)
            .collect();
        due.sort_unstable();
        for key in due {
            let fd = self.inner.cache.borrow().flush_data(&key);
            if let Some(fd) = fd {
                let seq = fd.seq;
                self.flush_victim(key, fd.data).await;
                self.inner.cache.borrow_mut().mark_clean(&key, seq);
            }
        }
    }

    /// Flushes everything dirty.
    pub async fn sync_all(&self) {
        self.flush_aged(SimDuration::ZERO).await;
    }

    /// Spawns the `/etc/update` daemon if enabled by
    /// [`FsParams::update_interval`].
    pub fn spawn_update_daemon(&self) {
        let Some(interval) = self.inner.params.update_interval else {
            return;
        };
        let fs = self.clone();
        let sim = self.inner.sim.clone();
        self.inner.sim.spawn(async move {
            loop {
                sim.sleep(interval).await;
                fs.flush_aged(fs.inner.params.update_min_age).await;
            }
        });
    }

    /// Simulates a crash: all cached (non-stable) data is lost. Returns the
    /// number of dirty blocks that were lost.
    pub fn crash(&self) -> u64 {
        let counts = self.inner.cache.borrow_mut().clear();
        counts.dirty
    }

    /// Reads a whole file's stable bytes, bypassing cache and timing. For
    /// tests and integrity checks only.
    pub fn stable_contents(&self, fh: FileHandle) -> Result<Vec<u8>> {
        let st = self.inner.store.borrow();
        let attr = st.getattr(fh)?;
        let mut out = Vec::with_capacity(attr.size as usize);
        for lblk in 0..blocks_for(attr.size) {
            let b = st.read_stable(fh, lblk)?;
            out.extend_from_slice(&b);
        }
        out.truncate(attr.size as usize);
        Ok(out)
    }
}
