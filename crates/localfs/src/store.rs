//! The on-"disk" structures: inode table, directories, block contents.
//!
//! `Store` operations are pure state changes with no timing; the buffer
//! cache and [`LocalFs`](crate::LocalFs) layer charge disk time around
//! them. Content recorded here is *stable*: it survives a simulated crash,
//! whereas buffer-cache contents do not.

use std::collections::BTreeMap;
use std::collections::HashMap;

use spritely_proto::{
    blocks_for, DirEntry, Fattr, FileHandle, FileType, NfsStatus, Result, BLOCK_SIZE,
};

/// Maximum name length, as in traditional Unix.
pub const NAME_MAX: usize = 255;

/// Base disk address for structural (inode/directory) writes, far from the
/// data region so they charge full positioning time.
pub const META_BASE: u64 = 1 << 40;

pub(crate) struct Inode {
    pub ino: u64,
    pub generation: u32,
    pub ftype: FileType,
    pub size: u64,
    pub nlink: u32,
    pub mtime: u64,
    pub ctime: u64,
    pub atime: u64,
    /// Logical block index → allocated disk address.
    pub addrs: Vec<u64>,
    /// Stable block contents (only what has reached "disk").
    pub stable: Vec<Option<Vec<u8>>>,
    /// Directory entries (`Some` iff `ftype == Directory`).
    pub entries: Option<BTreeMap<String, u64>>,
    /// Symlink target (`Some` iff `ftype == Symlink`).
    pub symlink: Option<String>,
}

impl Inode {
    fn attr(&self) -> Fattr {
        Fattr {
            fileid: self.ino,
            ftype: self.ftype,
            size: self.size,
            nlink: self.nlink,
            mtime: self.mtime,
            ctime: self.ctime,
            atime: self.atime,
        }
    }
}

/// The stable file system image.
pub struct Store {
    fsid: u32,
    inodes: HashMap<u64, Inode>,
    next_ino: u64,
    next_gen: u32,
    next_addr: u64,
    root: u64,
}

impl Store {
    /// Creates a store containing only a root directory.
    pub fn new(fsid: u32) -> Self {
        let mut inodes = HashMap::new();
        inodes.insert(
            2,
            Inode {
                ino: 2,
                generation: 0,
                ftype: FileType::Directory,
                size: 0,
                nlink: 2,
                mtime: 0,
                ctime: 0,
                atime: 0,
                addrs: Vec::new(),
                stable: Vec::new(),
                entries: Some(BTreeMap::new()),
                symlink: None,
            },
        );
        Store {
            fsid,
            inodes,
            next_ino: 3,
            next_gen: 1,
            next_addr: 0,
            root: 2,
        }
    }

    /// The file system id baked into every handle.
    pub fn fsid(&self) -> u32 {
        self.fsid
    }

    /// Handle of the root directory.
    pub fn root(&self) -> FileHandle {
        self.handle_of(self.root)
    }

    fn handle_of(&self, ino: u64) -> FileHandle {
        let g = self.inodes[&ino].generation;
        FileHandle::new(self.fsid, ino, g)
    }

    pub(crate) fn get(&self, fh: FileHandle) -> Result<&Inode> {
        if fh.fsid != self.fsid {
            return Err(NfsStatus::Stale);
        }
        match self.inodes.get(&fh.inode) {
            Some(i) if i.generation == fh.generation => Ok(i),
            _ => Err(NfsStatus::Stale),
        }
    }

    pub(crate) fn get_mut(&mut self, fh: FileHandle) -> Result<&mut Inode> {
        if fh.fsid != self.fsid {
            return Err(NfsStatus::Stale);
        }
        match self.inodes.get_mut(&fh.inode) {
            Some(i) if i.generation == fh.generation => Ok(i),
            _ => Err(NfsStatus::Stale),
        }
    }

    /// Attributes of a file.
    pub fn getattr(&self, fh: FileHandle) -> Result<Fattr> {
        Ok(self.get(fh)?.attr())
    }

    /// Single-component lookup.
    pub fn lookup(&self, dir: FileHandle, name: &str) -> Result<(FileHandle, Fattr)> {
        let d = self.get(dir)?;
        let entries = d.entries.as_ref().ok_or(NfsStatus::NotDir)?;
        let &ino = entries.get(name).ok_or(NfsStatus::NoEnt)?;
        let fh = self.handle_of(ino);
        Ok((fh, self.inodes[&ino].attr()))
    }

    /// Lists a directory.
    pub fn readdir(&self, dir: FileHandle) -> Result<Vec<DirEntry>> {
        let d = self.get(dir)?;
        let entries = d.entries.as_ref().ok_or(NfsStatus::NotDir)?;
        Ok(entries
            .iter()
            .map(|(name, &ino)| DirEntry {
                name: name.clone(),
                fileid: ino,
            })
            .collect())
    }

    fn validate_name(name: &str) -> Result<()> {
        if name.is_empty() || name.len() > NAME_MAX || name.contains('/') {
            return Err(NfsStatus::Inval);
        }
        Ok(())
    }

    fn alloc_inode(&mut self, ftype: FileType) -> u64 {
        let ino = self.next_ino;
        self.next_ino += 1;
        let generation = self.next_gen;
        self.next_gen += 1;
        self.inodes.insert(
            ino,
            Inode {
                ino,
                generation,
                ftype,
                size: 0,
                nlink: 1,
                mtime: 0,
                ctime: 0,
                atime: 0,
                addrs: Vec::new(),
                stable: Vec::new(),
                entries: if ftype == FileType::Directory {
                    Some(BTreeMap::new())
                } else {
                    None
                },
                symlink: None,
            },
        );
        ino
    }

    /// Creates a regular file. Fails with `Exist` if the name is taken.
    pub fn create(&mut self, dir: FileHandle, name: &str, now: u64) -> Result<(FileHandle, Fattr)> {
        Self::validate_name(name)?;
        {
            let d = self.get(dir)?;
            let entries = d.entries.as_ref().ok_or(NfsStatus::NotDir)?;
            if entries.contains_key(name) {
                return Err(NfsStatus::Exist);
            }
        }
        let ino = self.alloc_inode(FileType::Regular);
        {
            let i = self.inodes.get_mut(&ino).expect("just allocated");
            i.mtime = now;
            i.ctime = now;
            i.atime = now;
        }
        let d = self.get_mut(dir).expect("checked above");
        d.entries
            .as_mut()
            .expect("checked above")
            .insert(name.to_string(), ino);
        d.mtime = now;
        d.ctime = now;
        Ok((self.handle_of(ino), self.inodes[&ino].attr()))
    }

    /// Creates a directory.
    pub fn mkdir(&mut self, dir: FileHandle, name: &str, now: u64) -> Result<(FileHandle, Fattr)> {
        Self::validate_name(name)?;
        {
            let d = self.get(dir)?;
            let entries = d.entries.as_ref().ok_or(NfsStatus::NotDir)?;
            if entries.contains_key(name) {
                return Err(NfsStatus::Exist);
            }
        }
        let ino = self.alloc_inode(FileType::Directory);
        {
            let i = self.inodes.get_mut(&ino).expect("just allocated");
            i.nlink = 2;
            i.mtime = now;
            i.ctime = now;
            i.atime = now;
        }
        let d = self.get_mut(dir).expect("checked above");
        d.entries
            .as_mut()
            .expect("checked above")
            .insert(name.to_string(), ino);
        d.nlink += 1;
        d.mtime = now;
        d.ctime = now;
        Ok((self.handle_of(ino), self.inodes[&ino].attr()))
    }

    /// Removes a directory entry for a regular file or symlink. Returns
    /// the target's handle and whether the inode itself was freed (its
    /// last hard link went away) — only then may the cache layer cancel
    /// its delayed writes.
    pub fn remove(&mut self, dir: FileHandle, name: &str, now: u64) -> Result<(FileHandle, bool)> {
        let ino = {
            let d = self.get(dir)?;
            let entries = d.entries.as_ref().ok_or(NfsStatus::NotDir)?;
            let &ino = entries.get(name).ok_or(NfsStatus::NoEnt)?;
            if self.inodes[&ino].ftype == FileType::Directory {
                return Err(NfsStatus::IsDir);
            }
            ino
        };
        let fh = self.handle_of(ino);
        let d = self.get_mut(dir).expect("checked above");
        d.entries.as_mut().expect("checked above").remove(name);
        d.mtime = now;
        d.ctime = now;
        let i = self.inodes.get_mut(&ino).expect("entry pointed at inode");
        i.nlink -= 1;
        i.ctime = now;
        let gone = i.nlink == 0;
        if gone {
            self.inodes.remove(&ino);
        }
        Ok((fh, gone))
    }

    /// Removes an empty directory.
    pub fn rmdir(&mut self, dir: FileHandle, name: &str, now: u64) -> Result<FileHandle> {
        let ino = {
            let d = self.get(dir)?;
            let entries = d.entries.as_ref().ok_or(NfsStatus::NotDir)?;
            let &ino = entries.get(name).ok_or(NfsStatus::NoEnt)?;
            let target = &self.inodes[&ino];
            let sub = target.entries.as_ref().ok_or(NfsStatus::NotDir)?;
            if !sub.is_empty() {
                return Err(NfsStatus::NotEmpty);
            }
            ino
        };
        let fh = self.handle_of(ino);
        let d = self.get_mut(dir).expect("checked above");
        d.entries.as_mut().expect("checked above").remove(name);
        d.nlink -= 1;
        d.mtime = now;
        d.ctime = now;
        self.inodes.remove(&ino);
        Ok(fh)
    }

    /// Renames `from_dir/from_name` to `to_dir/to_name`, replacing a
    /// regular-file target if present. Returns the handle of a replaced
    /// file, if any (for delayed-write cancellation).
    pub fn rename(
        &mut self,
        from_dir: FileHandle,
        from_name: &str,
        to_dir: FileHandle,
        to_name: &str,
        now: u64,
    ) -> Result<Option<FileHandle>> {
        Self::validate_name(to_name)?;
        let ino = {
            let d = self.get(from_dir)?;
            let entries = d.entries.as_ref().ok_or(NfsStatus::NotDir)?;
            *entries.get(from_name).ok_or(NfsStatus::NoEnt)?
        };
        // Check target.
        let replaced = {
            let d = self.get(to_dir)?;
            let entries = d.entries.as_ref().ok_or(NfsStatus::NotDir)?;
            match entries.get(to_name) {
                None => None,
                Some(&t) if t == ino => return Ok(None),
                Some(&t) => {
                    if self.inodes[&t].ftype == FileType::Directory {
                        return Err(NfsStatus::IsDir);
                    }
                    Some(t)
                }
            }
        };
        let replaced_fh = replaced.map(|t| self.handle_of(t));
        {
            let d = self.get_mut(from_dir).expect("checked above");
            d.entries.as_mut().expect("checked above").remove(from_name);
            d.mtime = now;
            d.ctime = now;
        }
        {
            let d = self.get_mut(to_dir).expect("checked above");
            d.entries
                .as_mut()
                .expect("checked above")
                .insert(to_name.to_string(), ino);
            d.mtime = now;
            d.ctime = now;
        }
        if let Some(t) = replaced {
            let i = self.inodes.get_mut(&t).expect("checked above");
            i.nlink -= 1;
            if i.nlink == 0 {
                self.inodes.remove(&t);
            }
        }
        Ok(replaced_fh)
    }

    /// Creates a hard link `dir/name` to the existing file `from`.
    ///
    /// Hard links to directories are rejected (as in Unix).
    pub fn link(
        &mut self,
        from: FileHandle,
        dir: FileHandle,
        name: &str,
        now: u64,
    ) -> Result<Fattr> {
        Self::validate_name(name)?;
        let ino = self.get(from)?.ino;
        if self.inodes[&ino].ftype == FileType::Directory {
            return Err(NfsStatus::IsDir);
        }
        {
            let d = self.get(dir)?;
            let entries = d.entries.as_ref().ok_or(NfsStatus::NotDir)?;
            if entries.contains_key(name) {
                return Err(NfsStatus::Exist);
            }
        }
        let d = self.get_mut(dir).expect("checked above");
        d.entries
            .as_mut()
            .expect("checked above")
            .insert(name.to_string(), ino);
        d.mtime = now;
        d.ctime = now;
        let i = self.inodes.get_mut(&ino).expect("source exists");
        i.nlink += 1;
        i.ctime = now;
        Ok(i.attr())
    }

    /// Creates a symbolic link `dir/name` pointing at `target`.
    pub fn symlink(
        &mut self,
        dir: FileHandle,
        name: &str,
        target: &str,
        now: u64,
    ) -> Result<(FileHandle, Fattr)> {
        Self::validate_name(name)?;
        if target.is_empty() || target.len() > 1024 {
            return Err(NfsStatus::Inval);
        }
        {
            let d = self.get(dir)?;
            let entries = d.entries.as_ref().ok_or(NfsStatus::NotDir)?;
            if entries.contains_key(name) {
                return Err(NfsStatus::Exist);
            }
        }
        let ino = self.alloc_inode(FileType::Symlink);
        {
            let i = self.inodes.get_mut(&ino).expect("just allocated");
            i.symlink = Some(target.to_string());
            i.size = target.len() as u64;
            i.mtime = now;
            i.ctime = now;
            i.atime = now;
        }
        let d = self.get_mut(dir).expect("checked above");
        d.entries
            .as_mut()
            .expect("checked above")
            .insert(name.to_string(), ino);
        d.mtime = now;
        d.ctime = now;
        Ok((self.handle_of(ino), self.inodes[&ino].attr()))
    }

    /// Reads a symbolic link's target.
    pub fn readlink(&self, fh: FileHandle) -> Result<String> {
        let i = self.get(fh)?;
        i.symlink.clone().ok_or(NfsStatus::Inval)
    }

    /// Truncates (or extends with zeros) a regular file.
    pub fn truncate(&mut self, fh: FileHandle, size: u64, now: u64) -> Result<Fattr> {
        let next_addr = &mut self.next_addr;
        let i = match self.inodes.get_mut(&fh.inode) {
            Some(i) if i.generation == fh.generation && fh.fsid == self.fsid => i,
            _ => return Err(NfsStatus::Stale),
        };
        if i.ftype == FileType::Directory {
            return Err(NfsStatus::IsDir);
        }
        let nblocks = blocks_for(size) as usize;
        if nblocks < i.addrs.len() {
            i.addrs.truncate(nblocks);
            i.stable.truncate(nblocks);
        } else {
            while i.addrs.len() < nblocks {
                i.addrs.push(*next_addr);
                *next_addr += 1;
                i.stable.push(None);
            }
        }
        i.size = size;
        i.mtime = now;
        i.ctime = now;
        Ok(i.attr())
    }

    /// Ensures block `lblk` has a disk address, allocating sequentially.
    pub fn ensure_block(&mut self, fh: FileHandle, lblk: u64) -> Result<u64> {
        let next_addr = &mut self.next_addr;
        let i = match self.inodes.get_mut(&fh.inode) {
            Some(i) if i.generation == fh.generation && fh.fsid == self.fsid => i,
            _ => return Err(NfsStatus::Stale),
        };
        while i.addrs.len() <= lblk as usize {
            i.addrs.push(*next_addr);
            *next_addr += 1;
            i.stable.push(None);
        }
        Ok(i.addrs[lblk as usize])
    }

    /// Disk address of an existing block.
    pub fn addr_of(&self, fh: FileHandle, lblk: u64) -> Result<u64> {
        let i = self.get(fh)?;
        i.addrs.get(lblk as usize).copied().ok_or(NfsStatus::Inval)
    }

    /// Disk address by raw inode number (ignores generation; inode numbers
    /// are never reused). `None` if the file or block no longer exists.
    pub fn addr_by_ino(&self, ino: u64, lblk: u64) -> Option<u64> {
        self.inodes
            .get(&ino)
            .and_then(|i| i.addrs.get(lblk as usize).copied())
    }

    /// Returns true if block `lblk` of inode `ino` has stable content.
    pub fn has_stable(&self, ino: u64, lblk: u64) -> bool {
        self.inodes
            .get(&ino)
            .and_then(|i| i.stable.get(lblk as usize))
            .is_some_and(Option::is_some)
    }

    /// Writes stable content by raw inode number; a vanished file is a
    /// silent no-op (the flush raced a delete).
    pub fn write_stable_by_ino(&mut self, ino: u64, lblk: u64, data: Vec<u8>) {
        if let Some(i) = self.inodes.get_mut(&ino) {
            if let Some(slot) = i.stable.get_mut(lblk as usize) {
                *slot = Some(data);
            }
        }
    }

    /// Reads stable content of one block (zeros if never written).
    pub fn read_stable(&self, fh: FileHandle, lblk: u64) -> Result<Vec<u8>> {
        let i = self.get(fh)?;
        Ok(i.stable
            .get(lblk as usize)
            .and_then(|b| b.clone())
            .unwrap_or_else(|| vec![0; BLOCK_SIZE]))
    }

    /// Writes stable content of one block (called after the disk write
    /// completes) and grows size/mtime.
    pub fn write_stable(&mut self, fh: FileHandle, lblk: u64, data: Vec<u8>) -> Result<()> {
        self.ensure_block(fh, lblk)?;
        let i = self.get_mut(fh)?;
        i.stable[lblk as usize] = Some(data);
        Ok(())
    }

    /// Updates size and mtime after a logical write of `len` bytes at
    /// `offset` (cache layer calls this immediately, before flush).
    pub fn note_write(&mut self, fh: FileHandle, offset: u64, len: u64, now: u64) -> Result<Fattr> {
        let i = self.get_mut(fh)?;
        if i.ftype == FileType::Directory {
            return Err(NfsStatus::IsDir);
        }
        i.size = i.size.max(offset + len);
        i.mtime = now;
        i.ctime = now;
        Ok(i.attr())
    }

    /// Marks an access time.
    pub fn note_read(&mut self, fh: FileHandle, now: u64) -> Result<Fattr> {
        let i = self.get_mut(fh)?;
        i.atime = now;
        Ok(i.attr())
    }

    /// Number of live inodes (for tests and statfs).
    pub fn inode_count(&self) -> usize {
        self.inodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> Store {
        Store::new(1)
    }

    #[test]
    fn root_exists_and_is_dir() {
        let s = store();
        let root = s.root();
        let a = s.getattr(root).unwrap();
        assert!(a.is_dir());
        assert_eq!(a.nlink, 2);
    }

    #[test]
    fn create_lookup_roundtrip() {
        let mut s = store();
        let root = s.root();
        let (fh, attr) = s.create(root, "a.txt", 10).unwrap();
        assert_eq!(attr.size, 0);
        let (fh2, _) = s.lookup(root, "a.txt").unwrap();
        assert_eq!(fh, fh2);
        assert_eq!(s.lookup(root, "missing").unwrap_err(), NfsStatus::NoEnt);
    }

    #[test]
    fn create_duplicate_fails() {
        let mut s = store();
        let root = s.root();
        s.create(root, "x", 0).unwrap();
        assert_eq!(s.create(root, "x", 0).unwrap_err(), NfsStatus::Exist);
    }

    #[test]
    fn bad_names_rejected() {
        let mut s = store();
        let root = s.root();
        assert_eq!(s.create(root, "", 0).unwrap_err(), NfsStatus::Inval);
        assert_eq!(s.create(root, "a/b", 0).unwrap_err(), NfsStatus::Inval);
        let long = "x".repeat(NAME_MAX + 1);
        assert_eq!(s.create(root, &long, 0).unwrap_err(), NfsStatus::Inval);
    }

    #[test]
    fn remove_makes_handle_stale() {
        let mut s = store();
        let root = s.root();
        let (fh, _) = s.create(root, "f", 0).unwrap();
        let (victim, gone) = s.remove(root, "f", 1).unwrap();
        assert_eq!(victim, fh);
        assert!(gone);
        assert_eq!(s.getattr(fh).unwrap_err(), NfsStatus::Stale);
        assert_eq!(s.lookup(root, "f").unwrap_err(), NfsStatus::NoEnt);
    }

    #[test]
    fn generation_distinguishes_recycled_names() {
        let mut s = store();
        let root = s.root();
        let (fh1, _) = s.create(root, "f", 0).unwrap();
        s.remove(root, "f", 1).unwrap();
        let (fh2, _) = s.create(root, "f", 2).unwrap();
        assert_ne!(fh1, fh2);
        assert!(s.getattr(fh2).is_ok());
        assert_eq!(s.getattr(fh1).unwrap_err(), NfsStatus::Stale);
    }

    #[test]
    fn mkdir_rmdir_lifecycle() {
        let mut s = store();
        let root = s.root();
        let (d, attr) = s.mkdir(root, "sub", 0).unwrap();
        assert!(attr.is_dir());
        assert_eq!(s.getattr(root).unwrap().nlink, 3);
        let (f, _) = s.create(d, "inner", 1).unwrap();
        assert_eq!(s.rmdir(root, "sub", 2).unwrap_err(), NfsStatus::NotEmpty);
        s.remove(d, "inner", 3).unwrap();
        s.rmdir(root, "sub", 4).unwrap();
        assert_eq!(s.getattr(d).unwrap_err(), NfsStatus::Stale);
        assert_eq!(s.getattr(root).unwrap().nlink, 2);
        let _ = f;
    }

    #[test]
    fn rmdir_of_file_fails() {
        let mut s = store();
        let root = s.root();
        s.create(root, "f", 0).unwrap();
        assert_eq!(s.rmdir(root, "f", 1).unwrap_err(), NfsStatus::NotDir);
    }

    #[test]
    fn remove_of_dir_fails() {
        let mut s = store();
        let root = s.root();
        s.mkdir(root, "d", 0).unwrap();
        assert_eq!(s.remove(root, "d", 1).unwrap_err(), NfsStatus::IsDir);
    }

    #[test]
    fn readdir_lists_sorted() {
        let mut s = store();
        let root = s.root();
        s.create(root, "b", 0).unwrap();
        s.create(root, "a", 0).unwrap();
        let names: Vec<_> = s
            .readdir(root)
            .unwrap()
            .into_iter()
            .map(|e| e.name)
            .collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn rename_moves_and_replaces() {
        let mut s = store();
        let root = s.root();
        let (src, _) = s.create(root, "src", 0).unwrap();
        let (victim, _) = s.create(root, "dst", 0).unwrap();
        let replaced = s.rename(root, "src", root, "dst", 1).unwrap();
        assert_eq!(replaced, Some(victim));
        let (found, _) = s.lookup(root, "dst").unwrap();
        assert_eq!(found, src);
        assert_eq!(s.lookup(root, "src").unwrap_err(), NfsStatus::NoEnt);
        assert_eq!(s.getattr(victim).unwrap_err(), NfsStatus::Stale);
    }

    #[test]
    fn rename_onto_self_is_noop() {
        let mut s = store();
        let root = s.root();
        s.create(root, "f", 0).unwrap();
        assert_eq!(s.rename(root, "f", root, "f", 1).unwrap(), None);
        assert!(s.lookup(root, "f").is_ok());
    }

    #[test]
    fn blocks_allocate_sequentially() {
        let mut s = store();
        let root = s.root();
        let (fh, _) = s.create(root, "f", 0).unwrap();
        let a0 = s.ensure_block(fh, 0).unwrap();
        let a1 = s.ensure_block(fh, 1).unwrap();
        let a2 = s.ensure_block(fh, 2).unwrap();
        assert_eq!(a1, a0 + 1);
        assert_eq!(a2, a1 + 1);
        assert_eq!(s.addr_of(fh, 1).unwrap(), a1);
    }

    #[test]
    fn stable_content_roundtrip_and_default_zeros() {
        let mut s = store();
        let root = s.root();
        let (fh, _) = s.create(root, "f", 0).unwrap();
        s.ensure_block(fh, 0).unwrap();
        assert_eq!(s.read_stable(fh, 0).unwrap(), vec![0; BLOCK_SIZE]);
        s.write_stable(fh, 0, vec![7; BLOCK_SIZE]).unwrap();
        assert_eq!(s.read_stable(fh, 0).unwrap(), vec![7; BLOCK_SIZE]);
    }

    #[test]
    fn note_write_grows_size_and_mtime() {
        let mut s = store();
        let root = s.root();
        let (fh, _) = s.create(root, "f", 0).unwrap();
        let a = s.note_write(fh, 100, 50, 5).unwrap();
        assert_eq!(a.size, 150);
        assert_eq!(a.mtime, 5);
        let a2 = s.note_write(fh, 0, 10, 6).unwrap();
        assert_eq!(a2.size, 150, "writes inside the file don't shrink it");
    }

    #[test]
    fn truncate_shrinks_and_extends() {
        let mut s = store();
        let root = s.root();
        let (fh, _) = s.create(root, "f", 0).unwrap();
        s.truncate(fh, 10_000, 1).unwrap();
        let a = s.getattr(fh).unwrap();
        assert_eq!(a.size, 10_000);
        assert_eq!(a.blocks(), 3);
        s.truncate(fh, 0, 2).unwrap();
        assert_eq!(s.getattr(fh).unwrap().size, 0);
    }

    #[test]
    fn hard_link_shares_inode_and_survives_unlink() {
        let mut s = store();
        let root = s.root();
        let (fh, _) = s.create(root, "a", 0).unwrap();
        s.ensure_block(fh, 0).unwrap();
        s.write_stable(fh, 0, vec![5; BLOCK_SIZE]).unwrap();
        let attr = s.link(fh, root, "b", 1).unwrap();
        assert_eq!(attr.nlink, 2);
        let (fh_b, _) = s.lookup(root, "b").unwrap();
        assert_eq!(fh_b, fh, "same handle for both names");
        // Remove the original name: inode lives on.
        let (_, gone) = s.remove(root, "a", 2).unwrap();
        assert!(!gone, "one link remains");
        assert_eq!(s.getattr(fh).unwrap().nlink, 1);
        assert_eq!(s.read_stable(fh, 0).unwrap(), vec![5; BLOCK_SIZE]);
        let (_, gone) = s.remove(root, "b", 3).unwrap();
        assert!(gone, "last link frees the inode");
        assert_eq!(s.getattr(fh).unwrap_err(), NfsStatus::Stale);
    }

    #[test]
    fn link_to_directory_rejected() {
        let mut s = store();
        let root = s.root();
        let (d, _) = s.mkdir(root, "d", 0).unwrap();
        assert_eq!(s.link(d, root, "dlink", 1).unwrap_err(), NfsStatus::IsDir);
    }

    #[test]
    fn link_name_collision_rejected() {
        let mut s = store();
        let root = s.root();
        let (fh, _) = s.create(root, "a", 0).unwrap();
        s.create(root, "b", 0).unwrap();
        assert_eq!(s.link(fh, root, "b", 1).unwrap_err(), NfsStatus::Exist);
    }

    #[test]
    fn symlink_roundtrip() {
        let mut s = store();
        let root = s.root();
        let (lh, attr) = s.symlink(root, "ln", "/somewhere/else", 0).unwrap();
        assert_eq!(attr.ftype, FileType::Symlink);
        assert_eq!(attr.size, "/somewhere/else".len() as u64);
        assert_eq!(s.readlink(lh).unwrap(), "/somewhere/else");
        // readlink of a non-symlink is invalid.
        let (fh, _) = s.create(root, "f", 1).unwrap();
        assert_eq!(s.readlink(fh).unwrap_err(), NfsStatus::Inval);
        // symlinks remove like files.
        let (_, gone) = s.remove(root, "ln", 2).unwrap();
        assert!(gone);
    }

    #[test]
    fn symlink_empty_or_huge_target_rejected() {
        let mut s = store();
        let root = s.root();
        assert_eq!(s.symlink(root, "x", "", 0).unwrap_err(), NfsStatus::Inval);
        let huge = "t".repeat(2000);
        assert_eq!(
            s.symlink(root, "x", &huge, 0).unwrap_err(),
            NfsStatus::Inval
        );
    }

    #[test]
    fn inode_count_tracks_life() {
        let mut s = store();
        let root = s.root();
        assert_eq!(s.inode_count(), 1);
        s.create(root, "a", 0).unwrap();
        assert_eq!(s.inode_count(), 2);
        s.remove(root, "a", 1).unwrap();
        assert_eq!(s.inode_count(), 1);
    }
}
