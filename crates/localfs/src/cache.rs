//! A passive block cache with LRU eviction and delayed-write (dirty)
//! tracking.
//!
//! The cache is deliberately I/O-free: it returns eviction victims and
//! flush candidates to its owner, which performs the actual disk or RPC
//! writes. This lets the same structure back three different caches in the
//! system — the local file system's buffer pool, the NFS client's data
//! cache, and the SNFS client's delayed-write cache — which flush to very
//! different places.

use std::collections::HashMap;
use std::hash::Hash;

use spritely_sim::SimTime;

/// One cached block.
struct Entry {
    data: Vec<u8>,
    /// `Some(t)` if dirty, where `t` is when it first became dirty.
    dirty_since: Option<SimTime>,
    /// Incremented on every write; used to detect writes that raced a
    /// flush (the flusher only marks clean if the seq is unchanged).
    seq: u64,
    lru: u64,
}

/// A dirty block evicted to make room; the owner must write it out.
#[derive(Debug, PartialEq, Eq)]
pub struct DirtyVictim<K> {
    /// The evicted block's key.
    pub key: K,
    /// The evicted block's data.
    pub data: Vec<u8>,
}

/// Data handed out for flushing, with the seq to pass back to
/// [`BlockCache::mark_clean`].
#[derive(Debug)]
pub struct FlushData {
    /// Copy of the block contents at flush time.
    pub data: Vec<u8>,
    /// Sequence number at flush time.
    pub seq: u64,
}

/// Counters describing a bulk invalidation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DropCounts {
    /// Clean blocks dropped.
    pub clean: u64,
    /// Dirty blocks dropped (their writes were cancelled).
    pub dirty: u64,
}

/// An LRU block cache keyed by `K` (typically `(file, block-index)`).
pub struct BlockCache<K> {
    capacity: usize,
    map: HashMap<K, Entry>,
    next_lru: u64,
    hits: u64,
    misses: u64,
    /// High-water mark of resident blocks. The map itself is lazily
    /// populated (an idle client's cache allocates nothing), so this is
    /// the cache's real peak memory footprint in blocks.
    peak: usize,
}

impl<K: Eq + Hash + Copy> BlockCache<K> {
    /// Creates a cache holding at most `capacity` blocks.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        BlockCache {
            capacity,
            map: HashMap::new(),
            next_lru: 0,
            hits: 0,
            misses: 0,
            peak: 0,
        }
    }

    /// Capacity in blocks.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of resident blocks.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns true if no blocks are resident.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// `(hits, misses)` counted by [`get`](Self::get).
    pub fn hit_stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Peak number of blocks ever resident at once (after eviction), in
    /// blocks. An untouched cache reports zero.
    pub fn peak_resident(&self) -> usize {
        self.peak
    }

    fn note_peak(&mut self) {
        if self.map.len() > self.peak {
            self.peak = self.map.len();
        }
    }

    /// Looks a block up, bumping its recency and counting hit/miss.
    pub fn get(&mut self, k: &K) -> Option<Vec<u8>> {
        match self.map.get_mut(k) {
            Some(e) => {
                self.hits += 1;
                e.lru = self.next_lru;
                self.next_lru += 1;
                Some(e.data.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Returns true if the block is resident (no recency bump, no stats).
    pub fn contains(&self, k: &K) -> bool {
        self.map.contains_key(k)
    }

    /// Returns true if the block is resident and dirty.
    pub fn is_dirty(&self, k: &K) -> bool {
        self.map.get(k).is_some_and(|e| e.dirty_since.is_some())
    }

    /// Evicts the least-recently-used block if the cache is over capacity.
    /// Clean blocks are preferred; an all-dirty cache evicts its LRU dirty
    /// block, which the owner must write out.
    fn make_room(&mut self) -> Option<DirtyVictim<K>> {
        if self.map.len() <= self.capacity {
            return None;
        }
        // One pass over the residents: the LRU clean block (preferred
        // victim) and the LRU block overall. `lru` stamps are unique, so
        // the choice is deterministic whatever the map's iteration order.
        let mut lru_clean: Option<(u64, K)> = None;
        let mut lru_any: Option<(u64, K)> = None;
        for (k, e) in &self.map {
            if lru_any.is_none_or(|(l, _)| e.lru < l) {
                lru_any = Some((e.lru, *k));
            }
            if e.dirty_since.is_none() && lru_clean.is_none_or(|(l, _)| e.lru < l) {
                lru_clean = Some((e.lru, *k));
            }
        }
        if let Some((_, k)) = lru_clean {
            self.map.remove(&k);
            return None;
        }
        let (_, victim) = lru_any.expect("over capacity implies nonempty");
        let e = self.map.remove(&victim).expect("victim resident");
        Some(DirtyVictim {
            key: victim,
            data: e.data,
        })
    }

    /// Inserts a clean block (e.g. fetched from disk or the server).
    /// Returns a dirty victim if one had to be evicted.
    pub fn insert_clean(&mut self, k: K, data: Vec<u8>) -> Option<DirtyVictim<K>> {
        let lru = self.next_lru;
        self.next_lru += 1;
        // Overwriting a dirty block with "clean" data would lose the dirty
        // marking; keep the dirty stamp in that case.
        match self.map.get_mut(&k) {
            Some(e) => {
                if e.dirty_since.is_none() {
                    e.data = data;
                }
                e.lru = lru;
                None
            }
            None => {
                self.map.insert(
                    k,
                    Entry {
                        data,
                        dirty_since: None,
                        seq: 0,
                        lru,
                    },
                );
                let victim = self.make_room();
                self.note_peak();
                victim
            }
        }
    }

    /// Writes a block (marks it dirty). Returns a dirty victim if one had
    /// to be evicted.
    pub fn write(&mut self, k: K, data: Vec<u8>, now: SimTime) -> Option<DirtyVictim<K>> {
        let lru = self.next_lru;
        self.next_lru += 1;
        match self.map.get_mut(&k) {
            Some(e) => {
                e.data = data;
                e.dirty_since.get_or_insert(now);
                e.seq += 1;
                e.lru = lru;
                None
            }
            None => {
                self.map.insert(
                    k,
                    Entry {
                        data,
                        dirty_since: Some(now),
                        seq: 1,
                        lru,
                    },
                );
                let victim = self.make_room();
                self.note_peak();
                victim
            }
        }
    }

    /// Copies out a dirty block for flushing. Returns `None` if the block
    /// is not resident or not dirty.
    pub fn flush_data(&self, k: &K) -> Option<FlushData> {
        self.map.get(k).and_then(|e| {
            e.dirty_since.map(|_| FlushData {
                data: e.data.clone(),
                seq: e.seq,
            })
        })
    }

    /// Marks a block clean after a flush, unless it was re-written while
    /// the flush was in flight (seq mismatch).
    pub fn mark_clean(&mut self, k: &K, seq: u64) {
        if let Some(e) = self.map.get_mut(k) {
            if e.seq == seq {
                e.dirty_since = None;
            }
        }
    }

    /// Keys of all dirty blocks, with when they became dirty.
    pub fn dirty_blocks(&self) -> Vec<(K, SimTime)> {
        let mut v: Vec<(K, SimTime)> = self
            .map
            .iter()
            .filter_map(|(k, e)| e.dirty_since.map(|t| (*k, t)))
            .collect();
        v.sort_by_key(|&(_, t)| t);
        v
    }

    /// Count of dirty blocks.
    pub fn dirty_count(&self) -> usize {
        self.map
            .values()
            .filter(|e| e.dirty_since.is_some())
            .count()
    }

    /// Drops every block matching `pred` without writing it anywhere
    /// (delayed-write cancellation / cache invalidation). Returns counts of
    /// clean and dirty blocks dropped.
    pub fn drop_matching(&mut self, mut pred: impl FnMut(&K) -> bool) -> DropCounts {
        let mut counts = DropCounts::default();
        self.map.retain(|k, e| {
            if pred(k) {
                if e.dirty_since.is_some() {
                    counts.dirty += 1;
                } else {
                    counts.clean += 1;
                }
                false
            } else {
                true
            }
        });
        counts
    }

    /// Drops all blocks.
    pub fn clear(&mut self) -> DropCounts {
        self.drop_matching(|_| true)
    }

    /// Keys matching a predicate (for per-file flush).
    pub fn keys_matching(&self, mut pred: impl FnMut(&K) -> bool) -> Vec<K> {
        self.map.keys().copied().filter(|k| pred(k)).collect()
    }
}

/// A contiguous run of dirty blocks of one file, planned for gathering
/// into a single large write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DirtyRun {
    /// First logical block index of the run.
    pub start: u64,
    /// Number of blocks in the run.
    pub len: usize,
}

/// One gathered write copied out of the cache: contiguous data starting
/// at block `start`, plus the per-block seqs to pass back to
/// [`BlockCache::mark_clean`] after the write lands.
#[derive(Debug)]
pub struct GatheredWrite {
    /// First logical block index covered by `data`.
    pub start: u64,
    /// Concatenated block contents.
    pub data: Vec<u8>,
    /// `(block index, seq at copy time)` for every block included.
    pub seqs: Vec<(u64, u64)>,
}

impl<F: Eq + Hash + Copy> BlockCache<(F, u64)> {
    /// Partitions `file`'s dirty blocks into contiguous runs of at most
    /// `max_blocks`, in block order. Runs break at holes (a missing or
    /// clean block) and after any *short* block (`len != block_size`) —
    /// a short block is only byte-contiguous with its successor once
    /// zero-filled, so it must end its gathered write.
    ///
    /// `keep` filters candidate blocks by `(index, dirty-since)`; pass
    /// `|_, _| true` to take every dirty block, or an age test for the
    /// update daemon's aged flush.
    pub fn dirty_runs_where(
        &self,
        file: F,
        max_blocks: usize,
        block_size: usize,
        mut keep: impl FnMut(u64, SimTime) -> bool,
    ) -> Vec<DirtyRun> {
        assert!(max_blocks > 0, "gather limit must be positive");
        let mut blocks: Vec<u64> = self
            .map
            .iter()
            .filter(|((f, _), e)| *f == file && e.dirty_since.is_some())
            .filter(|((_, b), e)| keep(*b, e.dirty_since.expect("filtered dirty")))
            .map(|((_, b), _)| *b)
            .collect();
        blocks.sort_unstable();
        let mut runs: Vec<DirtyRun> = Vec::new();
        let mut prev_short = false;
        for b in blocks {
            let short = self.map[&(file, b)].data.len() != block_size;
            let extend = match runs.last() {
                Some(run) => run.start + run.len as u64 == b && run.len < max_blocks && !prev_short,
                None => false,
            };
            if extend {
                runs.last_mut().expect("just matched").len += 1;
            } else {
                runs.push(DirtyRun { start: b, len: 1 });
            }
            prev_short = short;
        }
        runs
    }

    /// All dirty runs of `file` (no age filter); see
    /// [`dirty_runs_where`](Self::dirty_runs_where).
    pub fn dirty_runs(&self, file: F, max_blocks: usize, block_size: usize) -> Vec<DirtyRun> {
        self.dirty_runs_where(file, max_blocks, block_size, |_, _| true)
    }

    /// Copies a planned run out of the cache for writing. Blocks that
    /// went clean or vanished since planning (a raced flush, a remove)
    /// split the run; a block that became short mid-run ends its
    /// segment, exactly as in [`dirty_runs_where`](Self::dirty_runs_where).
    /// Normally returns one [`GatheredWrite`] covering the whole run.
    pub fn gather_run(&self, file: F, run: DirtyRun, block_size: usize) -> Vec<GatheredWrite> {
        let mut out: Vec<GatheredWrite> = Vec::new();
        let mut open = false;
        for b in run.start..run.start + run.len as u64 {
            let Some(fd) = self.flush_data(&(file, b)) else {
                open = false;
                continue;
            };
            let short = fd.data.len() != block_size;
            if open {
                let gw = out.last_mut().expect("open implies a segment");
                gw.data.extend_from_slice(&fd.data);
                gw.seqs.push((b, fd.seq));
            } else {
                out.push(GatheredWrite {
                    start: b,
                    data: fd.data,
                    seqs: vec![(b, fd.seq)],
                });
            }
            open = !short;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn get_counts_hits_and_misses() {
        let mut c: BlockCache<u32> = BlockCache::new(4);
        assert!(c.get(&1).is_none());
        c.insert_clean(1, vec![1]);
        assert_eq!(c.get(&1), Some(vec![1]));
        assert_eq!(c.hit_stats(), (1, 1));
    }

    #[test]
    fn lru_evicts_clean_first() {
        let mut c: BlockCache<u32> = BlockCache::new(2);
        c.insert_clean(1, vec![1]);
        assert!(c.write(2, vec![2], t(0)).is_none());
        // Cache full; 1 is LRU and clean → silently dropped.
        assert!(c.insert_clean(3, vec![3]).is_none());
        assert!(!c.contains(&1));
        assert!(c.contains(&2) && c.contains(&3));
    }

    #[test]
    fn all_dirty_cache_evicts_dirty_victim() {
        let mut c: BlockCache<u32> = BlockCache::new(2);
        c.write(1, vec![1], t(0));
        c.write(2, vec![2], t(1));
        let victim = c.write(3, vec![3], t(2)).expect("must evict dirty");
        assert_eq!(
            victim,
            DirtyVictim {
                key: 1,
                data: vec![1]
            }
        );
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn recency_protects_recently_used() {
        let mut c: BlockCache<u32> = BlockCache::new(2);
        c.insert_clean(1, vec![1]);
        c.insert_clean(2, vec![2]);
        c.get(&1); // 1 is now MRU
        c.insert_clean(3, vec![3]);
        assert!(c.contains(&1));
        assert!(!c.contains(&2));
    }

    #[test]
    fn write_marks_dirty_and_flush_cleans() {
        let mut c: BlockCache<u32> = BlockCache::new(4);
        c.write(1, vec![9], t(5));
        assert!(c.is_dirty(&1));
        let fd = c.flush_data(&1).expect("dirty");
        assert_eq!(fd.data, vec![9]);
        c.mark_clean(&1, fd.seq);
        assert!(!c.is_dirty(&1));
        assert!(c.flush_data(&1).is_none());
    }

    #[test]
    fn racing_write_keeps_block_dirty() {
        let mut c: BlockCache<u32> = BlockCache::new(4);
        c.write(1, vec![1], t(0));
        let fd = c.flush_data(&1).expect("dirty");
        // A write lands while the flush is "in flight".
        c.write(1, vec![2], t(1));
        c.mark_clean(&1, fd.seq);
        assert!(c.is_dirty(&1), "newer data must stay dirty");
        assert_eq!(c.get(&1), Some(vec![2]));
    }

    #[test]
    fn insert_clean_does_not_clobber_dirty() {
        let mut c: BlockCache<u32> = BlockCache::new(4);
        c.write(1, vec![7], t(0));
        c.insert_clean(1, vec![0]);
        assert!(c.is_dirty(&1));
        assert_eq!(c.get(&1), Some(vec![7]));
    }

    #[test]
    fn dirty_blocks_sorted_by_age() {
        let mut c: BlockCache<u32> = BlockCache::new(4);
        c.write(2, vec![2], t(20));
        c.write(1, vec![1], t(10));
        let d: Vec<u32> = c.dirty_blocks().into_iter().map(|(k, _)| k).collect();
        assert_eq!(d, vec![1, 2]);
        assert_eq!(c.dirty_count(), 2);
    }

    #[test]
    fn drop_matching_counts_cancelled_writes() {
        let mut c: BlockCache<(u32, u32)> = BlockCache::new(8);
        c.write((1, 0), vec![0], t(0));
        c.write((1, 1), vec![1], t(0));
        c.insert_clean((1, 2), vec![2]);
        c.write((2, 0), vec![0], t(0));
        let counts = c.drop_matching(|k| k.0 == 1);
        assert_eq!(counts, DropCounts { clean: 1, dirty: 2 });
        assert_eq!(c.len(), 1);
        assert!(c.contains(&(2, 0)));
    }

    #[test]
    fn rewriting_dirty_block_keeps_first_dirty_time() {
        let mut c: BlockCache<u32> = BlockCache::new(4);
        c.write(1, vec![1], t(10));
        c.write(1, vec![2], t(99));
        assert_eq!(c.dirty_blocks()[0].1, t(10));
    }

    #[test]
    fn peak_resident_tracks_high_water_not_current() {
        let mut c: BlockCache<u32> = BlockCache::new(4);
        assert_eq!(c.peak_resident(), 0, "idle cache has no footprint");
        c.insert_clean(1, vec![1]);
        c.insert_clean(2, vec![2]);
        c.drop_matching(|_| true);
        assert_eq!(c.len(), 0);
        assert_eq!(c.peak_resident(), 2);
        // Eviction keeps the peak at steady-state residency, not the
        // transient over-capacity instant.
        let mut c: BlockCache<u32> = BlockCache::new(2);
        for k in 0..5 {
            c.insert_clean(k, vec![k as u8]);
        }
        assert_eq!(c.peak_resident(), 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _: BlockCache<u32> = BlockCache::new(0);
    }

    // ---- dirty-run extraction (write gathering) ----------------------------

    const BS: usize = 4; // toy block size for gathering tests

    fn dirty_file_blocks(c: &mut BlockCache<(u32, u64)>, file: u32, blocks: &[u64]) {
        for &b in blocks {
            c.write((file, b), vec![b as u8; BS], t(b));
        }
    }

    #[test]
    fn runs_split_at_holes() {
        let mut c: BlockCache<(u32, u64)> = BlockCache::new(64);
        dirty_file_blocks(&mut c, 1, &[0, 1, 2, 4, 5, 9]);
        let runs = c.dirty_runs(1, 16, BS);
        assert_eq!(
            runs,
            vec![
                DirtyRun { start: 0, len: 3 },
                DirtyRun { start: 4, len: 2 },
                DirtyRun { start: 9, len: 1 },
            ]
        );
    }

    #[test]
    fn runs_respect_gather_limit() {
        let mut c: BlockCache<(u32, u64)> = BlockCache::new(64);
        dirty_file_blocks(&mut c, 1, &[0, 1, 2, 3, 4]);
        let runs = c.dirty_runs(1, 2, BS);
        assert_eq!(
            runs,
            vec![
                DirtyRun { start: 0, len: 2 },
                DirtyRun { start: 2, len: 2 },
                DirtyRun { start: 4, len: 1 },
            ]
        );
        // gather limit 1 degenerates to one run per block (paper mode).
        assert_eq!(c.dirty_runs(1, 1, BS).len(), 5);
    }

    #[test]
    fn short_block_ends_its_run() {
        let mut c: BlockCache<(u32, u64)> = BlockCache::new(64);
        c.write((1, 0), vec![0; BS], t(0));
        c.write((1, 1), vec![1; 2], t(1)); // short: EOF or hole prefix
        c.write((1, 2), vec![2; BS], t(2));
        let runs = c.dirty_runs(1, 16, BS);
        assert_eq!(
            runs,
            vec![DirtyRun { start: 0, len: 2 }, DirtyRun { start: 2, len: 1 }]
        );
        // The short block rides at the tail of its gathered write.
        let gws = c.gather_run(1, runs[0], BS);
        assert_eq!(gws.len(), 1);
        assert_eq!(gws[0].data.len(), BS + 2);
    }

    #[test]
    fn runs_exclude_clean_and_other_files() {
        let mut c: BlockCache<(u32, u64)> = BlockCache::new(64);
        dirty_file_blocks(&mut c, 1, &[0, 1, 2]);
        dirty_file_blocks(&mut c, 2, &[3]);
        let fd = c.flush_data(&(1, 1)).expect("dirty");
        c.mark_clean(&(1, 1), fd.seq);
        let runs = c.dirty_runs(1, 16, BS);
        assert_eq!(
            runs,
            vec![DirtyRun { start: 0, len: 1 }, DirtyRun { start: 2, len: 1 }]
        );
    }

    #[test]
    fn age_filter_limits_runs() {
        let mut c: BlockCache<(u32, u64)> = BlockCache::new(64);
        dirty_file_blocks(&mut c, 1, &[0, 1, 2]);
        let runs = c.dirty_runs_where(1, 16, BS, |_, since| since <= t(1));
        assert_eq!(runs, vec![DirtyRun { start: 0, len: 2 }]);
    }

    #[test]
    fn gather_copies_data_and_seqs() {
        let mut c: BlockCache<(u32, u64)> = BlockCache::new(64);
        dirty_file_blocks(&mut c, 1, &[3, 4, 5]);
        let runs = c.dirty_runs(1, 16, BS);
        let gws = c.gather_run(1, runs[0], BS);
        assert_eq!(gws.len(), 1);
        let gw = &gws[0];
        assert_eq!(gw.start, 3);
        assert_eq!(gw.data.len(), 3 * BS);
        assert_eq!(&gw.data[..BS], &[3u8; BS][..]);
        assert_eq!(&gw.data[2 * BS..], &[5u8; BS][..]);
        assert_eq!(
            gw.seqs.iter().map(|&(b, _)| b).collect::<Vec<_>>(),
            [3, 4, 5]
        );
        // The recorded seqs round-trip through mark_clean.
        for &(b, seq) in &gw.seqs {
            c.mark_clean(&(1, b), seq);
        }
        assert_eq!(c.dirty_count(), 0);
    }

    #[test]
    fn gather_splits_when_planned_block_vanished() {
        let mut c: BlockCache<(u32, u64)> = BlockCache::new(64);
        dirty_file_blocks(&mut c, 1, &[0, 1, 2]);
        let runs = c.dirty_runs(1, 16, BS);
        assert_eq!(runs, vec![DirtyRun { start: 0, len: 3 }]);
        // Block 1 is flushed (or dropped) between planning and gathering.
        let fd = c.flush_data(&(1, 1)).expect("dirty");
        c.mark_clean(&(1, 1), fd.seq);
        let gws = c.gather_run(1, runs[0], BS);
        assert_eq!(gws.len(), 2);
        assert_eq!((gws[0].start, gws[0].data.len()), (0, BS));
        assert_eq!((gws[1].start, gws[1].data.len()), (2, BS));
    }

    #[test]
    fn gather_seq_race_keeps_rewritten_block_dirty() {
        let mut c: BlockCache<(u32, u64)> = BlockCache::new(64);
        dirty_file_blocks(&mut c, 1, &[0, 1]);
        let runs = c.dirty_runs(1, 16, BS);
        let gws = c.gather_run(1, runs[0], BS);
        // A write races the gathered RPC: block 1 gets new data.
        c.write((1, 1), vec![9; BS], t(50));
        for &(b, seq) in &gws[0].seqs {
            c.mark_clean(&(1, b), seq);
        }
        assert!(!c.is_dirty(&(1, 0)));
        assert!(c.is_dirty(&(1, 1)), "raced block must stay dirty");
    }
}
