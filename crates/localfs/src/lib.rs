//! Simulated local Unix file system.
//!
//! This crate provides the storage substrate both sides of the experiment
//! stand on:
//!
//! * at the **server**, the NFS/SNFS service code translates RPC requests
//!   into [`LocalFs`] operations (with `sync` writes, per RFC 1094);
//! * at a **client**, a [`LocalFs`] instance models the local disk used by
//!   the paper's "local" and "/tmp local" configurations.
//!
//! Semantics reproduced from the paper's description of Ultrix/GFS:
//!
//! * block-granular buffer cache ([`BlockCache`]) with LRU replacement;
//! * **delayed writes**: data writes sit dirty in the cache until the
//!   periodic `update` daemon (default every 30 s), an fsync, eviction, or
//!   a sync write forces them out (paper §4.2.3);
//! * **write cancellation**: deleting a file drops its dirty blocks
//!   without ever writing them (the temp-file optimization both Sprite and
//!   SNFS exploit, §4.2.3/§5.4);
//! * synchronous structural writes for namespace operations — the reason
//!   "local" sort is not free even with infinite write-delay (§5.4);
//! * sequential block allocation, so bulk flushes enjoy the disk model's
//!   sequential-access discount.

mod cache;
mod fs;
mod store;

pub use cache::{BlockCache, DirtyRun, DirtyVictim, DropCounts, FlushData, GatheredWrite};
pub use fs::{FsParams, FsStats, LocalFs};
pub use store::{Store, META_BASE, NAME_MAX};

#[cfg(test)]
mod tests {
    use super::*;
    use spritely_blockdev::{Disk, DiskParams};
    use spritely_proto::{NfsStatus, BLOCK_SIZE};
    use spritely_sim::{Sim, SimDuration};

    fn quick_disk(sim: &Sim) -> Disk {
        Disk::new(
            sim,
            "d0",
            DiskParams {
                avg_position: SimDuration::from_millis(20),
                seq_position: SimDuration::from_millis(2),
                transfer_rate: 2_000_000,
            },
        )
    }

    fn fs(sim: &Sim) -> LocalFs {
        LocalFs::new(sim, 1, quick_disk(sim), FsParams::default())
    }

    fn fs_with(sim: &Sim, params: FsParams) -> LocalFs {
        LocalFs::new(sim, 1, quick_disk(sim), params)
    }

    #[test]
    fn write_read_roundtrip_through_cache() {
        let sim = Sim::new();
        let f = fs(&sim);
        let f2 = f.clone();
        sim.block_on(async move {
            let root = f2.root();
            let (fh, _) = f2.create(root, "a").await.unwrap();
            let data: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
            f2.write(fh, 0, &data, false).await.unwrap();
            let (got, eof, attr) = f2.read(fh, 0, 10_000).await.unwrap();
            assert_eq!(got, data);
            assert!(eof);
            assert_eq!(attr.size, 10_000);
        });
    }

    #[test]
    fn delayed_write_touches_no_disk_until_flush() {
        let sim = Sim::new();
        let f = fs(&sim);
        let f2 = f.clone();
        sim.block_on(async move {
            let root = f2.root();
            let (fh, _) = f2.create(root, "a").await.unwrap();
            let before = f2.disk().stats().writes;
            f2.write(fh, 0, &[1u8; 3 * BLOCK_SIZE], false)
                .await
                .unwrap();
            assert_eq!(f2.disk().stats().writes, before, "no data writes yet");
            assert_eq!(f2.dirty_blocks(), 3);
            f2.fsync(fh).await.unwrap();
            assert_eq!(f2.disk().stats().writes - before, 3);
            assert_eq!(f2.dirty_blocks(), 0);
        });
    }

    #[test]
    fn sync_write_reaches_disk_immediately() {
        let sim = Sim::new();
        let f = fs(&sim);
        let f2 = f.clone();
        sim.block_on(async move {
            let root = f2.root();
            let (fh, _) = f2.create(root, "a").await.unwrap();
            let before = f2.disk().stats().writes;
            f2.write(fh, 0, &[1u8; BLOCK_SIZE], true).await.unwrap();
            // One data block plus the stable inode update (RFC 1094).
            assert_eq!(f2.disk().stats().writes - before, 2);
            assert_eq!(f2.dirty_blocks(), 0);
        });
    }

    #[test]
    fn delete_cancels_delayed_writes() {
        let sim = Sim::new();
        let f = fs(&sim);
        let f2 = f.clone();
        sim.block_on(async move {
            let root = f2.root();
            let (fh, _) = f2.create(root, "tmp").await.unwrap();
            f2.write(fh, 0, &[9u8; 2 * BLOCK_SIZE], false)
                .await
                .unwrap();
            let disk_writes_before = f2.disk().stats().writes;
            f2.remove(root, "tmp").await.unwrap();
            assert_eq!(f2.stats().cancelled_blocks, 2);
            // Only the structural write hit the disk.
            assert_eq!(f2.disk().stats().writes - disk_writes_before, 1);
            assert_eq!(f2.dirty_blocks(), 0);
        });
    }

    #[test]
    fn single_flight_coalesces_concurrent_miss_reads() {
        // Two tasks missing on the same block at the same time: the
        // paper-era path reads the disk twice, single-flight reads once
        // and both callers still get the data.
        for (single_flight, want_reads) in [(false, 2u64), (true, 1u64)] {
            let sim = Sim::new();
            let f = fs_with(
                &sim,
                FsParams {
                    single_flight_reads: single_flight,
                    ..FsParams::default()
                },
            );
            let f0 = f.clone();
            let fh = sim.block_on(async move {
                let root = f0.root();
                let (fh, _) = f0.create(root, "a").await.unwrap();
                f0.write(fh, 0, &[7u8; BLOCK_SIZE], true).await.unwrap();
                fh
            });
            // Forget the cached copy; stable data survives on disk.
            f.crash();
            let before = f.disk().stats().reads;
            for _ in 0..2 {
                let f2 = f.clone();
                sim.spawn(async move {
                    let (got, _, _) = f2.read(fh, 0, BLOCK_SIZE as u32).await.unwrap();
                    assert_eq!(got, vec![7u8; BLOCK_SIZE]);
                });
            }
            sim.run_to_quiescence();
            assert_eq!(
                f.disk().stats().reads - before,
                want_reads,
                "single_flight = {single_flight}"
            );
        }
    }

    #[test]
    fn update_daemon_flushes_periodically() {
        let sim = Sim::new();
        let f = fs(&sim);
        f.spawn_update_daemon();
        let f2 = f.clone();
        let s = sim.clone();
        sim.block_on(async move {
            let root = f2.root();
            let (fh, _) = f2.create(root, "a").await.unwrap();
            f2.write(fh, 0, &[1u8; BLOCK_SIZE], false).await.unwrap();
            assert_eq!(f2.dirty_blocks(), 1);
            s.sleep(SimDuration::from_secs(31)).await;
            assert_eq!(f2.dirty_blocks(), 0, "update daemon flushed");
            assert_eq!(f2.stats().flushed_blocks, 1);
        });
    }

    #[test]
    fn disabled_update_daemon_never_flushes() {
        let sim = Sim::new();
        let f = fs_with(
            &sim,
            FsParams {
                update_interval: None,
                ..FsParams::default()
            },
        );
        f.spawn_update_daemon();
        let f2 = f.clone();
        let s = sim.clone();
        sim.block_on(async move {
            let root = f2.root();
            let (fh, _) = f2.create(root, "a").await.unwrap();
            f2.write(fh, 0, &[1u8; BLOCK_SIZE], false).await.unwrap();
            s.sleep(SimDuration::from_secs(120)).await;
            assert_eq!(f2.dirty_blocks(), 1, "infinite write-delay");
        });
    }

    #[test]
    fn partial_block_write_preserves_neighbors() {
        let sim = Sim::new();
        let f = fs(&sim);
        let f2 = f.clone();
        sim.block_on(async move {
            let root = f2.root();
            let (fh, _) = f2.create(root, "a").await.unwrap();
            f2.write(fh, 0, &[0xAAu8; BLOCK_SIZE], false).await.unwrap();
            f2.write(fh, 100, &[0xBBu8; 8], false).await.unwrap();
            let (got, _, _) = f2.read(fh, 0, BLOCK_SIZE as u32).await.unwrap();
            assert_eq!(&got[..100], &[0xAAu8; 100][..]);
            assert_eq!(&got[100..108], &[0xBBu8; 8][..]);
            assert_eq!(&got[108..], &[0xAAu8; BLOCK_SIZE - 108][..]);
        });
    }

    #[test]
    fn read_past_eof_returns_empty_eof() {
        let sim = Sim::new();
        let f = fs(&sim);
        let f2 = f.clone();
        sim.block_on(async move {
            let root = f2.root();
            let (fh, _) = f2.create(root, "a").await.unwrap();
            f2.write(fh, 0, b"hello", false).await.unwrap();
            let (got, eof, _) = f2.read(fh, 100, 10).await.unwrap();
            assert!(got.is_empty());
            assert!(eof);
            let (got, eof, _) = f2.read(fh, 3, 100).await.unwrap();
            assert_eq!(got, b"lo");
            assert!(eof);
        });
    }

    #[test]
    fn cache_hit_avoids_disk_read() {
        let sim = Sim::new();
        let f = fs(&sim);
        let f2 = f.clone();
        sim.block_on(async move {
            let root = f2.root();
            let (fh, _) = f2.create(root, "a").await.unwrap();
            f2.write(fh, 0, &[5u8; BLOCK_SIZE], true).await.unwrap();
            let reads0 = f2.disk().stats().reads;
            let _ = f2.read(fh, 0, 4096).await.unwrap();
            assert_eq!(f2.disk().stats().reads, reads0, "block still cached");
        });
    }

    #[test]
    fn eviction_flushes_dirty_victims() {
        let sim = Sim::new();
        let f = fs_with(
            &sim,
            FsParams {
                cache_blocks: 4,
                ..FsParams::default()
            },
        );
        let f2 = f.clone();
        sim.block_on(async move {
            let root = f2.root();
            let (fh, _) = f2.create(root, "a").await.unwrap();
            // 8 dirty blocks through a 4-block cache: at least 4 must have
            // been flushed by eviction.
            f2.write(fh, 0, &vec![1u8; 8 * BLOCK_SIZE], false)
                .await
                .unwrap();
            assert!(f2.stats().flushed_blocks >= 4);
            let (got, _, _) = f2.read(fh, 0, (8 * BLOCK_SIZE) as u32).await.unwrap();
            assert!(got.iter().all(|&b| b == 1), "data survives eviction");
        });
    }

    #[test]
    fn crash_loses_unflushed_data_keeps_stable() {
        let sim = Sim::new();
        let f = fs(&sim);
        let f2 = f.clone();
        sim.block_on(async move {
            let root = f2.root();
            let (fh, _) = f2.create(root, "a").await.unwrap();
            f2.write(fh, 0, &[1u8; BLOCK_SIZE], true).await.unwrap();
            f2.write(fh, BLOCK_SIZE as u64, &[2u8; BLOCK_SIZE], false)
                .await
                .unwrap();
            let lost = f2.crash();
            assert_eq!(lost, 1);
            let stable = f2.stable_contents(fh).unwrap();
            assert_eq!(&stable[..BLOCK_SIZE], &[1u8; BLOCK_SIZE][..]);
            // The delayed block never reached stable storage.
            assert_eq!(&stable[BLOCK_SIZE..], &[0u8; BLOCK_SIZE][..]);
        });
    }

    #[test]
    fn truncate_drops_cache_beyond_eof() {
        let sim = Sim::new();
        let f = fs(&sim);
        let f2 = f.clone();
        sim.block_on(async move {
            let root = f2.root();
            let (fh, _) = f2.create(root, "a").await.unwrap();
            f2.write(fh, 0, &[3u8; 3 * BLOCK_SIZE], false)
                .await
                .unwrap();
            let attr = f2.setattr(fh, Some(BLOCK_SIZE as u64)).await.unwrap();
            assert_eq!(attr.size, BLOCK_SIZE as u64);
            assert_eq!(f2.dirty_blocks(), 1);
        });
    }

    #[test]
    fn directory_data_ops_rejected() {
        let sim = Sim::new();
        let f = fs(&sim);
        let f2 = f.clone();
        sim.block_on(async move {
            let root = f2.root();
            assert_eq!(
                f2.write(root, 0, b"x", false).await.unwrap_err(),
                NfsStatus::IsDir
            );
            assert_eq!(f2.read(root, 0, 10).await.unwrap_err(), NfsStatus::IsDir);
        });
    }

    #[test]
    fn structural_writes_counted() {
        let sim = Sim::new();
        let f = fs(&sim);
        let f2 = f.clone();
        sim.block_on(async move {
            let root = f2.root();
            let (d, _) = f2.mkdir(root, "d").await.unwrap();
            let (_, _) = f2.create(d, "x").await.unwrap();
            f2.remove(d, "x").await.unwrap();
            f2.rmdir(root, "d").await.unwrap();
            assert_eq!(f2.stats().structural_writes, 4);
        });
    }

    #[test]
    fn rename_replacing_cancels_victim_writes() {
        let sim = Sim::new();
        let f = fs(&sim);
        let f2 = f.clone();
        sim.block_on(async move {
            let root = f2.root();
            let (_src, _) = f2.create(root, "src").await.unwrap();
            let (dst, _) = f2.create(root, "dst").await.unwrap();
            f2.write(dst, 0, &[7u8; BLOCK_SIZE], false).await.unwrap();
            f2.rename(root, "src", root, "dst").await.unwrap();
            assert_eq!(f2.stats().cancelled_blocks, 1);
        });
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let sim = Sim::new();
            let f = fs(&sim);
            let f2 = f.clone();
            sim.block_on(async move {
                let root = f2.root();
                let (fh, _) = f2.create(root, "a").await.unwrap();
                f2.write(fh, 0, &[1u8; 6 * BLOCK_SIZE], false)
                    .await
                    .unwrap();
                f2.fsync(fh).await.unwrap();
                let _ = f2.read(fh, 0, (6 * BLOCK_SIZE) as u32).await.unwrap();
            });
            sim.now().as_micros()
        };
        assert_eq!(run(), run());
    }
}
