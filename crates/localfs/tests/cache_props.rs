//! Property-based tests for the block cache: against a reference model,
//! no acknowledged data may ever be lost — every dirty block is either
//! resident, handed back as an eviction victim, or explicitly dropped.

use proptest::prelude::*;
use spritely_localfs::BlockCache;
use spritely_sim::SimTime;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    Write { key: u8, val: u8 },
    InsertClean { key: u8, val: u8 },
    Get { key: u8 },
    Flush { key: u8 },
    DropFile { file: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u8..24, any::<u8>()).prop_map(|(key, val)| Op::Write { key, val }),
        2 => (0u8..24, any::<u8>()).prop_map(|(key, val)| Op::InsertClean { key, val }),
        3 => (0u8..24).prop_map(|key| Op::Get { key }),
        2 => (0u8..24).prop_map(|key| Op::Flush { key }),
        1 => (0u8..3).prop_map(|file| Op::DropFile { file }),
    ]
}

/// Key space: (file, block) packed into a u8: file = key / 8, block = key % 8.
fn unpack(key: u8) -> (u8, u8) {
    (key / 8, key % 8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn cache_never_loses_acknowledged_data(
        capacity in 1usize..12,
        ops in proptest::collection::vec(op_strategy(), 1..200),
    ) {
        let mut cache: BlockCache<(u8, u8)> = BlockCache::new(capacity);
        // Model: the latest value per key (for read checks)...
        let mut latest: HashMap<(u8, u8), u8> = HashMap::new();
        // ...the dirty (unpersisted) values that must never vanish...
        let mut dirty: HashMap<(u8, u8), u8> = HashMap::new();
        // ...and values the owner persisted (eviction victims, flushes).
        let mut flushed: HashMap<(u8, u8), u8> = HashMap::new();
        let mut t = 0u64;
        for op in ops {
            t += 1;
            match op {
                Op::Write { key, val } => {
                    let k = unpack(key);
                    let victim = cache.write(k, vec![val], SimTime::from_micros(t));
                    latest.insert(k, val);
                    dirty.insert(k, val);
                    if let Some(v) = victim {
                        // Dirty eviction: the owner persists it.
                        flushed.insert(v.key, v.data[0]);
                        dirty.remove(&v.key);
                    }
                }
                Op::InsertClean { key, val } => {
                    let k = unpack(key);
                    let victim = cache.insert_clean(k, vec![val]);
                    // A clean insert over a dirty block preserves the
                    // dirty data, so only update the model if the block
                    // was not dirty.
                    if !dirty.contains_key(&k) {
                        latest.insert(k, val);
                    }
                    if let Some(v) = victim {
                        flushed.insert(v.key, v.data[0]);
                        dirty.remove(&v.key);
                    }
                }
                Op::Get { key } => {
                    let k = unpack(key);
                    if let Some(data) = cache.get(&k) {
                        prop_assert_eq!(
                            data[0], latest[&k],
                            "cache returned a value it was never given last"
                        );
                    }
                }
                Op::Flush { key } => {
                    let k = unpack(key);
                    if let Some(fd) = cache.flush_data(&k) {
                        flushed.insert(k, fd.data[0]);
                        cache.mark_clean(&k, fd.seq);
                        dirty.remove(&k);
                    }
                }
                Op::DropFile { file } => {
                    let counts = cache.drop_matching(|k| k.0 == file);
                    let _ = counts;
                    latest.retain(|k, _| k.0 != file);
                    dirty.retain(|k, _| k.0 != file);
                    flushed.retain(|k, _| k.0 != file);
                }
            }
            // Capacity is a hard bound.
            prop_assert!(cache.len() <= capacity, "over capacity");
            // Dirty data is sacred: resident with the right bytes, or
            // already persisted by the owner. (Clean blocks may be
            // silently dropped — they are recoverable from stable
            // storage.)
            for (&k, &v) in &dirty {
                if cache.contains(&k) {
                    prop_assert!(cache.is_dirty(&k), "dirty block demoted");
                    let fd = cache.flush_data(&k).expect("dirty has flush data");
                    prop_assert_eq!(fd.data[0], v);
                } else {
                    prop_assert_eq!(
                        flushed.get(&k), Some(&v),
                        "block {:?} vanished without being flushed", k
                    );
                }
            }
        }
    }

    #[test]
    fn dirty_count_matches_reality(
        ops in proptest::collection::vec(op_strategy(), 1..120),
    ) {
        let mut cache: BlockCache<(u8, u8)> = BlockCache::new(64);
        let mut t = 0u64;
        for op in ops {
            t += 1;
            match op {
                Op::Write { key, val } => {
                    cache.write(unpack(key), vec![val], SimTime::from_micros(t));
                }
                Op::InsertClean { key, val } => {
                    cache.insert_clean(unpack(key), vec![val]);
                }
                Op::Get { key } => {
                    cache.get(&unpack(key));
                }
                Op::Flush { key } => {
                    let k = unpack(key);
                    if let Some(fd) = cache.flush_data(&k) {
                        cache.mark_clean(&k, fd.seq);
                    }
                }
                Op::DropFile { file } => {
                    cache.drop_matching(|k| k.0 == file);
                }
            }
            prop_assert_eq!(cache.dirty_count(), cache.dirty_blocks().len());
            // dirty_blocks is sorted by dirty time.
            let times: Vec<_> = cache.dirty_blocks().iter().map(|&(_, t)| t).collect();
            let mut sorted = times.clone();
            sorted.sort();
            prop_assert_eq!(times, sorted);
        }
    }
}
