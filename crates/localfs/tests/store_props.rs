//! Property-based tests for the inode store against a reference
//! namespace model (a map of paths in a single directory).

use proptest::prelude::*;
use spritely_localfs::Store;
use spritely_proto::NfsStatus;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    Create(u8),
    Remove(u8),
    Mkdir(u8),
    Rmdir(u8),
    Rename(u8, u8),
    Lookup(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0u8..8).prop_map(Op::Create),
        2 => (0u8..8).prop_map(Op::Remove),
        2 => (0u8..8).prop_map(Op::Mkdir),
        1 => (0u8..8).prop_map(Op::Rmdir),
        2 => (0u8..8, 0u8..8).prop_map(|(a, b)| Op::Rename(a, b)),
        2 => (0u8..8).prop_map(Op::Lookup),
    ]
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Kind {
    File,
    Dir,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn namespace_agrees_with_model(
        ops in proptest::collection::vec(op_strategy(), 1..150)
    ) {
        let mut store = Store::new(1);
        let root = store.root();
        let mut model: BTreeMap<String, Kind> = BTreeMap::new();
        let mut clock = 0u64;
        for op in ops {
            clock += 1;
            match op {
                Op::Create(n) => {
                    let name = format!("n{n}");
                    let r = store.create(root, &name, clock);
                    match model.get(&name) {
                        None => {
                            prop_assert!(r.is_ok());
                            model.insert(name, Kind::File);
                        }
                        Some(_) => prop_assert_eq!(r.unwrap_err(), NfsStatus::Exist),
                    }
                }
                Op::Mkdir(n) => {
                    let name = format!("n{n}");
                    let r = store.mkdir(root, &name, clock);
                    match model.get(&name) {
                        None => {
                            prop_assert!(r.is_ok());
                            model.insert(name, Kind::Dir);
                        }
                        Some(_) => prop_assert_eq!(r.unwrap_err(), NfsStatus::Exist),
                    }
                }
                Op::Remove(n) => {
                    let name = format!("n{n}");
                    let r = store.remove(root, &name, clock);
                    match model.get(&name) {
                        Some(Kind::File) => {
                            prop_assert!(r.is_ok());
                            model.remove(&name);
                        }
                        Some(Kind::Dir) => prop_assert_eq!(r.unwrap_err(), NfsStatus::IsDir),
                        None => prop_assert_eq!(r.unwrap_err(), NfsStatus::NoEnt),
                    }
                }
                Op::Rmdir(n) => {
                    let name = format!("n{n}");
                    let r = store.rmdir(root, &name, clock);
                    match model.get(&name) {
                        Some(Kind::Dir) => {
                            // All model dirs are empty in this test.
                            prop_assert!(r.is_ok());
                            model.remove(&name);
                        }
                        Some(Kind::File) => prop_assert_eq!(r.unwrap_err(), NfsStatus::NotDir),
                        None => prop_assert_eq!(r.unwrap_err(), NfsStatus::NoEnt),
                    }
                }
                Op::Rename(a, b) => {
                    let from = format!("n{a}");
                    let to = format!("n{b}");
                    let r = store.rename(root, &from, root, &to, clock);
                    match (model.get(&from).copied(), model.get(&to).copied()) {
                        (None, _) => prop_assert_eq!(r.unwrap_err(), NfsStatus::NoEnt),
                        (Some(_), Some(Kind::Dir)) if a != b => {
                            prop_assert_eq!(r.unwrap_err(), NfsStatus::IsDir)
                        }
                        (Some(kind), _) => {
                            prop_assert!(r.is_ok());
                            if a != b {
                                model.remove(&from);
                                model.insert(to, kind);
                            }
                        }
                    }
                }
                Op::Lookup(n) => {
                    let name = format!("n{n}");
                    let r = store.lookup(root, &name);
                    match model.get(&name) {
                        Some(kind) => {
                            let (_, attr) = r.unwrap();
                            prop_assert_eq!(attr.is_dir(), *kind == Kind::Dir);
                        }
                        None => prop_assert_eq!(r.unwrap_err(), NfsStatus::NoEnt),
                    }
                }
            }
            // readdir always matches the model exactly.
            let listed: Vec<String> = store
                .readdir(root)
                .unwrap()
                .into_iter()
                .map(|e| e.name)
                .collect();
            let expect: Vec<String> = model.keys().cloned().collect();
            prop_assert_eq!(listed, expect);
            // Inode accounting: root + one per entry (dirs are empty).
            prop_assert_eq!(store.inode_count(), 1 + model.len());
        }
    }
}
