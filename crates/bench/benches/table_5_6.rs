//! Table 5-6: RPC calls for the sort benchmark (2816 KB input) with the
//! update daemon enabled vs. disabled.

use criterion::{criterion_group, criterion_main, Criterion};
use spritely_bench::{artifact, bench_ledger, config, slug_of};
use spritely_harness::{report, run_sort_experiment, Protocol};

fn bench(c: &mut Criterion) {
    let runs = vec![
        run_sort_experiment(Protocol::Nfs, 2816 * 1024, true),
        run_sort_experiment(Protocol::Nfs, 2816 * 1024, false),
        run_sort_experiment(Protocol::Snfs, 2816 * 1024, true),
        run_sort_experiment(Protocol::Snfs, 2816 * 1024, false),
    ];
    artifact(
        "Table 5-6: RPC calls for sort, update on/off (2816 KB)",
        &report::sort_rpc_table(&runs),
    );
    let ledger: Vec<(String, String)> = runs
        .iter()
        .map(|r| {
            (
                format!(
                    "sort_2816k_{}_{}_rpcs",
                    slug_of(r.protocol.label()),
                    if r.update_enabled { "upd" } else { "noupd" }
                ),
                r.ops.total().to_string(),
            )
        })
        .collect();
    bench_ledger("table_5_6", &ledger);
    let mut g = c.benchmark_group("table_5_6");
    g.bench_function("sort_snfs_2816k_update_off", |b| {
        b.iter(|| {
            run_sort_experiment(Protocol::Snfs, 2816 * 1024, false)
                .ops
                .total()
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench
}
criterion_main!(benches);
