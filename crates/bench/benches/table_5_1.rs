//! Table 5-1: Andrew benchmark elapsed time per phase, across
//! {local, NFS, SNFS} x {/tmp local, /tmp remote}.

use criterion::{criterion_group, criterion_main, Criterion};
use spritely_bench::{artifact, bench_ledger, config, slug_of};
use spritely_harness::{report, run_andrew, Protocol};

fn bench(c: &mut Criterion) {
    let runs = vec![
        run_andrew(Protocol::Local, false, 42),
        run_andrew(Protocol::Nfs, false, 42),
        run_andrew(Protocol::Nfs, true, 42),
        run_andrew(Protocol::Snfs, false, 42),
        run_andrew(Protocol::Snfs, true, 42),
    ];
    artifact(
        "Table 5-1: Andrew benchmark elapsed time (seconds)",
        &report::table_5_1(&runs),
    );
    let ledger: Vec<(String, String)> = runs
        .iter()
        .map(|r| {
            (
                format!("{}_total_s", slug_of(&r.label())),
                format!("{:.1}", r.times.total().as_secs_f64()),
            )
        })
        .collect();
    bench_ledger("table_5_1", &ledger);
    let mut g = c.benchmark_group("table_5_1");
    g.bench_function("andrew_snfs_tmp_remote", |b| {
        b.iter(|| run_andrew(Protocol::Snfs, true, 42).times.total())
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench
}
criterion_main!(benches);
