//! Server scaling (paper §2.3): makespan and server utilization as
//! identical diskless-workstation clients are added.

use criterion::{criterion_group, criterion_main, Criterion};
use spritely_bench::{artifact, bench_ledger, config, slug_of};
use spritely_harness::{run_scaling, Protocol};
use spritely_metrics::TextTable;

fn bench(c: &mut Criterion) {
    let mut t = TextTable::new(vec![
        "clients",
        "NFS makespan s",
        "SNFS makespan s",
        "NFS disk wr",
        "SNFS disk wr",
    ]);
    let mut ledger = Vec::new();
    for &n in &[1usize, 2, 4, 8] {
        let nfs = run_scaling(Protocol::Nfs, n, 42);
        let snfs = run_scaling(Protocol::Snfs, n, 42);
        t.row(vec![
            n.to_string(),
            format!("{:.0}", nfs.makespan.as_secs_f64()),
            format!("{:.0}", snfs.makespan.as_secs_f64()),
            nfs.disk_writes.to_string(),
            snfs.disk_writes.to_string(),
        ]);
        for r in [&nfs, &snfs] {
            ledger.push((
                format!("{}_{n}_makespan_s", slug_of(r.protocol.label())),
                format!("{:.1}", r.makespan.as_secs_f64()),
            ));
            ledger.push((
                format!("{}_{n}_disk_wr", slug_of(r.protocol.label())),
                r.disk_writes.to_string(),
            ));
        }
    }
    artifact("Server scaling (paper §2.3)", &t.render());
    bench_ledger("scaling", &ledger);
    let mut g = c.benchmark_group("scaling");
    for p in [Protocol::Nfs, Protocol::Snfs] {
        g.bench_function(format!("four_clients_{}", p.label()), |b| {
            b.iter(|| run_scaling(p, 4, 42).makespan)
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench
}
criterion_main!(benches);
