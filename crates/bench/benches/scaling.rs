//! Server scaling (paper §2.3): makespan and server utilization as
//! identical diskless-workstation clients are added — plus the sharded
//! namespace curve (DESIGN.md §18): aggregate throughput of the
//! shared-nothing workload at 128–512 clients over 1–8 server shards.

use criterion::{criterion_group, criterion_main, Criterion};
use spritely_bench::{artifact, bench_ledger, config, slug_of};
use spritely_harness::{run_scaling, run_scaling_shards, Protocol};
use spritely_metrics::TextTable;

fn bench(c: &mut Criterion) {
    let mut t = TextTable::new(vec![
        "clients",
        "NFS makespan s",
        "SNFS makespan s",
        "NFS disk wr",
        "SNFS disk wr",
    ]);
    let mut ledger = Vec::new();
    for &n in &[1usize, 2, 4, 8] {
        let nfs = run_scaling(Protocol::Nfs, n, 42);
        let snfs = run_scaling(Protocol::Snfs, n, 42);
        t.row(vec![
            n.to_string(),
            format!("{:.0}", nfs.makespan.as_secs_f64()),
            format!("{:.0}", snfs.makespan.as_secs_f64()),
            nfs.disk_writes.to_string(),
            snfs.disk_writes.to_string(),
        ]);
        for r in [&nfs, &snfs] {
            ledger.push((
                format!("{}_{n}_makespan_s", slug_of(r.protocol.label())),
                format!("{:.1}", r.makespan.as_secs_f64()),
            ));
            ledger.push((
                format!("{}_{n}_disk_wr", slug_of(r.protocol.label())),
                r.disk_writes.to_string(),
            ));
        }
    }
    artifact("Server scaling (paper §2.3)", &t.render());

    // Sharded namespace: the same seed, 1–8 shards, 128–512 clients on
    // the shared-nothing workload. Per-shard served-RPC counts ride
    // along so the ledger records the load split, not just the total.
    let mut st = TextTable::new(vec![
        "shards",
        "clients",
        "makespan s",
        "RPCs",
        "ops/s",
        "per-shard RPCs",
        "peak client KiB",
    ]);
    for &(shards, clients) in &[
        (1usize, 128usize),
        (2, 128),
        (4, 128),
        (8, 128),
        (2, 256),
        (4, 256),
        (4, 512),
        (8, 512),
    ] {
        let r = run_scaling_shards(shards, clients, 42);
        st.row(vec![
            shards.to_string(),
            clients.to_string(),
            format!("{:.1}", r.makespan.as_secs_f64()),
            r.total_rpcs.to_string(),
            format!("{:.0}", r.throughput),
            r.per_shard_rpcs
                .iter()
                .map(|n| n.to_string())
                .collect::<Vec<_>>()
                .join("/"),
            r.peak_client_kb.to_string(),
        ]);
        ledger.push((
            format!("shards_{shards}x{clients}_ops_per_s"),
            format!("{:.0}", r.throughput),
        ));
        ledger.push((
            format!("shards_{shards}x{clients}_makespan_s"),
            format!("{:.1}", r.makespan.as_secs_f64()),
        ));
        for (s, n) in r.per_shard_rpcs.iter().enumerate() {
            ledger.push((
                format!("shards_{shards}x{clients}_rpcs_s{s}"),
                n.to_string(),
            ));
        }
    }
    artifact("Sharded namespace scaling (DESIGN.md §18)", &st.render());
    bench_ledger("scaling", &ledger);
    let mut g = c.benchmark_group("scaling");
    for p in [Protocol::Nfs, Protocol::Snfs] {
        g.bench_function(format!("four_clients_{}", p.label()), |b| {
            b.iter(|| run_scaling(p, 4, 42).makespan)
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench
}
criterion_main!(benches);
