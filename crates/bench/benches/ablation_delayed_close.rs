//! Ablation: the §6.2 delayed-close extension. Header files are reopened
//! constantly during the Make phase; deferring the close RPC turns most
//! of those opens into local operations.

use criterion::{criterion_group, criterion_main, Criterion};
use spritely_bench::{artifact, bench_ledger, config, slug_of};
use spritely_harness::{run_andrew, Protocol};
use spritely_metrics::TextTable;
use spritely_proto::NfsProc;

fn bench(c: &mut Criterion) {
    let mut t = TextTable::new(vec!["variant", "total s", "open", "close", "total ops"]);
    let mut ledger = Vec::new();
    for p in [Protocol::Snfs, Protocol::SnfsDelayedClose] {
        let r = run_andrew(p, false, 42);
        t.row(vec![
            p.label().to_string(),
            format!("{:.0}", r.times.total().as_secs_f64()),
            r.ops_with_tail.get(NfsProc::Open).to_string(),
            r.ops_with_tail.get(NfsProc::Close).to_string(),
            r.ops_with_tail.total().to_string(),
        ]);
        ledger.push((
            format!("{}_total_s", slug_of(p.label())),
            format!("{:.1}", r.times.total().as_secs_f64()),
        ));
        ledger.push((
            format!("{}_rpcs", slug_of(p.label())),
            r.ops_with_tail.total().to_string(),
        ));
    }
    artifact("Ablation: delayed close (Andrew, /tmp local)", &t.render());
    bench_ledger("ablation_delayed_close", &ledger);
    let mut g = c.benchmark_group("ablation_delayed_close");
    g.bench_function("andrew_snfs_delayed_close", |b| {
        b.iter(|| {
            run_andrew(Protocol::SnfsDelayedClose, false, 42)
                .times
                .total()
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench
}
criterion_main!(benches);
