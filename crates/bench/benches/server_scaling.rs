//! Server scaling with the server I/O pipeline on (paper §2.3 extended):
//! the same SNFS clients against two server configurations — the
//! paper-faithful FIFO/uncached server (`ServerIoParams::paper`) and the
//! pipelined one (`ServerIoParams::pipelined`: C-LOOK arm scheduling,
//! larger block cache with single-flight misses, wider RPC admission).
//! The pipeline only reorders and absorbs server disk work; writes stay
//! synchronous, so consistency results are untouched.

use criterion::{criterion_group, criterion_main, Criterion};
use spritely_bench::{artifact, artifact_file, bench_ledger, config, slug_of};
use spritely_harness::{
    report, run_scaling_with, Protocol, ScalingRun, ServerIoParams, TestbedParams,
};
use spritely_metrics::TextTable;

fn params(io: ServerIoParams, trace: bool) -> TestbedParams {
    TestbedParams {
        protocol: Protocol::Snfs,
        tmp_remote: true,
        server_io: io,
        trace,
        ..TestbedParams::default()
    }
}

fn bench(c: &mut Criterion) {
    let mut t = TextTable::new(vec![
        "clients",
        "paper s",
        "pipelined s",
        "speedup",
        "paper util",
        "pipe util",
    ]);
    let mut runs: Vec<(String, ScalingRun)> = Vec::new();
    let mut speedup_at_8 = 0.0;
    for &n in &[4usize, 8] {
        let paper = run_scaling_with(params(ServerIoParams::paper(), false), n, 42);
        let pipe = run_scaling_with(params(ServerIoParams::pipelined(), false), n, 42);
        let speedup = paper.makespan.as_secs_f64() / pipe.makespan.as_secs_f64();
        if n == 8 {
            speedup_at_8 = speedup;
        }
        t.row(vec![
            n.to_string(),
            format!("{:.0}", paper.makespan.as_secs_f64()),
            format!("{:.0}", pipe.makespan.as_secs_f64()),
            format!("{speedup:.2}x"),
            format!("{:.2}", paper.server_util),
            format!("{:.2}", pipe.server_util),
        ]);
        runs.push((format!("paper/{n}"), paper));
        runs.push((format!("pipelined/{n}"), pipe));
    }
    let labeled: Vec<(&str, &ScalingRun)> =
        runs.iter().map(|(label, r)| (label.as_str(), r)).collect();
    let body = format!(
        "{}\nserver I/O pipeline observability:\n{}",
        t.render(),
        report::server_io_table(&labeled)
    );
    artifact(
        "Server scaling: FIFO paper server vs pipelined server I/O (SNFS, seed 42)",
        &body,
    );
    // Snapshot of the 8-client pipelined run for offline diffing.
    let pipe8 = &runs.last().expect("runs recorded").1;
    artifact_file("stats_server_scaling.json", &pipe8.stats.to_json());
    let mut ledger: Vec<(String, String)> = runs
        .iter()
        .map(|(label, r)| {
            (
                format!("{}_makespan_s", slug_of(label)),
                format!("{:.1}", r.makespan.as_secs_f64()),
            )
        })
        .collect();
    ledger.push(("gain_at_8_x".into(), format!("{speedup_at_8:.2}")));
    bench_ledger("server_scaling", &ledger);
    // Acceptance gate: the pipeline must buy ≥ 1.3x makespan at 8 clients.
    assert!(
        speedup_at_8 >= 1.3,
        "pipelined server I/O must cut 8-client makespan by >= 1.3x, got {speedup_at_8:.2}x"
    );
    // A traced pipelined run feeds the new disk-queue/reorder checker
    // rule with a real C-LOOK schedule; any bypass past the aging limit
    // or an unqueued completion is a violation.
    let traced = run_scaling_with(params(ServerIoParams::pipelined(), true), 4, 42);
    let trace = traced.trace.as_ref().expect("tracing was on");
    assert!(
        trace.ok(),
        "trace checker found violations:\n{}",
        report::trace_summary(trace)
    );
    let mut g = c.benchmark_group("server_scaling");
    g.bench_function("eight_clients_pipelined", |b| {
        b.iter(|| run_scaling_with(params(ServerIoParams::pipelined(), false), 8, 42).makespan)
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench
}
criterion_main!(benches);
