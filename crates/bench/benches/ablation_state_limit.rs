//! Ablation: the SNFS server state-table limit (§4.3.1). A tight limit
//! forces reclaim passes — callbacks that pull dirty data back early and
//! drop closed entries — while a liberal limit (1000 entries = 70 KB, as
//! the paper sized it) never reclaims on this workload.

use criterion::{criterion_group, criterion_main, Criterion};
use spritely_bench::{artifact, bench_ledger, config};
use spritely_harness::{Protocol, RemoteClient, SnfsServerParams, Testbed, TestbedParams};
use spritely_metrics::TextTable;
use spritely_sim::SimDuration;

/// Creates and closes 256 one-block files, then reports
/// `(table entries, reclaim passes, callbacks sent, write RPCs)`.
fn churn(table_limit: usize) -> (usize, u64, u64, u64) {
    let tb = Testbed::build(TestbedParams {
        protocol: Protocol::Snfs,
        snfs_server: SnfsServerParams {
            table_limit,
            reclaim_target: table_limit * 3 / 4,
            ..SnfsServerParams::default()
        },
        ..TestbedParams::default()
    });
    let server = tb.snfs_server.clone().expect("snfs server");
    let counter = tb.counter.clone();
    let c = match &tb.clients[0].remote {
        RemoteClient::Snfs(c) => c.clone(),
        _ => unreachable!(),
    };
    let root = tb.server_fs.root();
    let sim = tb.sim.clone();
    let h = sim.spawn({
        let sim = sim.clone();
        async move {
            for i in 0..256 {
                let (fh, _) = c.create(root, &format!("f{i}")).await.unwrap();
                c.open(fh, true).await.unwrap();
                c.write(fh, 0, &[1u8; 4096]).await.unwrap();
                c.close(fh, true).await.unwrap();
            }
            sim.sleep(SimDuration::from_secs(5)).await;
        }
    });
    sim.run_until(h);
    let stats = server.stats();
    (
        server.table_len(),
        stats.reclaim_passes,
        stats.callbacks_sent,
        counter.get(spritely_proto::NfsProc::Write),
    )
}

fn bench(c: &mut Criterion) {
    let mut t = TextTable::new(vec![
        "limit",
        "entries",
        "reclaims",
        "callbacks",
        "early write RPCs",
    ]);
    let mut ledger = Vec::new();
    for limit in [16usize, 64, 1000] {
        let (len, passes, callbacks, writes) = churn(limit);
        t.row(vec![
            limit.to_string(),
            len.to_string(),
            passes.to_string(),
            callbacks.to_string(),
            writes.to_string(),
        ]);
        ledger.push((format!("limit_{limit}_reclaims"), passes.to_string()));
        ledger.push((format!("limit_{limit}_callbacks"), callbacks.to_string()));
    }
    artifact(
        "Ablation: state-table limit under 256-file churn",
        &t.render(),
    );
    bench_ledger("ablation_state_limit", &ledger);
    let mut g = c.benchmark_group("ablation_state_limit");
    for limit in [16usize, 1000] {
        g.bench_function(format!("churn_limit_{limit}"), |b| {
            b.iter(|| churn(limit).0)
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench
}
criterion_main!(benches);
