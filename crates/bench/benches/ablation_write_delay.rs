//! Ablation: the write-delay policy. Traditional Unix flushes everything
//! every 30 s (age 0); Sprite waits for blocks to reach 30 s of age;
//! "infinite" never flushes. The temp-file write traffic of the sort
//! benchmark responds directly.

use criterion::{criterion_group, criterion_main, Criterion};
use spritely_bench::{artifact, bench_ledger, config, slug_of};
use spritely_harness::{run_sort_with, Protocol, TestbedParams};
use spritely_metrics::TextTable;
use spritely_proto::NfsProc;
use spritely_sim::SimDuration;

fn bench(c: &mut Criterion) {
    let variants: Vec<(&str, TestbedParams)> = vec![
        (
            "flush-all@30s (Unix)",
            TestbedParams {
                protocol: Protocol::Snfs,
                tmp_remote: true,
                snfs_write_delay: SimDuration::ZERO,
                ..TestbedParams::default()
            },
        ),
        (
            "age>=30s (Sprite)",
            TestbedParams {
                protocol: Protocol::Snfs,
                tmp_remote: true,
                snfs_write_delay: SimDuration::from_secs(30),
                ..TestbedParams::default()
            },
        ),
        (
            "infinite",
            TestbedParams {
                protocol: Protocol::Snfs,
                tmp_remote: true,
                update_enabled: false,
                ..TestbedParams::default()
            },
        ),
    ];
    let mut t = TextTable::new(vec!["policy", "elapsed s", "write RPCs"]);
    let mut ledger = Vec::new();
    for (name, params) in &variants {
        let r = run_sort_with(*params, 2816 * 1024);
        t.row(vec![
            name.to_string(),
            format!("{:.1}", r.elapsed.as_secs_f64()),
            r.ops.get(NfsProc::Write).to_string(),
        ]);
        ledger.push((
            format!("{}_write_rpcs", slug_of(name)),
            r.ops.get(NfsProc::Write).to_string(),
        ));
    }
    artifact(
        "Ablation: SNFS write-delay policy (sort 2816 KB)",
        &t.render(),
    );
    bench_ledger("ablation_write_delay", &ledger);
    let mut g = c.benchmark_group("ablation_write_delay");
    g.bench_function("sort_sprite_age_policy", |b| {
        b.iter(|| run_sort_with(variants[1].1, 1408 * 1024).elapsed)
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench
}
criterion_main!(benches);
