//! The §5.3 microbenchmark: write a large file, close it, then open and
//! read either the same file or a different one. On the vintage NFS
//! client both cost the same (the close purged the cache); on a fixed
//! client or SNFS the same-file reread is nearly free.

use criterion::{criterion_group, criterion_main, Criterion};
use spritely_bench::{artifact, bench_ledger, config, slug_of};
use spritely_harness::{report, run_reopen, Protocol};

fn bench(c: &mut Criterion) {
    let runs = vec![
        run_reopen(Protocol::Nfs, true, 1024 * 1024),
        run_reopen(Protocol::Nfs, false, 1024 * 1024),
        run_reopen(Protocol::NfsFixed, true, 1024 * 1024),
        run_reopen(Protocol::Snfs, true, 1024 * 1024),
    ];
    artifact(
        "Section 5.3 microbenchmark: write-close-reopen-read",
        &report::reopen_table(&runs),
    );
    let ledger: Vec<(String, String)> = runs
        .iter()
        .map(|r| {
            (
                format!(
                    "{}_{}_read_ms",
                    slug_of(r.protocol.label()),
                    if r.same_file { "same" } else { "other" }
                ),
                format!("{:.1}", r.result.read_time.as_secs_f64() * 1e3),
            )
        })
        .collect();
    bench_ledger("micro_reopen", &ledger);
    let mut g = c.benchmark_group("micro_reopen");
    for p in [Protocol::Nfs, Protocol::NfsFixed, Protocol::Snfs] {
        g.bench_function(format!("reopen_same_{}", p.label()), |b| {
            b.iter(|| run_reopen(p, true, 256 * 1024).result.read_time)
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench
}
criterion_main!(benches);
