//! Ablation: name caching (the paper's §7 suggestion — "any mechanism
//! that reduced the number of lookups would improve performance", plus
//! the hint that Sprite-style consistency could cover directory entries).
//!
//! Lookups are ~half of every RPC column in Table 5-2. SNFS's consistent
//! name cache (directory invalidate callbacks) removes most of them
//! without weakening the consistency guarantee; NFS's TTL cache removes
//! them too, but with a stale-name window.

use criterion::{criterion_group, criterion_main, Criterion};
use spritely_bench::{artifact, bench_ledger, config, slug_of};
use spritely_harness::{run_andrew_with, Protocol, TestbedParams};
use spritely_metrics::TextTable;
use spritely_proto::NfsProc;

fn bench(c: &mut Criterion) {
    let mut t = TextTable::new(vec!["variant", "total s", "lookups", "total ops"]);
    let mut ledger = Vec::new();
    for (label, protocol, name_cache) in [
        ("NFS", Protocol::Nfs, false),
        ("NFS + dnlc", Protocol::Nfs, true),
        ("SNFS", Protocol::Snfs, false),
        ("SNFS + name cache", Protocol::Snfs, true),
    ] {
        let r = run_andrew_with(
            TestbedParams {
                protocol,
                tmp_remote: true,
                name_cache,
                ..TestbedParams::default()
            },
            42,
        );
        t.row(vec![
            label.to_string(),
            format!("{:.0}", r.times.total().as_secs_f64()),
            r.ops_with_tail.get(NfsProc::Lookup).to_string(),
            r.ops_with_tail.total().to_string(),
        ]);
        ledger.push((
            format!("{}_lookups", slug_of(label)),
            r.ops_with_tail.get(NfsProc::Lookup).to_string(),
        ));
    }
    artifact("Ablation: name caching (Andrew, /tmp remote)", &t.render());
    bench_ledger("ablation_name_cache", &ledger);
    let mut g = c.benchmark_group("ablation_name_cache");
    g.bench_function("andrew_snfs_name_cache", |b| {
        b.iter(|| {
            run_andrew_with(
                TestbedParams {
                    protocol: Protocol::Snfs,
                    tmp_remote: true,
                    name_cache: true,
                    ..TestbedParams::default()
                },
                42,
            )
            .times
            .total()
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench
}
criterion_main!(benches);
