//! Table 5-5: sort benchmark with infinite write-delay (the /etc/update
//! daemons disabled): SNFS matches or beats local-disk time.

use criterion::{criterion_group, criterion_main, Criterion};
use spritely_bench::{artifact, bench_ledger, config, slug_of};
use spritely_harness::{report, run_sort_experiment, Protocol};

fn bench(c: &mut Criterion) {
    let mut runs = Vec::new();
    for &kb in &[281u64, 1408, 2816] {
        for p in [Protocol::Local, Protocol::Nfs, Protocol::Snfs] {
            runs.push(run_sort_experiment(p, kb * 1024, false));
        }
    }
    artifact(
        "Table 5-5: sort benchmark, infinite write-delay",
        &report::sort_table(&runs),
    );
    let ledger: Vec<(String, String)> = runs
        .iter()
        .map(|r| {
            (
                format!(
                    "sort_{}k_{}_s",
                    r.input_bytes / 1024,
                    slug_of(r.protocol.label())
                ),
                format!("{:.1}", r.elapsed.as_secs_f64()),
            )
        })
        .collect();
    bench_ledger("table_5_5", &ledger);
    let mut g = c.benchmark_group("table_5_5");
    g.bench_function("sort_snfs_1408k_no_update", |b| {
        b.iter(|| run_sort_experiment(Protocol::Snfs, 1408 * 1024, false).elapsed)
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench
}
criterion_main!(benches);
