//! Flush-latency microbench: simulated time to write a 64-block dirty
//! file back to the server, paper-mode serial flush vs the gathered +
//! pipelined write-behind pool (perf mode).

use criterion::{criterion_group, criterion_main, Criterion};
use spritely_bench::{artifact, artifact_file, bench_ledger, config};
use spritely_harness::{
    report, run_flush, run_flush_with, Protocol, TestbedParams, WriteBehindParams,
};

const BLOCKS: usize = 64;

fn bench(c: &mut Criterion) {
    let runs = vec![
        run_flush("paper (serial)", WriteBehindParams::default(), BLOCKS),
        run_flush("pipelined", WriteBehindParams::pipelined(), BLOCKS),
    ];
    let serial = runs[0].flush_time;
    let piped = runs[1].flush_time;
    let speedup = serial.as_secs_f64() / piped.as_secs_f64();
    artifact(
        "Flush latency: 64-block write-back, serial vs gathered+pipelined",
        &format!("{}\nspeedup: {speedup:.2}x", report::flush_table(&runs)),
    );
    // Traced pipelined flush: checker-validated, artifacts for Perfetto.
    let traced = run_flush_with(
        "pipelined+trace",
        TestbedParams {
            protocol: Protocol::Snfs,
            update_enabled: false,
            write_behind: WriteBehindParams::pipelined(),
            trace: true,
            ..TestbedParams::default()
        },
        BLOCKS,
    );
    let trace = traced.trace.as_ref().expect("tracing was on");
    artifact_file("trace_flush_pipelined.jsonl", &trace.to_jsonl());
    artifact_file("trace_flush_pipelined.chrome.json", &trace.to_chrome_json());
    artifact_file("stats_flush_pipelined.json", &traced.stats.to_json());
    assert!(
        trace.ok(),
        "trace checker found violations:\n{}",
        report::trace_summary(trace)
    );
    assert!(
        speedup >= 2.0,
        "write gathering + pipelining must at least halve flush latency, got {speedup:.2}x"
    );
    // Sim-time metrics only, under names the compare ignore-list does
    // not match ("serial_ms"/"speedup" are reserved for wall clock).
    bench_ledger(
        "flush_latency",
        &[
            (
                "flush_paper_ms".into(),
                format!("{:.2}", serial.as_secs_f64() * 1e3),
            ),
            (
                "flush_pipelined_ms".into(),
                format!("{:.2}", piped.as_secs_f64() * 1e3),
            ),
            ("flush_gain_x".into(), format!("{speedup:.2}")),
            ("paper_write_rpcs".into(), runs[0].write_rpcs.to_string()),
            (
                "pipelined_write_rpcs".into(),
                runs[1].write_rpcs.to_string(),
            ),
            (
                "pipelined_mean_batch".into(),
                format!("{:.2}", runs[1].mean_batch),
            ),
            (
                "pipelined_peak_inflight".into(),
                runs[1].peak_inflight.to_string(),
            ),
        ],
    );
    let mut g = c.benchmark_group("flush_latency");
    g.bench_function("flush_64blk_paper", |b| {
        b.iter(|| run_flush("paper", WriteBehindParams::default(), BLOCKS).flush_time)
    });
    g.bench_function("flush_64blk_pipelined", |b| {
        b.iter(|| run_flush("pipelined", WriteBehindParams::pipelined(), BLOCKS).flush_time)
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench
}
criterion_main!(benches);
