//! Figure 5-1: NFS server CPU utilization and RPC call rates over time
//! during the Andrew benchmark (/tmp remote).

use criterion::{criterion_group, criterion_main, Criterion};
use spritely_bench::{artifact, bench_ledger, config};
use spritely_harness::{report, run_andrew, Protocol};

fn bench(c: &mut Criterion) {
    let run = run_andrew(Protocol::Nfs, true, 42);
    artifact(
        "Figure 5-1: server utilization and call rates for NFS (CSV)",
        &report::figure_series(&run),
    );
    let total_calls: u64 = run.rate_buckets.iter().map(|b| b.total).sum();
    let peak_rate = run.rate_buckets.iter().map(|b| b.total).max().unwrap_or(0);
    let peak_util = run.util_samples.iter().map(|(_, u)| *u).fold(0.0, f64::max);
    bench_ledger(
        "figure_5_1",
        &[
            ("total_calls".into(), total_calls.to_string()),
            ("peak_bucket_calls".into(), peak_rate.to_string()),
            ("peak_util".into(), format!("{peak_util:.4}")),
        ],
    );
    let mut g = c.benchmark_group("figure_5_1");
    g.bench_function("series_render", |b| {
        b.iter(|| report::figure_series(&run).len())
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench
}
criterion_main!(benches);
