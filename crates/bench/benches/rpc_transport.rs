//! Transport pipeline (compound batching, piggybacked post-op
//! attributes, switched full-duplex wire) vs the paper transport.
//!
//! Two workloads:
//!
//! * the single-client Andrew benchmark on plain NFS, where piggybacked
//!   attributes elide the open-time `getattr` probes the paper's
//!   Table 5-2 complains about, and the Nagle batcher coalesces the
//!   write-behind bursts;
//! * an 8-client data-transfer scaling run on SNFS (every client reads
//!   a shared 1 MB server file with an 8-block read-ahead window), where
//!   the shared 10 Mbit bus serializes every message unless the switched
//!   wire splits it into per-host lanes and the read-ahead burst batches
//!   into compounds.
//!
//! Both sides run the pipelined server I/O and write-behind pool so the
//! transport itself is the bottleneck under comparison; only
//! `TransportParams` varies.

use criterion::{criterion_group, criterion_main, Criterion};
use spritely_bench::{artifact, artifact_file, bench_ledger, config};
use spritely_harness::{
    report, run_andrew_with, Protocol, RemoteClient, ServerIoParams, Testbed, TestbedParams,
    TransportParams, TransportSnapshot, WriteBehindParams,
};
use spritely_metrics::TextTable;
use spritely_sim::SimDuration;
use spritely_vfs::OpenFlags;

fn andrew_params(t: TransportParams) -> TestbedParams {
    TestbedParams {
        protocol: Protocol::Nfs,
        tmp_remote: true,
        server_io: ServerIoParams::pipelined(),
        transport: t,
        ..TestbedParams::default()
    }
}

fn scaling_params(t: TransportParams, trace: bool) -> TestbedParams {
    TestbedParams {
        protocol: Protocol::Snfs,
        server_io: ServerIoParams::pipelined(),
        write_behind: WriteBehindParams::pipelined(),
        read_ahead_window: 8,
        transport: t,
        trace,
        ..TestbedParams::default()
    }
}

/// One data-scaling run: client 0 seeds a shared 256-block file
/// (untimed, like the scaling runner's setup phase), every client
/// cold-boots, then all `n` clients read the whole file concurrently.
/// Returns the testbed plus the measured-phase makespan and wire
/// message count.
fn run_data_scaling(t: TransportParams, n: usize, trace: bool) -> (Testbed, f64, u64) {
    let tb = Testbed::build_with_clients(scaling_params(t, trace), n);
    {
        let p = tb.proc();
        let sim = tb.sim.clone();
        let h = tb.sim.spawn(async move {
            let fd = p
                .open("/remote/shared", OpenFlags::create_write())
                .await
                .unwrap();
            p.write(fd, &[3u8; 256 * 4096]).await.unwrap();
            p.close(fd).await.unwrap();
            // Drain the delayed write-back so the server holds the data.
            sim.sleep(SimDuration::from_secs(65)).await;
        });
        tb.sim.run_until(h);
        for host in &tb.clients {
            match host.remote.clone() {
                RemoteClient::None => {}
                RemoteClient::Nfs(c) => {
                    let h = tb.sim.spawn(async move {
                        c.cold_boot().await.expect("cold boot");
                    });
                    tb.sim.run_until(h);
                }
                RemoteClient::Snfs(c) => {
                    let h = tb.sim.spawn(async move {
                        c.cold_boot().await.expect("cold boot");
                    });
                    tb.sim.run_until(h);
                }
            }
        }
    }
    let t0 = tb.sim.now();
    let m0 = tb.net.messages();
    let mut handles = Vec::new();
    for host in &tb.clients {
        let p = host.proc(&tb.sim);
        handles.push(tb.sim.spawn(async move {
            let fd = p.open("/remote/shared", OpenFlags::read()).await.unwrap();
            while !p.read(fd, 4096).await.unwrap().is_empty() {}
            p.close(fd).await.unwrap();
        }));
    }
    for h in handles {
        tb.sim.run_until(h);
    }
    let makespan = tb.sim.now().duration_since(t0).as_secs_f64();
    let messages = tb.net.messages() - m0;
    (tb, makespan, messages)
}

fn reduction(paper: u64, pipe: u64) -> f64 {
    100.0 * (1.0 - pipe as f64 / paper as f64)
}

fn bench(c: &mut Criterion) {
    let a_paper = run_andrew_with(andrew_params(TransportParams::paper()), 42);
    let a_pipe = run_andrew_with(andrew_params(TransportParams::pipelined()), 42);
    let (s_paper_tb, s_paper_mk, s_paper_msgs) =
        run_data_scaling(TransportParams::paper(), 8, false);
    let (s_pipe_tb, s_pipe_mk, s_pipe_msgs) =
        run_data_scaling(TransportParams::pipelined(), 8, false);

    let at_paper: TransportSnapshot = a_paper.stats.transport;
    let at_pipe: TransportSnapshot = a_pipe.stats.transport;
    let st_paper = s_paper_tb.stats_snapshot().transport;
    let st_pipe = s_pipe_tb.stats_snapshot().transport;

    let andrew_speedup = a_paper.times.total().as_secs_f64() / a_pipe.times.total().as_secs_f64();
    let scaling_speedup = s_paper_mk / s_pipe_mk;

    let mut t = TextTable::new(vec![
        "Workload",
        "paper msgs",
        "pipe msgs",
        "reduction",
        "paper s",
        "pipe s",
        "speedup",
    ]);
    t.row(vec![
        "Andrew/NFS".to_string(),
        at_paper.net_messages.to_string(),
        at_pipe.net_messages.to_string(),
        format!(
            "{:.0}%",
            reduction(at_paper.net_messages, at_pipe.net_messages)
        ),
        format!("{:.0}", a_paper.times.total().as_secs_f64()),
        format!("{:.0}", a_pipe.times.total().as_secs_f64()),
        format!("{andrew_speedup:.2}x"),
    ]);
    t.row(vec![
        "8-client read/SNFS".to_string(),
        s_paper_msgs.to_string(),
        s_pipe_msgs.to_string(),
        format!("{:.0}%", reduction(s_paper_msgs, s_pipe_msgs)),
        format!("{s_paper_mk:.1}"),
        format!("{s_pipe_mk:.1}"),
        format!("{scaling_speedup:.2}x"),
    ]);
    let total_paper = at_paper.net_messages + s_paper_msgs;
    let total_pipe = at_pipe.net_messages + s_pipe_msgs;
    let total_reduction = reduction(total_paper, total_pipe);
    let body = format!(
        "{}\ntotal messages: {total_paper} -> {total_pipe} ({total_reduction:.0}% reduction)\n\
         transport observability (whole run, setup included):\n{}",
        t.render(),
        report::transport_table(&[
            ("andrew/paper", &at_paper),
            ("andrew/pipe", &at_pipe),
            ("scale8/paper", &st_paper),
            ("scale8/pipe", &st_pipe),
        ])
    );
    artifact(
        "RPC transport: paper vs pipelined transport (Andrew + 8-client scaling, seed 42)",
        &body,
    );
    artifact_file(
        "stats_rpc_transport.json",
        &s_pipe_tb.stats_snapshot().to_json(),
    );
    bench_ledger(
        "rpc_transport",
        &[
            (
                "andrew_paper_msgs".into(),
                at_paper.net_messages.to_string(),
            ),
            ("andrew_pipe_msgs".into(), at_pipe.net_messages.to_string()),
            ("scale8_paper_msgs".into(), s_paper_msgs.to_string()),
            ("scale8_pipe_msgs".into(), s_pipe_msgs.to_string()),
            (
                "total_reduction_pct".into(),
                format!("{total_reduction:.1}"),
            ),
            ("andrew_gain_x".into(), format!("{andrew_speedup:.2}")),
            ("scale8_gain_x".into(), format!("{scaling_speedup:.2}")),
        ],
    );

    // Acceptance gates (PR 4): >= 25% fewer RPC messages overall and
    // >= 1.2x makespan at 8 clients.
    assert!(
        total_reduction >= 25.0,
        "pipelined transport must cut total RPC messages by >= 25%, got {total_reduction:.1}%"
    );
    assert!(
        scaling_speedup >= 1.2,
        "pipelined transport must cut 8-client makespan by >= 1.2x, got {scaling_speedup:.2}x"
    );
    assert!(
        andrew_speedup >= 0.98,
        "the Nagle batcher must not slow the serial Andrew run, got {andrew_speedup:.2}x"
    );

    // A traced pipelined run feeds the batch-conservation and
    // at-most-once checker rules with a real batched schedule.
    let (traced_tb, _, _) = run_data_scaling(TransportParams::pipelined(), 2, true);
    let trace = traced_tb.finish_trace().expect("tracing was on");
    assert!(
        trace.ok(),
        "trace checker found violations:\n{}",
        report::trace_summary(&trace)
    );

    let mut g = c.benchmark_group("rpc_transport");
    g.bench_function("eight_clients_pipelined", |b| {
        b.iter(|| run_data_scaling(TransportParams::pipelined(), 8, false).1)
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench
}
criterion_main!(benches);
