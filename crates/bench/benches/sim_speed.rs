//! Simulator-core speed: how many scheduler events per second the DES
//! retires, measured on three workload shapes — a timer storm (timeout
//! guards abandoned every iteration: the stale-timer worst case), an
//! RPC echo stream (caller/endpoint/network machinery), and a full
//! Andrew run (the realistic mix) — plus the parallel experiment-matrix
//! runner against its serial twin.
//!
//! Unlike the table benches this one persists its numbers: it writes
//! `BENCH_simcore.json` at the workspace root, the perf-trajectory
//! point every future PR asserts against, and gates the current
//! executor at ≥2× the pre-PR timer-storm throughput recorded in
//! `baselines/sim_speed.txt`.

use std::rc::Rc;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use spritely_bench::{artifact, bench_ledger, config};
use spritely_harness::{render_matrix, run_andrew, run_matrix, Experiment, Protocol};
use spritely_metrics::{OpCounter, TextTable};
use spritely_proto::{ClientId, NfsReply, NfsRequest};
use spritely_rpcnet::{Caller, CallerParams, Endpoint, EndpointParams, NetParams, Network};
use spritely_sim::{Resource, Sim, SimDuration, SimStats};

/// `tasks` staggered tasks each run `iters` timeouts whose inner sleep
/// always wins — every iteration abandons a 10 s guard timer. On the
/// old executor those guards accumulated in the heap and fired
/// spuriously; the cancel-aware timer removes each one on drop.
fn timer_storm(tasks: u64, iters: u64) -> (f64, SimStats) {
    let sim = Sim::new();
    for i in 0..tasks {
        let s = sim.clone();
        sim.spawn(async move {
            s.sleep(SimDuration::from_micros(i)).await;
            for _ in 0..iters {
                let r = s
                    .timeout(
                        SimDuration::from_secs(10),
                        s.sleep(SimDuration::from_millis(1)),
                    )
                    .await;
                assert!(r.is_ok());
            }
        });
    }
    let t0 = Instant::now();
    sim.run_to_quiescence();
    (t0.elapsed().as_secs_f64(), sim.stats())
}

/// `clients` callers each push `calls` Null RPCs through the full
/// caller/wire/endpoint stack against an instant-reply handler.
fn rpc_echo(clients: u32, calls: u64) -> (f64, SimStats) {
    let sim = Sim::new();
    let server_cpu = Resource::new(&sim, "scpu", 2);
    let net = Network::new(
        &sim,
        "net",
        NetParams {
            latency: SimDuration::from_micros(500),
            bandwidth: 1_250_000,
            switched: false,
        },
    );
    let handler = Rc::new(move |_from: ClientId, _ctx: u64, _req: NfsRequest| {
        Box::pin(async move { NfsReply::Ok })
            as std::pin::Pin<Box<dyn std::future::Future<Output = NfsReply>>>
    });
    let ep = Endpoint::new(
        &sim,
        "svc",
        server_cpu,
        EndpointParams {
            threads: 4,
            cpu_per_call: SimDuration::from_micros(200),
            cpu_per_kb: SimDuration::ZERO,
            dup_retention: SimDuration::from_secs(600),
        },
        OpCounter::new(),
        handler,
    );
    for c in 0..clients {
        let client_cpu = Resource::new(&sim, "ccpu", 1);
        let caller = Caller::new(
            &sim,
            net.clone(),
            ep.clone(),
            ClientId(c + 1),
            client_cpu,
            CallerParams {
                timeout: SimDuration::from_secs(2),
                max_retries: 3,
                cpu_per_call: SimDuration::from_micros(100),
            },
        );
        sim.spawn(async move {
            for _ in 0..calls {
                caller.call(NfsRequest::Null).await.expect("echo call");
            }
        });
    }
    let t0 = Instant::now();
    sim.run_to_quiescence();
    (t0.elapsed().as_secs_f64(), sim.stats())
}

/// Pre-PR timer-storm throughput recorded in `baselines/sim_speed.txt`.
fn reference_units_per_sec() -> f64 {
    let path = format!(
        "{}/../../baselines/sim_speed.txt",
        env!("CARGO_MANIFEST_DIR")
    );
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    for line in text.lines() {
        if let Some(v) = line.strip_prefix("timer_storm_units_per_sec ") {
            return v.trim().parse().expect("numeric reference");
        }
    }
    panic!("no timer_storm_units_per_sec line in {path}");
}

struct BenchPoint {
    name: &'static str,
    wall_ms: f64,
    events_per_sec: f64,
    events_retired: u64,
    stats: SimStats,
}

impl BenchPoint {
    fn new(name: &'static str, wall: f64, stats: SimStats) -> Self {
        BenchPoint {
            name,
            wall_ms: wall * 1e3,
            events_per_sec: stats.events_retired() as f64 / wall,
            events_retired: stats.events_retired(),
            stats,
        }
    }

    fn json(&self) -> String {
        format!(
            "{{\"name\":\"{}\",\"wall_ms\":{:.1},\"events_per_sec\":{:.0},\
             \"events_retired\":{},\"polls\":{},\"stale_wakes\":{},\
             \"timer_cancels\":{},\"peak_ready_depth\":{},\
             \"peak_live_tasks\":{},\"peak_live_timers\":{}}}",
            self.name,
            self.wall_ms,
            self.events_per_sec,
            self.events_retired,
            self.stats.polls,
            self.stats.stale_wakes,
            self.stats.timer_cancels,
            self.stats.peak_ready_depth,
            self.stats.peak_live_tasks,
            self.stats.peak_live_timers
        )
    }
}

fn best_of<F: FnMut() -> (f64, SimStats)>(n: u32, mut f: F) -> (f64, SimStats) {
    let mut best = f();
    for _ in 1..n {
        let r = f();
        if r.0 < best.0 {
            best = r;
        }
    }
    best
}

fn bench(c: &mut Criterion) {
    const STORM_TASKS: u64 = 512;
    const STORM_ITERS: u64 = 1000;

    let (storm_wall, storm_stats) = best_of(3, || timer_storm(STORM_TASKS, STORM_ITERS));
    let storm = BenchPoint::new("timer_storm", storm_wall, storm_stats);
    // The gate metric is comparable across executors: completed timeouts
    // per second (the old and new executors retire different event
    // counts for the same program, so raw events/sec is not).
    let units_per_sec = (STORM_TASKS * STORM_ITERS) as f64 / storm_wall;

    let (echo_wall, echo_stats) = best_of(3, || rpc_echo(8, 2000));
    let echo = BenchPoint::new("rpc_echo", echo_wall, echo_stats);

    let t0 = Instant::now();
    let andrew = run_andrew(Protocol::Snfs, false, 42);
    let andrew_wall = t0.elapsed().as_secs_f64();
    let a = &andrew.stats.sim;
    let mix = BenchPoint::new(
        "andrew_mix",
        andrew_wall,
        spritely_sim::SimStats {
            polls: a.polls,
            tasks_spawned: a.tasks_spawned,
            stale_wakes: a.stale_wakes,
            timers_registered: a.timers_registered,
            timer_fires: a.timer_fires,
            timer_cancels: a.timer_cancels,
            clock_advances: a.clock_advances,
            peak_ready_depth: a.peak_ready_depth,
            peak_live_tasks: a.peak_live_tasks,
            peak_live_timers: a.peak_live_timers,
            tasks_completed: 0,
        },
    );

    // 4-way experiment matrix, serial vs 4 worker threads. Byte-identity
    // is asserted unconditionally (it is the determinism contract); the
    // wall-clock speedup gate only applies when the host actually has
    // the cores to show it.
    let jobs = [
        Experiment::Andrew {
            protocol: Protocol::Snfs,
            tmp_remote: false,
            seed: 1,
        },
        Experiment::Andrew {
            protocol: Protocol::Snfs,
            tmp_remote: true,
            seed: 2,
        },
        Experiment::Andrew {
            protocol: Protocol::Nfs,
            tmp_remote: false,
            seed: 3,
        },
        Experiment::Andrew {
            protocol: Protocol::Nfs,
            tmp_remote: true,
            seed: 4,
        },
    ];
    let t0 = Instant::now();
    let serial = run_matrix(&jobs, 1);
    let serial_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t0 = Instant::now();
    let parallel = run_matrix(&jobs, 4);
    let parallel_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        serial, parallel,
        "parallel matrix results must be byte-identical to serial"
    );
    let matrix_speedup = serial_ms / parallel_ms;
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let reference = reference_units_per_sec();
    let vs_pre_pr = units_per_sec / reference;

    let mut t = TextTable::new(vec![
        "bench",
        "wall ms",
        "events/s",
        "events",
        "stale wakes",
        "cancels",
        "peak timers",
    ]);
    for p in [&storm, &echo, &mix] {
        t.row(vec![
            p.name.to_string(),
            format!("{:.1}", p.wall_ms),
            format!("{:.0}", p.events_per_sec),
            p.events_retired.to_string(),
            p.stats.stale_wakes.to_string(),
            p.stats.timer_cancels.to_string(),
            p.stats.peak_live_timers.to_string(),
        ]);
    }
    let body = format!(
        "{t}\ntimer_storm: {units_per_sec:.0} timeouts/s = {vs_pre_pr:.2}x the pre-PR \
         executor ({reference:.0})\nmatrix (4 Andrew runs): serial {serial_ms:.0} ms, \
         4 threads {parallel_ms:.0} ms = {matrix_speedup:.2}x on {cores} core(s), \
         byte-identical\n",
        t = t.render(),
    );
    artifact("Sim-core speed: events/sec and matrix fan-out", &body);

    // The committed perf-trajectory point, plus a copy under artifacts/.
    bench_ledger(
        "simcore",
        &[
            (
                "benches".into(),
                format!("[{},{},{}]", storm.json(), echo.json(), mix.json()),
            ),
            (
                "matrix".into(),
                format!(
                    "{{\"jobs\":{},\"threads\":4,\"serial_ms\":{serial_ms:.1},\
                     \"parallel_ms\":{parallel_ms:.1},\"speedup\":{matrix_speedup:.2},\
                     \"cores\":{cores},\"byte_identical\":true}}",
                    jobs.len(),
                ),
            ),
            (
                "timer_storm_units_per_sec".into(),
                format!("{units_per_sec:.0}"),
            ),
            ("pre_pr_units_per_sec".into(), format!("{reference:.0}")),
            ("speedup_vs_pre_pr".into(), format!("{vs_pre_pr:.2}")),
        ],
    );
    println!("{}", render_matrix(&serial));

    // Gates.
    assert!(
        storm.stats.stale_wakes == 0,
        "timer storm produced stale wakes: the cancel-aware timer is not cancelling"
    );
    assert_eq!(
        storm.stats.timer_cancels,
        STORM_TASKS * STORM_ITERS,
        "every abandoned guard must be cancelled, not left to fire"
    );
    assert!(
        vs_pre_pr >= 2.0,
        "executor must retire >= 2x the pre-PR timeouts/s on the timer storm, \
         got {vs_pre_pr:.2}x ({units_per_sec:.0} vs {reference:.0})"
    );
    if cores >= 4 {
        assert!(
            matrix_speedup >= 3.0,
            "4-way matrix on {cores} cores must run >= 3x faster than serial, \
             got {matrix_speedup:.2}x"
        );
    } else {
        println!(
            "note: {cores} core(s) available; skipping the >=3x matrix wall-clock \
             gate (byte-identity still asserted)"
        );
    }

    let mut g = c.benchmark_group("sim_speed");
    g.bench_function("timer_storm_64x200", |b| b.iter(|| timer_storm(64, 200)));
    g.bench_function("rpc_echo_4x500", |b| b.iter(|| rpc_echo(4, 500)));
    g.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench
}
criterion_main!(benches);
