//! Open delegations (DESIGN.md §17) vs the callback-only protocol, on
//! the open-heavy mix the delegation fast path targets.
//!
//! Two workloads:
//!
//! * **open churn** — six clients each re-open/read/close a private
//!   working-set file 30 times, then all of them read a hot shared
//!   docroot three times over. Every one of those opens and closes is an
//!   RPC round trip under the paper protocol; a delegation holder serves
//!   them locally with zero RPCs.
//! * **Andrew** — the paper's general-purpose benchmark, as a
//!   non-regression guard: delegations must not slow down a workload
//!   that creates and writes files once instead of re-opening them.
//!
//! Both sides run the full PR-4 pipelined stack (server I/O pipeline,
//! write-behind pool, compound transport) so the open/close RPCs
//! themselves are the bottleneck under comparison; only
//! `DelegationParams` varies.

use criterion::{criterion_group, criterion_main, Criterion};
use spritely_bench::{artifact, artifact_file, bench_ledger, config};
use spritely_harness::{
    report, run_andrew_with, DelegationParams, Protocol, ServerIoParams, Testbed, TestbedParams,
    TransportParams, WriteBehindParams,
};
use spritely_metrics::TextTable;
use spritely_sim::SimDuration;
use spritely_vfs::OpenFlags;

const CLIENTS: usize = 6;
const CHURN_ROUNDS: usize = 30;
const DOC_FILES: usize = 8;
const DOC_ROUNDS: usize = 3;
const FILE_BLOCKS: usize = 4;

fn churn_params(d: DelegationParams, trace: bool) -> TestbedParams {
    TestbedParams {
        protocol: Protocol::Snfs,
        server_io: ServerIoParams::pipelined(),
        write_behind: WriteBehindParams::pipelined(),
        transport: TransportParams::pipelined(),
        name_cache: true,
        delegation: d,
        trace,
        ..TestbedParams::default()
    }
}

fn andrew_params(d: DelegationParams) -> TestbedParams {
    TestbedParams {
        protocol: Protocol::Snfs,
        tmp_remote: true,
        server_io: ServerIoParams::pipelined(),
        write_behind: WriteBehindParams::pipelined(),
        transport: TransportParams::pipelined(),
        delegation: d,
        ..TestbedParams::default()
    }
}

/// Seeds each client's private file and the shared docroot (untimed),
/// then runs the measured open-heavy mix concurrently on every client:
/// `CHURN_ROUNDS` open/read/close cycles on the private file, then
/// `DOC_ROUNDS` passes over the `DOC_FILES`-file docroot. Returns the
/// testbed plus the measured makespan and wire message count.
fn run_open_churn(d: DelegationParams, n: usize, trace: bool) -> (Testbed, f64, u64) {
    let tb = Testbed::build_with_clients(churn_params(d, trace), n);
    {
        let sim = tb.sim.clone();
        let mut handles = Vec::new();
        for (i, host) in tb.clients.iter().enumerate() {
            let p = host.proc(&tb.sim);
            handles.push(tb.sim.spawn(async move {
                let path = format!("/remote/src/own{i}");
                let fd = p.open(&path, OpenFlags::create_write()).await.unwrap();
                p.write(fd, &[5u8; FILE_BLOCKS * 4096]).await.unwrap();
                p.close(fd).await.unwrap();
                if i == 0 {
                    for f in 0..DOC_FILES {
                        let path = format!("/remote/src/doc{f}");
                        let fd = p.open(&path, OpenFlags::create_write()).await.unwrap();
                        p.write(fd, &[6u8; FILE_BLOCKS * 4096]).await.unwrap();
                        p.close(fd).await.unwrap();
                    }
                }
            }));
        }
        for h in handles {
            tb.sim.run_until(h);
        }
        // Drain the delayed write-backs so the measured phase is clean.
        let h = tb.sim.spawn(async move {
            sim.sleep(SimDuration::from_secs(65)).await;
        });
        tb.sim.run_until(h);
    }
    let t0 = tb.sim.now();
    let m0 = tb.net.messages();
    let mut handles = Vec::new();
    for (i, host) in tb.clients.iter().enumerate() {
        let p = host.proc(&tb.sim);
        handles.push(tb.sim.spawn(async move {
            let own = format!("/remote/src/own{i}");
            for _ in 0..CHURN_ROUNDS {
                let fd = p.open(&own, OpenFlags::read()).await.unwrap();
                while !p.read(fd, 4096).await.unwrap().is_empty() {}
                p.close(fd).await.unwrap();
            }
            for _ in 0..DOC_ROUNDS {
                for f in 0..DOC_FILES {
                    let path = format!("/remote/src/doc{f}");
                    let fd = p.open(&path, OpenFlags::read()).await.unwrap();
                    while !p.read(fd, 4096).await.unwrap().is_empty() {}
                    p.close(fd).await.unwrap();
                }
            }
        }));
    }
    for h in handles {
        tb.sim.run_until(h);
    }
    let makespan = tb.sim.now().duration_since(t0).as_secs_f64();
    let messages = tb.net.messages() - m0;
    (tb, makespan, messages)
}

fn reduction(paper: u64, pipe: u64) -> f64 {
    100.0 * (1.0 - pipe as f64 / paper as f64)
}

fn bench(c: &mut Criterion) {
    let (_off_tb, off_mk, off_msgs) = run_open_churn(DelegationParams::paper(), CLIENTS, false);
    let (on_tb, on_mk, on_msgs) = run_open_churn(DelegationParams::pipelined(), CLIENTS, false);
    let a_off = run_andrew_with(andrew_params(DelegationParams::paper()), 42);
    let a_on = run_andrew_with(andrew_params(DelegationParams::pipelined()), 42);

    let churn_reduction = reduction(off_msgs, on_msgs);
    let churn_speedup = off_mk / on_mk;
    let andrew_ratio = a_off.times.total().as_secs_f64() / a_on.times.total().as_secs_f64();
    let a_off_msgs = a_off.stats.transport.net_messages;
    let a_on_msgs = a_on.stats.transport.net_messages;
    let total_reduction = reduction(off_msgs + a_off_msgs, on_msgs + a_on_msgs);

    let snap = on_tb.stats_snapshot();
    let deleg = snap.delegation.expect("delegations were enabled");

    let mut t = TextTable::new(vec![
        "Workload",
        "no-deleg msgs",
        "deleg msgs",
        "reduction",
        "no-deleg s",
        "deleg s",
        "speedup",
    ]);
    t.row(vec![
        format!("{CLIENTS}-client open churn"),
        off_msgs.to_string(),
        on_msgs.to_string(),
        format!("{churn_reduction:.0}%"),
        format!("{off_mk:.2}"),
        format!("{on_mk:.2}"),
        format!("{churn_speedup:.2}x"),
    ]);
    t.row(vec![
        "Andrew/SNFS".to_string(),
        a_off_msgs.to_string(),
        a_on_msgs.to_string(),
        format!("{:.0}%", reduction(a_off_msgs, a_on_msgs)),
        format!("{:.0}", a_off.times.total().as_secs_f64()),
        format!("{:.0}", a_on.times.total().as_secs_f64()),
        format!("{andrew_ratio:.2}x"),
    ]);
    let body = format!(
        "{}\ntotal messages: {} -> {} ({total_reduction:.0}% reduction)\n\
         delegation accounting (churn, whole run):\n{}",
        t.render(),
        off_msgs + a_off_msgs,
        on_msgs + a_on_msgs,
        report::delegation_table(&[("churn/deleg", &deleg)])
    );
    artifact(
        "Open churn: open delegations vs callback-only protocol (6-client churn + Andrew, seed 42)",
        &body,
    );
    artifact_file("stats_open_churn.json", &snap.to_json());
    bench_ledger(
        "open_churn",
        &[
            ("churn_paper_msgs".into(), off_msgs.to_string()),
            ("churn_deleg_msgs".into(), on_msgs.to_string()),
            (
                "churn_reduction_pct".into(),
                format!("{churn_reduction:.1}"),
            ),
            ("churn_gain_x".into(), format!("{churn_speedup:.2}")),
            ("andrew_paper_msgs".into(), a_off_msgs.to_string()),
            ("andrew_deleg_msgs".into(), a_on_msgs.to_string()),
            ("andrew_gain_x".into(), format!("{andrew_ratio:.2}")),
            (
                "total_reduction_pct".into(),
                format!("{total_reduction:.1}"),
            ),
            (
                "deleg_grants".into(),
                (deleg.stats.grants_read + deleg.stats.grants_write).to_string(),
            ),
            (
                "deleg_local_opens".into(),
                deleg.stats.local_opens.to_string(),
            ),
            ("deleg_recalls".into(), deleg.stats.recalls.to_string()),
            ("deleg_revokes".into(), deleg.stats.revokes.to_string()),
        ],
    );

    // Acceptance gates (PR 8): >= 30% fewer wire messages on the
    // open-heavy mix, no Andrew regression, and a healthy delegation
    // economy (grants serving many local opens, nothing revoked).
    assert!(
        churn_reduction >= 30.0,
        "delegations must cut the open-churn messages by >= 30%, got {churn_reduction:.1}%"
    );
    assert!(
        andrew_ratio >= 0.98,
        "delegations must not slow the Andrew run, got {andrew_ratio:.2}x"
    );
    assert!(
        deleg.stats.local_opens > deleg.stats.grants_read + deleg.stats.grants_write,
        "each grant must amortize over several local opens: {:?}",
        deleg.stats
    );
    assert_eq!(deleg.stats.revokes, 0, "healthy run must not revoke");

    // A traced run feeds the delegation-safety checker a real
    // grant/recall/return schedule.
    let (traced_tb, _, _) = run_open_churn(DelegationParams::pipelined(), 2, true);
    let trace = traced_tb.finish_trace().expect("tracing was on");
    assert!(
        trace.ok(),
        "trace checker found violations:\n{}",
        report::trace_summary(&trace)
    );

    let mut g = c.benchmark_group("open_churn");
    g.bench_function("six_clients_delegated", |b| {
        b.iter(|| run_open_churn(DelegationParams::pipelined(), CLIENTS, false).1)
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench
}
criterion_main!(benches);
