//! Ablation: the NFS client's invalidate-on-close bug. The paper
//! attributes less than a quarter of the sort-benchmark difference to it
//! (§5.3); the rest is the synchronous write-back-on-close the protocol
//! requires.

use criterion::{criterion_group, criterion_main, Criterion};
use spritely_bench::{artifact, bench_ledger, config, slug_of};
use spritely_harness::{run_sort_experiment, Protocol};
use spritely_metrics::TextTable;
use spritely_proto::NfsProc;

fn bench(c: &mut Criterion) {
    let mut t = TextTable::new(vec!["client", "elapsed s", "reads", "writes"]);
    let mut ledger = Vec::new();
    for p in [Protocol::Nfs, Protocol::NfsFixed, Protocol::Snfs] {
        let r = run_sort_experiment(p, 1408 * 1024, true);
        t.row(vec![
            p.label().to_string(),
            format!("{:.1}", r.elapsed.as_secs_f64()),
            r.ops.get(NfsProc::Read).to_string(),
            r.ops.get(NfsProc::Write).to_string(),
        ]);
        ledger.push((
            format!("{}_sort_s", slug_of(p.label())),
            format!("{:.1}", r.elapsed.as_secs_f64()),
        ));
        ledger.push((
            format!("{}_reads", slug_of(p.label())),
            r.ops.get(NfsProc::Read).to_string(),
        ));
    }
    artifact(
        "Ablation: invalidate-on-close bug (sort 1408 KB)",
        &t.render(),
    );
    bench_ledger("ablation_close_bug", &ledger);
    let mut g = c.benchmark_group("ablation_close_bug");
    for p in [Protocol::Nfs, Protocol::NfsFixed] {
        g.bench_function(format!("sort_{}", p.label()), |b| {
            b.iter(|| run_sort_experiment(p, 1408 * 1024, true).elapsed)
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench
}
criterion_main!(benches);
