//! Chaos: the Andrew benchmark and a two-client write-sharing workload
//! under the seeded fault schedule (drops, duplicates, delays, reply
//! losses, one partition/heal cycle). The artifact records the fault
//! accounting and the convergence verdict; the bench times the faulted
//! Andrew run. Converging here means the duplicate-request cache,
//! retransmission ladder and callback retries absorbed every injected
//! fault without corrupting the server's stable contents.

use criterion::{criterion_group, criterion_main, Criterion};
use spritely_bench::{artifact, bench_ledger, config};
use spritely_harness::{chaos_andrew, chaos_delegation, chaos_write_sharing};

fn bench(c: &mut Criterion) {
    let andrew = chaos_andrew(7);
    let sharing = chaos_write_sharing(11);
    let delegation = chaos_delegation(13);
    let mut body = String::new();
    for v in [&andrew, &sharing, &delegation] {
        body.push_str(&v.report());
        body.push_str(&format!(
            "converged: {}\n\n",
            if v.converged() { "yes" } else { "NO" }
        ));
    }
    artifact("Chaos: fault injection convergence", &body);
    bench_ledger(
        "chaos",
        &[
            ("andrew_injected".into(), andrew.injected().to_string()),
            ("andrew_converged".into(), andrew.converged().to_string()),
            ("sharing_injected".into(), sharing.injected().to_string()),
            ("sharing_converged".into(), sharing.converged().to_string()),
            (
                "delegation_injected".into(),
                delegation.injected().to_string(),
            ),
            (
                "delegation_converged".into(),
                delegation.converged().to_string(),
            ),
        ],
    );
    assert!(andrew.converged(), "Andrew chaos run failed to converge");
    assert!(
        sharing.converged(),
        "write-sharing chaos run failed to converge"
    );
    assert!(
        delegation.converged(),
        "delegation chaos run failed to converge"
    );
    let mut g = c.benchmark_group("chaos");
    g.bench_function("andrew_chaos", |b| b.iter(|| chaos_andrew(7).converged()));
    g.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench
}
criterion_main!(benches);
