//! Ablation: the NFS attribute-probe interval (footnote 3: 3-150 s in
//! Ultrix). Shorter floors mean more getattr traffic and a smaller stale
//! window; longer floors trade consistency for RPCs.

use criterion::{criterion_group, criterion_main, Criterion};
use spritely_bench::{artifact, bench_ledger, config};
use spritely_harness::{run_andrew_with, Protocol, TestbedParams};
use spritely_metrics::TextTable;
use spritely_proto::NfsProc;
use spritely_sim::SimDuration;

fn bench(c: &mut Criterion) {
    let mut t = TextTable::new(vec!["probe floor", "total s", "getattr RPCs"]);
    let mut ledger = Vec::new();
    for secs in [1u64, 3, 10, 60] {
        let r = run_andrew_with(
            TestbedParams {
                protocol: Protocol::Nfs,
                tmp_remote: true,
                nfs_attr_min: SimDuration::from_secs(secs),
                ..TestbedParams::default()
            },
            42,
        );
        t.row(vec![
            format!("{secs} s"),
            format!("{:.0}", r.times.total().as_secs_f64()),
            r.ops_with_tail.get(NfsProc::GetAttr).to_string(),
        ]);
        ledger.push((
            format!("probe_{secs}s_getattrs"),
            r.ops_with_tail.get(NfsProc::GetAttr).to_string(),
        ));
    }
    artifact(
        "Ablation: NFS attribute-probe interval (Andrew)",
        &t.render(),
    );
    bench_ledger("ablation_probe_interval", &ledger);
    let mut g = c.benchmark_group("ablation_probe_interval");
    g.bench_function("andrew_nfs_probe_1s", |b| {
        b.iter(|| {
            run_andrew_with(
                TestbedParams {
                    protocol: Protocol::Nfs,
                    tmp_remote: true,
                    nfs_attr_min: SimDuration::from_secs(1),
                    ..TestbedParams::default()
                },
                42,
            )
            .times
            .total()
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench
}
criterion_main!(benches);
