//! Table 5-4: RPC calls for the sort benchmark.

use criterion::{criterion_group, criterion_main, Criterion};
use spritely_bench::{artifact, bench_ledger, config, slug_of};
use spritely_harness::{report, run_sort_experiment, Protocol};

fn bench(c: &mut Criterion) {
    let runs = vec![
        run_sort_experiment(Protocol::Nfs, 2816 * 1024, true),
        run_sort_experiment(Protocol::Snfs, 2816 * 1024, true),
    ];
    artifact(
        "Table 5-4: RPC calls for sort benchmark",
        &report::sort_rpc_table(&runs),
    );
    let ledger: Vec<(String, String)> = runs
        .iter()
        .map(|r| {
            (
                format!("sort_2816k_{}_rpcs", slug_of(r.protocol.label())),
                r.ops.total().to_string(),
            )
        })
        .collect();
    bench_ledger("table_5_4", &ledger);
    let mut g = c.benchmark_group("table_5_4");
    g.bench_function("sort_nfs_1408k_ops", |b| {
        b.iter(|| {
            run_sort_experiment(Protocol::Nfs, 1408 * 1024, true)
                .ops
                .total()
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench
}
criterion_main!(benches);
