//! Table 5-2: RPC operation counts for the Andrew benchmark.

use criterion::{criterion_group, criterion_main, Criterion};
use spritely_bench::{artifact, artifact_file, bench_ledger, config, slug_of};
use spritely_harness::{report, run_andrew, run_andrew_with, Protocol, TestbedParams};
use spritely_trace::profile_trace;

fn bench(c: &mut Criterion) {
    let runs = vec![
        run_andrew(Protocol::Nfs, false, 42),
        run_andrew(Protocol::Nfs, true, 42),
        run_andrew(Protocol::Snfs, false, 42),
        run_andrew(Protocol::Snfs, true, 42),
    ];
    artifact(
        "Table 5-2: RPC calls for the Andrew benchmark (steady state)",
        &report::table_5_2(&runs),
    );
    // One traced SNFS run: the checker validates every state-table
    // transition and callback, and the trace + stats snapshot land in
    // artifacts/ for Perfetto / offline diffing.
    let traced = run_andrew_with(
        TestbedParams {
            protocol: Protocol::Snfs,
            tmp_remote: true,
            trace: true,
            ..TestbedParams::default()
        },
        42,
    );
    let trace = traced.trace.as_ref().expect("tracing was on");
    artifact_file("trace_andrew_snfs.jsonl", &trace.to_jsonl());
    artifact_file("trace_andrew_snfs.chrome.json", &trace.to_chrome_json());
    artifact_file("stats_andrew_snfs.json", &traced.stats.to_json());
    artifact(
        "Trace summary: Andrew on SNFS (/tmp remote, seed 42)",
        &report::trace_summary(trace),
    );
    assert!(
        trace.ok(),
        "trace checker found violations:\n{}",
        report::trace_summary(trace)
    );
    // Phase attribution of the same trace: where each op's microseconds
    // went (see DESIGN.md §16).
    let profile = profile_trace(&trace.events);
    artifact_file("profile_andrew_snfs.json", &profile.to_json());
    artifact(
        "Latency profile: Andrew on SNFS (/tmp remote, seed 42)",
        &report::profile_table(&profile),
    );
    let mut ledger: Vec<(String, String)> = runs
        .iter()
        .map(|r| {
            (
                format!("{}_rpcs", slug_of(&r.label())),
                r.ops_with_tail.total().to_string(),
            )
        })
        .collect();
    ledger.push(("profile_spans".into(), profile.ops.len().to_string()));
    ledger.push(("profile_rpcs".into(), profile.total_rpcs.to_string()));
    ledger.push((
        "profile_attributed_pct".into(),
        format!("{:.3}", profile.attributed_fraction() * 100.0),
    ));
    bench_ledger("table_5_2", &ledger);
    let mut g = c.benchmark_group("table_5_2");
    g.bench_function("andrew_nfs_tmp_remote", |b| {
        b.iter(|| run_andrew(Protocol::Nfs, true, 42).ops_with_tail.total())
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench
}
criterion_main!(benches);
