//! Table 5-2: RPC operation counts for the Andrew benchmark.

use criterion::{criterion_group, criterion_main, Criterion};
use spritely_bench::{artifact, config};
use spritely_harness::{report, run_andrew, Protocol};

fn bench(c: &mut Criterion) {
    let runs = vec![
        run_andrew(Protocol::Nfs, false, 42),
        run_andrew(Protocol::Nfs, true, 42),
        run_andrew(Protocol::Snfs, false, 42),
        run_andrew(Protocol::Snfs, true, 42),
    ];
    artifact(
        "Table 5-2: RPC calls for the Andrew benchmark (steady state)",
        &report::table_5_2(&runs),
    );
    let mut g = c.benchmark_group("table_5_2");
    g.bench_function("andrew_nfs_tmp_remote", |b| {
        b.iter(|| run_andrew(Protocol::Nfs, true, 42).ops_with_tail.total())
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench
}
criterion_main!(benches);
