//! Shared plumbing for the per-table/per-figure Criterion benches.
//!
//! Each bench target in `benches/` regenerates one artifact of the
//! paper's evaluation — it prints the paper-style table (or figure
//! series) once, then benchmarks the run that produces it. Absolute
//! numbers are the simulator's; the *shape* (who wins, by what factor)
//! is what reproduces the paper. See EXPERIMENTS.md for the side-by-side
//! record.

use std::time::Duration;

/// Criterion settings tuned for whole-experiment benchmarks: each sample
/// is a complete simulated benchmark run, so keep the counts low.
pub fn config() -> criterion::Criterion {
    criterion::Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(10))
        .warm_up_time(Duration::from_millis(500))
}

/// Prints a titled artifact block.
pub fn artifact(title: &str, body: &str) {
    println!("\n================ {title} ================\n{body}");
}
