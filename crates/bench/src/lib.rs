//! Shared plumbing for the per-table/per-figure Criterion benches.
//!
//! Each bench target in `benches/` regenerates one artifact of the
//! paper's evaluation — it prints the paper-style table (or figure
//! series) once, then benchmarks the run that produces it. Absolute
//! numbers are the simulator's; the *shape* (who wins, by what factor)
//! is what reproduces the paper. See EXPERIMENTS.md for the side-by-side
//! record.

use std::fs;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Criterion settings tuned for whole-experiment benchmarks: each sample
/// is a complete simulated benchmark run, so keep the counts low.
pub fn config() -> criterion::Criterion {
    criterion::Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(10))
        .warm_up_time(Duration::from_millis(500))
}

/// `artifacts/` at the workspace root (gitignored; `baselines/` holds a
/// committed snapshot for diffing).
pub fn artifact_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../artifacts")
}

/// Filename slug: the part of the title before any ':', lowercased,
/// runs of non-alphanumerics collapsed to single '_'. Also the
/// convention for ledger keys built from run labels.
pub fn slug_of(title: &str) -> String {
    let head = title.split(':').next().unwrap_or(title);
    let mut out = String::new();
    for c in head.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c.to_ascii_lowercase());
        } else if !out.ends_with('_') {
            out.push('_');
        }
    }
    out.trim_matches('_').to_string()
}

/// Prints a titled artifact block and mirrors it to
/// `artifacts/<slug>.txt` so runs leave a diffable record.
pub fn artifact(title: &str, body: &str) {
    println!("\n================ {title} ================\n{body}");
    artifact_file(
        &format!("{}.txt", slug_of(title)),
        &format!("{title}\n{body}\n"),
    );
}

/// Writes an auxiliary artifact (trace JSONL, Chrome trace JSON, stats
/// snapshots) under `artifacts/`. Best-effort: a read-only checkout must
/// not fail the bench.
pub fn artifact_file(name: &str, contents: &str) {
    let dir = artifact_dir();
    if fs::create_dir_all(&dir).is_ok() {
        let _ = fs::write(dir.join(name), contents);
    }
}

/// Writes the perf-trajectory ledger `BENCH_<name>.json` at the
/// workspace root (committed, so `spritely compare` can diff it across
/// revisions) and mirrors it under `artifacts/`.
///
/// `fields` are `(key, raw JSON value)` pairs — values are spliced in
/// verbatim, so callers can pass numbers, strings (pre-quoted), arrays
/// or objects. Every bench target records its headline metrics here;
/// keep wall-clock-derived values under the conventional nondeterministic
/// key names (`wall_ms`, `events_per_sec`, `serial_ms`, `parallel_ms`,
/// `speedup`, `cores`) so the compare ignore-list skips them.
pub fn bench_ledger(name: &str, fields: &[(String, String)]) {
    let mut json = String::from("{\"schema\":1");
    for (k, v) in fields {
        json.push_str(&format!(",\"{k}\":{v}"));
    }
    json.push_str("}\n");
    let file = format!("BENCH_{name}.json");
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let _ = fs::write(root.join(&file), &json);
    artifact_file(&file, &json);
}

/// Quotes a string for use as a [`bench_ledger`] JSON value.
pub fn jstr(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::slug_of;

    #[test]
    fn jstr_escapes_quotes_and_backslashes() {
        assert_eq!(super::jstr(r#"a"b\c"#), r#""a\"b\\c""#);
    }

    #[test]
    fn slugs_are_stable() {
        assert_eq!(
            slug_of("Table 5-2: RPC calls for the Andrew benchmark"),
            "table_5_2"
        );
        assert_eq!(
            slug_of("Flush latency: 64-block write-back"),
            "flush_latency"
        );
        assert_eq!(slug_of("Figure 5-1: server utilization"), "figure_5_1");
    }
}
