//! Measurement infrastructure: per-procedure RPC counters, bucketed time
//! series, and text-table rendering for the paper's tables and figures.
//!
//! The paper reports three kinds of measurements:
//!
//! * elapsed times per benchmark phase (Tables 5-1, 5-3, 5-5),
//! * RPC calls per procedure (Tables 5-2, 5-4, 5-6),
//! * server CPU utilization and RPC call *rates* over time
//!   (Figures 5-1, 5-2).
//!
//! [`OpCounter`] and [`RateSeries`] provide the raw data for the last two;
//! [`LatencyStats`] adds per-procedure latency distributions (count, mean,
//! percentiles) a modern release would ship; [`TextTable`] renders
//! paper-style tables from any of them.

mod counter;
mod hist;
mod latency;
mod series;
mod table;

pub use counter::{OpCounter, OpCounts};
pub use hist::{Histogram, InflightGauge};
pub use latency::LatencyStats;
pub use series::{GaugeSeries, RateBucket, RateSeries};
pub use table::TextTable;
