//! Bucketed time series for the utilization/rate figures.

use std::cell::RefCell;
use std::rc::Rc;

use spritely_proto::NfsProc;
use spritely_sim::{SimDuration, SimTime};

/// One bucket of a [`RateSeries`]: call counts in `[start, start + width)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RateBucket {
    /// Calls of any procedure.
    pub total: u64,
    /// `read` calls.
    pub reads: u64,
    /// `write` calls.
    pub writes: u64,
}

/// Counts RPC events into fixed-width time buckets.
///
/// Figures 5-1 and 5-2 plot, against time: total call rate, read rate and
/// write rate. Record every call with [`record_at`](Self::record_at); read
/// the per-bucket counts (convertible to rates by dividing by the width)
/// with [`buckets`](Self::buckets).
#[derive(Clone)]
pub struct RateSeries {
    inner: Rc<RefCell<RateInner>>,
}

struct RateInner {
    width: SimDuration,
    buckets: Vec<RateBucket>,
}

impl RateSeries {
    /// Creates a series with the given bucket width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn new(width: SimDuration) -> Self {
        assert!(!width.is_zero(), "bucket width must be positive");
        RateSeries {
            inner: Rc::new(RefCell::new(RateInner {
                width,
                buckets: Vec::new(),
            })),
        }
    }

    /// Records one call of `p` at virtual time `at`.
    pub fn record_at(&self, at: SimTime, p: NfsProc) {
        let mut s = self.inner.borrow_mut();
        let i = (at.as_micros() / s.width.as_micros()) as usize;
        if s.buckets.len() <= i {
            s.buckets.resize(i + 1, RateBucket::default());
        }
        let b = &mut s.buckets[i];
        b.total += 1;
        match p {
            NfsProc::Read => b.reads += 1,
            NfsProc::Write => b.writes += 1,
            _ => {}
        }
    }

    /// Bucket width.
    pub fn width(&self) -> SimDuration {
        self.inner.borrow().width
    }

    /// Copies out the buckets recorded so far.
    pub fn buckets(&self) -> Vec<RateBucket> {
        self.inner.borrow().buckets.clone()
    }

    /// Per-bucket call rates in calls/second: `(total, reads, writes)`.
    pub fn rates_per_sec(&self) -> Vec<(f64, f64, f64)> {
        let s = self.inner.borrow();
        let w = s.width.as_secs_f64();
        s.buckets
            .iter()
            .map(|b| (b.total as f64 / w, b.reads as f64 / w, b.writes as f64 / w))
            .collect()
    }
}

/// A sampled gauge (e.g. server CPU utilization per bucket).
///
/// The harness runs a sampler task that pushes one value per bucket edge.
#[derive(Clone, Default)]
pub struct GaugeSeries {
    inner: Rc<RefCell<Vec<(SimTime, f64)>>>,
}

impl GaugeSeries {
    /// Creates an empty gauge series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a sample.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the previous sample (samples must be
    /// pushed in time order).
    pub fn push(&self, at: SimTime, value: f64) {
        let mut v = self.inner.borrow_mut();
        if let Some(&(last, _)) = v.last() {
            assert!(at >= last, "gauge samples out of order");
        }
        v.push((at, value));
    }

    /// Copies out all samples.
    pub fn samples(&self) -> Vec<(SimTime, f64)> {
        self.inner.borrow().clone()
    }

    /// Mean of all sample values (0 if empty).
    pub fn mean(&self) -> f64 {
        let v = self.inner.borrow();
        if v.is_empty() {
            0.0
        } else {
            v.iter().map(|&(_, x)| x).sum::<f64>() / v.len() as f64
        }
    }

    /// Maximum sample value (0 if empty).
    pub fn max(&self) -> f64 {
        self.inner
            .borrow()
            .iter()
            .map(|&(_, x)| x)
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_series_buckets_by_time() {
        let rs = RateSeries::new(SimDuration::from_secs(10));
        rs.record_at(SimTime::from_micros(0), NfsProc::Read);
        rs.record_at(SimTime::from_micros(9_999_999), NfsProc::Write);
        rs.record_at(SimTime::from_micros(10_000_000), NfsProc::Lookup);
        let b = rs.buckets();
        assert_eq!(b.len(), 2);
        assert_eq!(
            b[0],
            RateBucket {
                total: 2,
                reads: 1,
                writes: 1
            }
        );
        assert_eq!(
            b[1],
            RateBucket {
                total: 1,
                reads: 0,
                writes: 0
            }
        );
    }

    #[test]
    fn rates_divide_by_width() {
        let rs = RateSeries::new(SimDuration::from_secs(2));
        for _ in 0..10 {
            rs.record_at(SimTime::from_micros(1), NfsProc::Read);
        }
        let r = rs.rates_per_sec();
        assert_eq!(r.len(), 1);
        assert!((r[0].0 - 5.0).abs() < 1e-9);
        assert!((r[0].1 - 5.0).abs() < 1e-9);
    }

    #[test]
    fn gauge_mean_and_max() {
        let g = GaugeSeries::new();
        g.push(SimTime::from_micros(0), 0.2);
        g.push(SimTime::from_micros(10), 0.6);
        assert!((g.mean() - 0.4).abs() < 1e-9);
        assert!((g.max() - 0.6).abs() < 1e-9);
        assert_eq!(g.samples().len(), 2);
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn gauge_rejects_time_reversal() {
        let g = GaugeSeries::new();
        g.push(SimTime::from_micros(10), 0.1);
        g.push(SimTime::from_micros(5), 0.1);
    }

    #[test]
    fn empty_gauge_defaults() {
        let g = GaugeSeries::new();
        assert_eq!(g.mean(), 0.0);
        assert_eq!(g.max(), 0.0);
    }
}
