//! Per-procedure operation counters.

use std::cell::RefCell;
use std::ops::Sub;
use std::rc::Rc;

use spritely_proto::{NfsProc, ProcClass};

/// Index of a procedure in the fixed-size count arrays.
fn idx(p: NfsProc) -> usize {
    NfsProc::ALL
        .iter()
        .position(|&q| q == p)
        .expect("NfsProc::ALL covers every procedure")
}

/// An immutable snapshot of per-procedure counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpCounts {
    counts: [u64; NfsProc::ALL.len()],
}

impl OpCounts {
    /// Count for one procedure.
    pub fn get(&self, p: NfsProc) -> u64 {
        self.counts[idx(p)]
    }

    /// Total calls across all procedures.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Total calls in a paper classification group.
    pub fn class_total(&self, class: ProcClass) -> u64 {
        NfsProc::ALL
            .iter()
            .filter(|p| p.class() == class)
            .map(|&p| self.get(p))
            .sum()
    }

    /// Calls that move file data (`read` + `write`).
    pub fn data_transfers(&self) -> u64 {
        self.class_total(ProcClass::DataTransfer)
    }

    /// Calls that are neither `read` nor `write`.
    pub fn others(&self) -> u64 {
        self.total() - self.data_transfers()
    }

    /// Iterates `(proc, count)` over procedures with a nonzero count.
    pub fn nonzero(&self) -> impl Iterator<Item = (NfsProc, u64)> + '_ {
        NfsProc::ALL
            .iter()
            .map(|&p| (p, self.get(p)))
            .filter(|&(_, c)| c > 0)
    }
}

impl Sub for OpCounts {
    type Output = OpCounts;

    /// Per-procedure difference, for measuring a window between snapshots.
    ///
    /// # Panics
    ///
    /// Panics if any count in `rhs` exceeds the corresponding count in
    /// `self` (snapshots taken out of order).
    fn sub(self, rhs: OpCounts) -> OpCounts {
        let mut out = OpCounts::default();
        for i in 0..self.counts.len() {
            out.counts[i] = self.counts[i]
                .checked_sub(rhs.counts[i])
                .expect("OpCounts subtraction underflow: snapshots out of order");
        }
        out
    }
}

/// A shared, cloneable per-procedure counter.
///
/// One counter typically sits inside an RPC transport; every call it
/// carries is recorded here. Snapshots are cheap copies.
#[derive(Clone, Default)]
pub struct OpCounter {
    inner: Rc<RefCell<OpCounts>>,
}

impl OpCounter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one call of `p`.
    pub fn record(&self, p: NfsProc) {
        self.inner.borrow_mut().counts[idx(p)] += 1;
    }

    /// Current count for one procedure.
    pub fn get(&self, p: NfsProc) -> u64 {
        self.inner.borrow().get(p)
    }

    /// Total calls so far.
    pub fn total(&self) -> u64 {
        self.inner.borrow().total()
    }

    /// Copy of the current counts.
    pub fn snapshot(&self) -> OpCounts {
        *self.inner.borrow()
    }

    /// Resets all counts to zero.
    pub fn reset(&self) {
        *self.inner.borrow_mut() = OpCounts::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_totals() {
        let c = OpCounter::new();
        c.record(NfsProc::Read);
        c.record(NfsProc::Read);
        c.record(NfsProc::Write);
        c.record(NfsProc::Lookup);
        assert_eq!(c.get(NfsProc::Read), 2);
        assert_eq!(c.total(), 4);
        let snap = c.snapshot();
        assert_eq!(snap.data_transfers(), 3);
        assert_eq!(snap.others(), 1);
        assert_eq!(snap.class_total(ProcClass::Lookup), 1);
    }

    #[test]
    fn snapshot_diff_measures_window() {
        let c = OpCounter::new();
        c.record(NfsProc::Read);
        let before = c.snapshot();
        c.record(NfsProc::Read);
        c.record(NfsProc::Open);
        let delta = c.snapshot() - before;
        assert_eq!(delta.get(NfsProc::Read), 1);
        assert_eq!(delta.get(NfsProc::Open), 1);
        assert_eq!(delta.total(), 2);
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn reversed_diff_panics() {
        let c = OpCounter::new();
        let before = c.snapshot();
        c.record(NfsProc::Null);
        let _ = before - c.snapshot();
    }

    #[test]
    fn clones_share_state() {
        let a = OpCounter::new();
        let b = a.clone();
        b.record(NfsProc::GetAttr);
        assert_eq!(a.get(NfsProc::GetAttr), 1);
        a.reset();
        assert_eq!(b.total(), 0);
    }

    #[test]
    fn nonzero_iterates_only_used() {
        let c = OpCounter::new();
        c.record(NfsProc::Mkdir);
        let v: Vec<_> = c.snapshot().nonzero().collect();
        assert_eq!(v, vec![(NfsProc::Mkdir, 1)]);
    }
}
