//! Fixed-width text tables in the style of the paper.

use std::fmt::Write as _;

/// A simple fixed-width text-table builder.
///
/// # Examples
///
/// ```
/// use spritely_metrics::TextTable;
///
/// let mut t = TextTable::new(vec!["Phase", "NFS", "SNFS"]);
/// t.row(vec!["Copy".into(), "40".into(), "30".into()]);
/// let s = t.render();
/// assert!(s.contains("Copy"));
/// ```
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row has a different number of cells than the header.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width does not match header"
        );
        self.rows.push(cells);
    }

    /// Appends a row built from anything displayable.
    pub fn row_display<D: std::fmt::Display>(&mut self, cells: Vec<D>) {
        self.row(cells.into_iter().map(|c| c.to_string()).collect());
    }

    /// Renders the table. The first column is left-aligned, the rest are
    /// right-aligned (numeric convention).
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                if i == 0 {
                    let _ = write!(out, "{:<width$}", cell, width = widths[i]);
                } else {
                    let _ = write!(out, "{:>width$}", cell, width = widths[i]);
                }
            }
            out.push('\n');
        };
        write_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["name", "n"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer".into(), "100".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines equal width.
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
        // Numbers right-aligned.
        assert!(lines[2].ends_with("  1"));
        assert!(lines[3].ends_with("100"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn row_display_accepts_numbers() {
        let mut t = TextTable::new(vec!["x", "y"]);
        t.row_display(vec![1, 2]);
        assert!(t.render().contains('2'));
    }
}
