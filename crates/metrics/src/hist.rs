//! A small value histogram (e.g. gathered-write batch sizes in blocks).

use std::cell::RefCell;
use std::rc::Rc;

/// Records integer-valued observations and summarizes them.
///
/// Used by the client write-behind pool to record how many blocks each
/// gathered `write` RPC carried; the harness report prints the summary.
#[derive(Clone, Default)]
pub struct Histogram {
    inner: Rc<RefCell<HistInner>>,
}

#[derive(Default)]
struct HistInner {
    /// counts[v] = observations of value `v` (values above the last
    /// bucket land in it).
    counts: Vec<u64>,
    total: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    pub fn record(&self, value: u64) {
        let mut h = self.inner.borrow_mut();
        let i = value as usize;
        if h.counts.len() <= i {
            h.counts.resize(i + 1, 0);
        }
        h.counts[i] += 1;
        h.total += 1;
        h.sum += value;
        h.max = h.max.max(value);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.inner.borrow().total
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.inner.borrow().sum
    }

    /// Largest observed value (0 if empty).
    pub fn max(&self) -> u64 {
        self.inner.borrow().max
    }

    /// Mean observed value (0 if empty).
    pub fn mean(&self) -> f64 {
        let h = self.inner.borrow();
        if h.total == 0 {
            0.0
        } else {
            h.sum as f64 / h.total as f64
        }
    }

    /// `(count, sum)` in one borrow — a mark for windowed means: take one
    /// before and one after a measured interval, and
    /// [`mean_since`](Self::mean_since) gives the interval's mean.
    pub fn mark(&self) -> (u64, u64) {
        let h = self.inner.borrow();
        (h.total, h.sum)
    }

    /// Mean of the observations recorded since `mark` was taken (0 if
    /// none were).
    pub fn mean_since(&self, mark: (u64, u64)) -> f64 {
        let h = self.inner.borrow();
        let count = h.total - mark.0;
        if count == 0 {
            0.0
        } else {
            (h.sum - mark.1) as f64 / count as f64
        }
    }

    /// Observations of exactly `value`.
    pub fn count_of(&self, value: u64) -> u64 {
        self.inner
            .borrow()
            .counts
            .get(value as usize)
            .copied()
            .unwrap_or(0)
    }
}

/// A concurrency gauge: tracks a current level and its high-water mark.
///
/// The write-behind pool bumps it around each in-flight RPC; tests assert
/// on `peak()` to check pipelining (or its absence in paper mode).
#[derive(Clone, Default)]
pub struct InflightGauge {
    inner: Rc<RefCell<(u64, u64)>>, // (current, peak)
}

impl InflightGauge {
    /// Creates a gauge at level 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments the level, updating the peak.
    pub fn inc(&self) {
        let mut g = self.inner.borrow_mut();
        g.0 += 1;
        g.1 = g.1.max(g.0);
    }

    /// Decrements the level.
    ///
    /// # Panics
    ///
    /// Panics if the level is already 0 (an unmatched `dec`).
    pub fn dec(&self) {
        let mut g = self.inner.borrow_mut();
        assert!(g.0 > 0, "inflight gauge underflow");
        g.0 -= 1;
    }

    /// Current level.
    pub fn current(&self) -> u64 {
        self.inner.borrow().0
    }

    /// Highest level ever reached.
    pub fn peak(&self) -> u64 {
        self.inner.borrow().1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_summarizes() {
        let h = Histogram::new();
        h.record(1);
        h.record(1);
        h.record(8);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 10);
        assert_eq!(h.max(), 8);
        assert_eq!(h.count_of(1), 2);
        assert_eq!(h.count_of(8), 1);
        assert_eq!(h.count_of(3), 0);
        assert!((h.mean() - 10.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_defaults() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn mark_gives_windowed_means() {
        let h = Histogram::new();
        h.record(10);
        let m = h.mark();
        assert_eq!(h.mean_since(m), 0.0, "empty window");
        h.record(2);
        h.record(4);
        assert!((h.mean_since(m) - 3.0).abs() < 1e-9);
        assert!((h.mean() - 16.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn gauge_tracks_peak() {
        let g = InflightGauge::new();
        g.inc();
        g.inc();
        g.dec();
        g.inc();
        assert_eq!(g.current(), 2);
        assert_eq!(g.peak(), 2);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn gauge_rejects_unmatched_dec() {
        InflightGauge::new().dec();
    }
}
