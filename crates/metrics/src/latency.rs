//! Per-procedure RPC latency statistics.
//!
//! The paper reports elapsed times and call counts; a modern release of
//! the same system would also ship latency distributions. This recorder
//! keeps, per procedure: count, sum, max, and a power-of-two histogram
//! from which percentiles are estimated — O(1) per sample, fixed memory.

use std::cell::RefCell;
use std::rc::Rc;

use spritely_proto::NfsProc;
use spritely_sim::SimDuration;

/// Number of power-of-two latency buckets: bucket `i` holds samples in
/// `[2^i, 2^(i+1))` microseconds; the last bucket is open-ended.
const BUCKETS: usize = 32;

#[derive(Clone, Copy)]
struct ProcLatency {
    count: u64,
    sum_us: u128,
    max_us: u64,
    hist: [u64; BUCKETS],
}

impl Default for ProcLatency {
    fn default() -> Self {
        ProcLatency {
            count: 0,
            sum_us: 0,
            max_us: 0,
            hist: [0; BUCKETS],
        }
    }
}

fn bucket_of(us: u64) -> usize {
    (64 - us.max(1).leading_zeros() as usize - 1).min(BUCKETS - 1)
}

/// A shared, cloneable latency recorder keyed by procedure.
///
/// # Examples
///
/// ```
/// use spritely_metrics::LatencyStats;
/// use spritely_proto::NfsProc;
/// use spritely_sim::SimDuration;
///
/// let lat = LatencyStats::new();
/// lat.record(NfsProc::Write, SimDuration::from_millis(40));
/// lat.record(NfsProc::Write, SimDuration::from_millis(60));
/// assert_eq!(lat.mean(NfsProc::Write), SimDuration::from_millis(50));
/// assert!(lat.percentile(NfsProc::Write, 0.95) >= lat.mean(NfsProc::Write));
/// ```
#[derive(Clone, Default)]
pub struct LatencyStats {
    inner: Rc<RefCell<Vec<ProcLatency>>>,
}

impl LatencyStats {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        LatencyStats {
            inner: Rc::new(RefCell::new(vec![
                ProcLatency::default();
                NfsProc::ALL.len()
            ])),
        }
    }

    fn idx(p: NfsProc) -> usize {
        NfsProc::ALL
            .iter()
            .position(|&q| q == p)
            .expect("NfsProc::ALL covers every procedure")
    }

    /// Records one call's end-to-end latency.
    pub fn record(&self, p: NfsProc, d: SimDuration) {
        let us = d.as_micros();
        let mut v = self.inner.borrow_mut();
        let e = &mut v[Self::idx(p)];
        e.count += 1;
        e.sum_us += u128::from(us);
        e.max_us = e.max_us.max(us);
        e.hist[bucket_of(us)] += 1;
    }

    /// Number of samples for a procedure.
    pub fn count(&self, p: NfsProc) -> u64 {
        self.inner.borrow()[Self::idx(p)].count
    }

    /// Mean latency, or zero with no samples.
    pub fn mean(&self, p: NfsProc) -> SimDuration {
        let v = self.inner.borrow();
        let e = &v[Self::idx(p)];
        if e.count == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_micros((e.sum_us / u128::from(e.count)) as u64)
        }
    }

    /// Maximum observed latency.
    pub fn max(&self, p: NfsProc) -> SimDuration {
        SimDuration::from_micros(self.inner.borrow()[Self::idx(p)].max_us)
    }

    /// Estimated percentile (`q` in 0..=1) from the histogram: the upper
    /// edge of the bucket containing the q-th sample. Zero with no
    /// samples.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not within `0.0..=1.0`.
    pub fn percentile(&self, p: NfsProc, q: f64) -> SimDuration {
        assert!((0.0..=1.0).contains(&q), "percentile out of range: {q}");
        let v = self.inner.borrow();
        let e = &v[Self::idx(p)];
        if e.count == 0 {
            return SimDuration::ZERO;
        }
        let rank = ((e.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &n) in e.hist.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return SimDuration::from_micros(1 << (i + 1).min(63));
            }
        }
        SimDuration::from_micros(e.max_us)
    }

    /// Total samples across every procedure.
    pub fn total_count(&self) -> u64 {
        self.inner.borrow().iter().map(|e| e.count).sum()
    }

    /// Mean latency across every procedure's samples combined.
    pub fn total_mean(&self) -> SimDuration {
        let v = self.inner.borrow();
        let count: u64 = v.iter().map(|e| e.count).sum();
        if count == 0 {
            return SimDuration::ZERO;
        }
        let sum: u128 = v.iter().map(|e| e.sum_us).sum();
        SimDuration::from_micros((sum / u128::from(count)) as u64)
    }

    /// Estimated percentile over the merged histogram of every
    /// procedure: the upper edge of the bucket containing the q-th
    /// sample. Zero with no samples.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not within `0.0..=1.0`.
    pub fn total_percentile(&self, q: f64) -> SimDuration {
        assert!((0.0..=1.0).contains(&q), "percentile out of range: {q}");
        let v = self.inner.borrow();
        let count: u64 = v.iter().map(|e| e.count).sum();
        if count == 0 {
            return SimDuration::ZERO;
        }
        let rank = ((count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0;
        for i in 0..BUCKETS {
            seen += v.iter().map(|e| e.hist[i]).sum::<u64>();
            if seen >= rank {
                return SimDuration::from_micros(1 << (i + 1).min(63));
            }
        }
        let max = v.iter().map(|e| e.max_us).max().unwrap_or(0);
        SimDuration::from_micros(max)
    }

    /// Procedures with at least one sample, in display order.
    pub fn observed(&self) -> Vec<NfsProc> {
        let v = self.inner.borrow();
        NfsProc::ALL
            .iter()
            .copied()
            .filter(|&p| v[Self::idx(p)].count > 0)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> SimDuration {
        SimDuration::from_micros(n)
    }

    #[test]
    fn mean_max_count() {
        let l = LatencyStats::new();
        l.record(NfsProc::Read, us(100));
        l.record(NfsProc::Read, us(300));
        assert_eq!(l.count(NfsProc::Read), 2);
        assert_eq!(l.mean(NfsProc::Read), us(200));
        assert_eq!(l.max(NfsProc::Read), us(300));
        assert_eq!(l.count(NfsProc::Write), 0);
        assert_eq!(l.mean(NfsProc::Write), SimDuration::ZERO);
    }

    #[test]
    fn percentile_brackets_the_samples() {
        let l = LatencyStats::new();
        for i in 1..=100u64 {
            l.record(NfsProc::Write, us(i * 10)); // 10..1000 us
        }
        let p50 = l.percentile(NfsProc::Write, 0.5);
        let p99 = l.percentile(NfsProc::Write, 0.99);
        // Bucketed estimates: upper power-of-two edges.
        assert!(p50 >= us(256) && p50 <= us(1024), "p50 = {p50}");
        assert!(p99 >= p50, "p99 = {p99} >= p50 = {p50}");
        assert!(p99 <= us(2048));
    }

    #[test]
    fn percentile_extremes() {
        let l = LatencyStats::new();
        l.record(NfsProc::Open, us(5));
        assert!(l.percentile(NfsProc::Open, 0.0) >= us(5));
        assert!(l.percentile(NfsProc::Open, 1.0) >= us(5));
        assert_eq!(l.percentile(NfsProc::Close, 0.5), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_percentile_panics() {
        LatencyStats::new().percentile(NfsProc::Read, 1.5);
    }

    #[test]
    fn totals_merge_across_procedures() {
        let l = LatencyStats::new();
        l.record(NfsProc::Read, us(100));
        l.record(NfsProc::Write, us(300));
        assert_eq!(l.total_count(), 2);
        assert_eq!(l.total_mean(), us(200));
        assert!(l.total_percentile(0.99) >= us(300));
        assert!(l.total_percentile(0.01) >= us(100));
        assert_eq!(LatencyStats::new().total_percentile(0.5), SimDuration::ZERO);
    }

    #[test]
    fn observed_lists_only_sampled() {
        let l = LatencyStats::new();
        l.record(NfsProc::Lookup, us(1));
        l.record(NfsProc::Callback, us(1));
        assert_eq!(l.observed(), vec![NfsProc::Lookup, NfsProc::Callback]);
    }

    #[test]
    fn clones_share_state() {
        let a = LatencyStats::new();
        let b = a.clone();
        b.record(NfsProc::Null, us(7));
        assert_eq!(a.count(NfsProc::Null), 1);
    }

    #[test]
    fn bucket_of_is_monotone() {
        let mut last = 0;
        for us_val in [1u64, 2, 3, 7, 8, 100, 1 << 20, u64::MAX] {
            let b = bucket_of(us_val);
            assert!(b >= last);
            last = b;
        }
    }
}
