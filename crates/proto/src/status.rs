//! Status codes and the protocol `Result` alias.

use std::fmt;

/// Error statuses carried in NFS/SNFS replies.
///
/// A subset of the RFC 1094 `stat` values, plus [`Inconsistent`], which an
/// SNFS server reports when a file's last writer crashed before writing its
/// dirty blocks back (paper §3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NfsStatus {
    /// No such file or directory.
    NoEnt,
    /// Permission denied.
    Access,
    /// File exists.
    Exist,
    /// Not a directory.
    NotDir,
    /// Is a directory.
    IsDir,
    /// Directory not empty.
    NotEmpty,
    /// No space left on device.
    NoSpc,
    /// Stale file handle (file deleted or inode recycled).
    Stale,
    /// I/O error.
    Io,
    /// Invalid argument / malformed request.
    Inval,
    /// SNFS only: the file may be inconsistent because a client holding
    /// dirty blocks is unreachable.
    Inconsistent,
    /// SNFS recovery: the server is rebuilding its state table after a
    /// reboot and only accepts `recover`/`keepalive` calls right now
    /// (paper §2.4; clients retry after a short delay).
    Grace,
    /// Sharded namespace: the name is momentarily locked by a cross-shard
    /// coordination transaction (DESIGN.md §18); callers back off and
    /// retry rather than tying up a service thread.
    Busy,
    /// Sharded namespace: the operation would move an entry between two
    /// shards in a way the coordination path does not support (deep
    /// cross-shard rename/link, or any cross-shard move under plain NFS).
    XDev,
}

impl fmt::Display for NfsStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NfsStatus::NoEnt => "NFSERR_NOENT",
            NfsStatus::Access => "NFSERR_ACCES",
            NfsStatus::Exist => "NFSERR_EXIST",
            NfsStatus::NotDir => "NFSERR_NOTDIR",
            NfsStatus::IsDir => "NFSERR_ISDIR",
            NfsStatus::NotEmpty => "NFSERR_NOTEMPTY",
            NfsStatus::NoSpc => "NFSERR_NOSPC",
            NfsStatus::Stale => "NFSERR_STALE",
            NfsStatus::Io => "NFSERR_IO",
            NfsStatus::Inval => "NFSERR_INVAL",
            NfsStatus::Inconsistent => "SNFSERR_INCONSISTENT",
            NfsStatus::Grace => "SNFSERR_GRACE",
            NfsStatus::Busy => "SNFSERR_BUSY",
            NfsStatus::XDev => "NFSERR_XDEV",
        };
        f.write_str(s)
    }
}

impl std::error::Error for NfsStatus {}

/// Result alias used across the protocol crates.
pub type Result<T> = std::result::Result<T, NfsStatus>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_wire_names() {
        assert_eq!(NfsStatus::NoEnt.to_string(), "NFSERR_NOENT");
        assert_eq!(NfsStatus::Stale.to_string(), "NFSERR_STALE");
        assert_eq!(NfsStatus::Inconsistent.to_string(), "SNFSERR_INCONSISTENT");
    }
}
