//! Shared protocol types for NFS and Spritely NFS (SNFS).
//!
//! Both the baseline NFS implementation (`spritely-nfs`) and the Spritely
//! NFS implementation (`spritely-core`) speak in terms of the types defined
//! here: opaque file handles, file attributes, procedure identifiers,
//! status codes, and the request/reply message bodies carried by the RPC
//! layer.
//!
//! The split mirrors the paper's implementation: SNFS reuses the NFS wire
//! vocabulary and *adds* three operations — `open`, `close` (client→server)
//! and `callback` (server→client) — plus a per-file version number.
//!
//! This crate is dependency-free; times inside attributes are raw virtual
//! microseconds (see `spritely-sim::SimTime`).

mod attr;
mod handle;
mod layout;
mod message;
mod procs;
mod status;

pub use attr::{Fattr, FileType};
pub use handle::{ClientId, FileHandle, FileVersion};
pub use layout::{default_shard, Layout};
pub use message::{
    CallbackArg, CallbackReply, Delegation, DirEntry, NfsReply, NfsRequest, OpenReply, ReadReply,
    RecoveredFile, COMPOUND_OP_BYTES,
};
pub use procs::{NfsProc, ProcClass};
pub use status::{NfsStatus, Result};

/// The file system block size used throughout the simulation, in bytes.
///
/// The paper's experiments used a 4 KB "natural" server block size (§5.2);
/// every cache and transfer in this reproduction is block-granular at this
/// size.
pub const BLOCK_SIZE: usize = 4096;

/// Returns the block index containing byte `offset`.
pub const fn block_of(offset: u64) -> u64 {
    offset / BLOCK_SIZE as u64
}

/// Returns the number of blocks needed to hold `size` bytes.
pub const fn blocks_for(size: u64) -> u64 {
    size.div_ceil(BLOCK_SIZE as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_math() {
        assert_eq!(block_of(0), 0);
        assert_eq!(block_of(4095), 0);
        assert_eq!(block_of(4096), 1);
        assert_eq!(blocks_for(0), 0);
        assert_eq!(blocks_for(1), 1);
        assert_eq!(blocks_for(4096), 1);
        assert_eq!(blocks_for(4097), 2);
    }
}
