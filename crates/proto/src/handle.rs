//! Opaque identifiers: file handles, client ids, file version numbers.

use std::fmt;

/// An opaque handle naming a file on a particular server file system.
///
/// As in NFS, the handle is issued by `lookup`/`create` and identifies the
/// file independent of its name. The generation number distinguishes a
/// recycled inode from the file that previously used it, which is what makes
/// [`stale`](crate::NfsStatus::Stale) detection possible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileHandle {
    /// Identifies the exported file system on the server.
    pub fsid: u32,
    /// Inode number within that file system.
    pub inode: u64,
    /// Inode generation number (incremented when the inode is reused).
    pub generation: u32,
}

impl FileHandle {
    /// Builds a handle from its parts.
    pub const fn new(fsid: u32, inode: u64, generation: u32) -> Self {
        FileHandle {
            fsid,
            inode,
            generation,
        }
    }
}

impl fmt::Display for FileHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fh[{}:{}.{}]", self.fsid, self.inode, self.generation)
    }
}

/// Identifies a client host (its simulated network address).
///
/// The SNFS server's state table keys its per-client information blocks by
/// this id, and uses it to address callback RPCs (paper §4.3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClientId(pub u32);

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "client{}", self.0)
    }
}

/// A per-file version number.
///
/// The SNFS server increments a file's version every time the file is opened
/// for writing (paper §4.3.3); clients compare it against the version of
/// their cached copy to decide whether the cache is still valid after a
/// reopen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct FileVersion(pub u64);

impl FileVersion {
    /// Returns the next version number.
    pub fn next(self) -> FileVersion {
        FileVersion(self.0 + 1)
    }
}

impl fmt::Display for FileVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_compare_by_all_fields() {
        let a = FileHandle::new(1, 10, 0);
        let b = FileHandle::new(1, 10, 1);
        assert_ne!(a, b, "same inode, different generation must differ");
        assert_eq!(a, FileHandle::new(1, 10, 0));
    }

    #[test]
    fn version_increments() {
        let v = FileVersion::default();
        assert_eq!(v.next(), FileVersion(1));
        assert!(v < v.next());
    }

    #[test]
    fn display_forms() {
        assert_eq!(FileHandle::new(2, 7, 3).to_string(), "fh[2:7.3]");
        assert_eq!(ClientId(4).to_string(), "client4");
        assert_eq!(FileVersion(9).to_string(), "v9");
    }
}
