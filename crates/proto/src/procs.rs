//! Procedure identifiers for RPC accounting.

use std::fmt;

/// Every RPC procedure in the NFS protocol plus the three SNFS additions.
///
/// The paper's Tables 5-2, 5-4 and 5-6 count calls per procedure; the
/// metrics crate keys its counters by this enum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NfsProc {
    /// Ping / no-op.
    Null,
    /// Fetch file attributes.
    GetAttr,
    /// Set file attributes (truncate, utimes).
    SetAttr,
    /// Translate one pathname component to a handle.
    Lookup,
    /// Read file data.
    Read,
    /// Write file data (synchronous to stable storage at the server).
    Write,
    /// Create a regular file.
    Create,
    /// Remove a regular file.
    Remove,
    /// Rename a file or directory.
    Rename,
    /// Create a directory.
    Mkdir,
    /// Remove a directory.
    Rmdir,
    /// Read directory entries.
    Readdir,
    /// File system statistics.
    StatFs,
    /// SNFS: announce an open, returns cachability + version (paper §3.1).
    Open,
    /// SNFS: announce a close (paper §3.1).
    Close,
    /// SNFS: server→client cache callback (paper §3.2).
    Callback,
    /// SNFS recovery: liveness probe carrying the server epoch (§2.4).
    Keepalive,
    /// SNFS recovery: a client re-registers its open/cache state after a
    /// server reboot (§2.4; Welch's Sprite recovery).
    Recover,
    /// Create a hard link (RFC 1094 LINK).
    Link,
    /// Create a symbolic link (RFC 1094 SYMLINK).
    Symlink,
    /// Read a symbolic link's target (RFC 1094 READLINK).
    Readlink,
    /// SNFS delegation: a client returns a delegation (with its queued
    /// open-state updates) after a recall, or voluntarily (DESIGN.md §17).
    DelegReturn,
    /// Transport-level batch of several requests sharing one RPC exchange
    /// (NFSv4-style COMPOUND; see DESIGN.md §13). Never counted in the
    /// paper tables — the inner procedures are what get recorded.
    Compound,
    /// Sharded namespace: first phase of a cross-shard rename/link — the
    /// participant shard locks the target name and reports whether it
    /// already exists (DESIGN.md §18).
    TxPrepare,
    /// Sharded namespace: second phase — the participant removes its
    /// superseded entry (if any) and releases the name lock. Retried by
    /// the coordinator until acknowledged.
    TxCommit,
    /// Sharded namespace: the coordinator abandons a prepared transaction
    /// and the participant releases the name lock.
    TxAbort,
}

/// Coarse classification used in the paper's tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProcClass {
    /// `read`/`write`: the expensive data-transfer operations.
    DataTransfer,
    /// Name translation (`lookup`), which the paper notes is about half of
    /// all calls.
    Lookup,
    /// Everything else.
    Other,
}

impl NfsProc {
    /// All procedures, in display order.
    pub const ALL: [NfsProc; 26] = [
        NfsProc::Null,
        NfsProc::GetAttr,
        NfsProc::SetAttr,
        NfsProc::Lookup,
        NfsProc::Read,
        NfsProc::Write,
        NfsProc::Create,
        NfsProc::Remove,
        NfsProc::Rename,
        NfsProc::Mkdir,
        NfsProc::Rmdir,
        NfsProc::Readdir,
        NfsProc::StatFs,
        NfsProc::Open,
        NfsProc::Close,
        NfsProc::Callback,
        NfsProc::Keepalive,
        NfsProc::Recover,
        NfsProc::Link,
        NfsProc::Symlink,
        NfsProc::Readlink,
        NfsProc::DelegReturn,
        NfsProc::Compound,
        NfsProc::TxPrepare,
        NfsProc::TxCommit,
        NfsProc::TxAbort,
    ];

    /// Classifies the procedure for the paper's aggregate rows.
    pub fn class(self) -> ProcClass {
        match self {
            NfsProc::Read | NfsProc::Write => ProcClass::DataTransfer,
            NfsProc::Lookup => ProcClass::Lookup,
            _ => ProcClass::Other,
        }
    }

    /// True for the operations only SNFS issues.
    pub fn is_snfs_extension(self) -> bool {
        matches!(
            self,
            NfsProc::Open
                | NfsProc::Close
                | NfsProc::Callback
                | NfsProc::Keepalive
                | NfsProc::Recover
                | NfsProc::DelegReturn
                | NfsProc::TxPrepare
                | NfsProc::TxCommit
                | NfsProc::TxAbort
        )
    }

    /// Short lower-case wire-style name.
    pub fn name(self) -> &'static str {
        match self {
            NfsProc::Null => "null",
            NfsProc::GetAttr => "getattr",
            NfsProc::SetAttr => "setattr",
            NfsProc::Lookup => "lookup",
            NfsProc::Read => "read",
            NfsProc::Write => "write",
            NfsProc::Create => "create",
            NfsProc::Remove => "remove",
            NfsProc::Rename => "rename",
            NfsProc::Mkdir => "mkdir",
            NfsProc::Rmdir => "rmdir",
            NfsProc::Readdir => "readdir",
            NfsProc::StatFs => "statfs",
            NfsProc::Open => "open",
            NfsProc::Close => "close",
            NfsProc::Callback => "callback",
            NfsProc::Keepalive => "keepalive",
            NfsProc::Recover => "recover",
            NfsProc::Link => "link",
            NfsProc::Symlink => "symlink",
            NfsProc::Readlink => "readlink",
            NfsProc::DelegReturn => "deleg_return",
            NfsProc::Compound => "compound",
            NfsProc::TxPrepare => "tx_prepare",
            NfsProc::TxCommit => "tx_commit",
            NfsProc::TxAbort => "tx_abort",
        }
    }
}

impl fmt::Display for NfsProc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_match_paper_groupings() {
        assert_eq!(NfsProc::Read.class(), ProcClass::DataTransfer);
        assert_eq!(NfsProc::Write.class(), ProcClass::DataTransfer);
        assert_eq!(NfsProc::Lookup.class(), ProcClass::Lookup);
        assert_eq!(NfsProc::GetAttr.class(), ProcClass::Other);
        assert_eq!(NfsProc::Open.class(), ProcClass::Other);
    }

    #[test]
    fn snfs_extensions_flagged() {
        for p in NfsProc::ALL {
            assert_eq!(
                p.is_snfs_extension(),
                matches!(
                    p,
                    NfsProc::Open
                        | NfsProc::Close
                        | NfsProc::Callback
                        | NfsProc::Keepalive
                        | NfsProc::Recover
                        | NfsProc::DelegReturn
                        | NfsProc::TxPrepare
                        | NfsProc::TxCommit
                        | NfsProc::TxAbort
                ),
                "{p}"
            );
        }
    }

    #[test]
    fn all_has_unique_names() {
        let mut names: Vec<_> = NfsProc::ALL.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), NfsProc::ALL.len());
    }
}
