//! File attributes (the NFS `fattr` record).

use crate::BLOCK_SIZE;

/// The type of a file system object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FileType {
    /// Regular file.
    Regular,
    /// Directory.
    Directory,
    /// Symbolic link.
    Symlink,
}

/// File attributes, as returned by `getattr`, `lookup`, `open`, etc.
///
/// Times are virtual microseconds since simulation start. The NFS client's
/// cache-consistency check compares `mtime` (and `ctime`) between probes; a
/// change invalidates cached data (paper §2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fattr {
    /// Unique file id within the file system (the inode number).
    pub fileid: u64,
    /// Object type.
    pub ftype: FileType,
    /// Size in bytes.
    pub size: u64,
    /// Number of hard links.
    pub nlink: u32,
    /// Last data modification time (virtual µs).
    pub mtime: u64,
    /// Last attribute change time (virtual µs).
    pub ctime: u64,
    /// Last access time (virtual µs).
    pub atime: u64,
}

impl Fattr {
    /// Number of blocks the file occupies at [`BLOCK_SIZE`] granularity.
    pub fn blocks(&self) -> u64 {
        self.size.div_ceil(BLOCK_SIZE as u64)
    }

    /// Returns true if this is a directory.
    pub fn is_dir(&self) -> bool {
        self.ftype == FileType::Directory
    }

    /// Returns true if the data-modification state differs from `other` in a
    /// way that must invalidate client caches (mtime or size changed).
    pub fn data_changed_from(&self, other: &Fattr) -> bool {
        self.mtime != other.mtime || self.size != other.size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attr(size: u64, mtime: u64) -> Fattr {
        Fattr {
            fileid: 1,
            ftype: FileType::Regular,
            size,
            nlink: 1,
            mtime,
            ctime: mtime,
            atime: mtime,
        }
    }

    #[test]
    fn blocks_round_up() {
        assert_eq!(attr(0, 0).blocks(), 0);
        assert_eq!(attr(1, 0).blocks(), 1);
        assert_eq!(attr(BLOCK_SIZE as u64, 0).blocks(), 1);
        assert_eq!(attr(BLOCK_SIZE as u64 + 1, 0).blocks(), 2);
    }

    #[test]
    fn data_changed_detects_mtime_and_size() {
        let a = attr(100, 5);
        assert!(!a.data_changed_from(&attr(100, 5)));
        assert!(a.data_changed_from(&attr(100, 6)));
        assert!(a.data_changed_from(&attr(101, 5)));
    }
}
