//! Namespace layout map for the sharded multi-server configuration
//! (DESIGN.md §18).
//!
//! The exported namespace is partitioned at the export root: every
//! top-level name is owned by exactly one shard, chosen by a
//! deterministic hash of the name (FNV-1a) modulo the shard count, plus
//! an override table that records names whose ownership moved via a
//! cross-shard rename/link. Clients cache a copy of the map and route
//! each root-level operation to the owning shard; a shard that receives
//! an operation for a name it does not own replies `WrongShard` with the
//! authoritative epoch and the full override delta, Fletch-style, and
//! the client refreshes its cache and re-routes.
//!
//! Entries below the root never move between shards: a shard owns the
//! whole subtree under each root name it owns, and file handles carry
//! the shard identity in their `fsid` (shard `s` exports `fsid = s + 1`),
//! so handle-addressed operations route without consulting the map.

use std::collections::BTreeMap;

/// Default (hash-placed) owner of a root-level `name` among `n` shards.
///
/// FNV-1a over the name bytes, reduced modulo `n`. Deterministic across
/// runs and processes — the trace checker recomputes it independently.
pub fn default_shard(name: &str, n: u32) -> u32 {
    if n <= 1 {
        return 0;
    }
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in name.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    (h % n as u64) as u32
}

/// The namespace layout map: shard count, epoch, and ownership overrides.
///
/// The epoch starts at 1 and increments on every ownership change; a
/// client holding an older epoch may route to the wrong shard, which is
/// detected server-side and corrected via [`NfsReply::WrongShard`].
///
/// [`NfsReply::WrongShard`]: crate::NfsReply::WrongShard
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layout {
    n: u32,
    epoch: u64,
    overrides: BTreeMap<String, u32>,
}

impl Layout {
    /// A fresh layout over `n` shards at epoch 1 with no overrides.
    pub fn new(n: u32) -> Self {
        assert!(n >= 1, "layout needs at least one shard");
        Layout {
            n,
            epoch: 1,
            overrides: BTreeMap::new(),
        }
    }

    /// Number of shards.
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Current epoch (starts at 1, bumps on every ownership change).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The shard that owns root-level `name` at this epoch.
    pub fn owner(&self, name: &str) -> u32 {
        self.overrides
            .get(name)
            .copied()
            .unwrap_or_else(|| default_shard(name, self.n))
    }

    /// The full override delta, for `WrongShard` replies. Small in
    /// practice: only names moved by cross-shard renames/links appear.
    pub fn moves(&self) -> Vec<(String, u32)> {
        self.overrides
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    /// Authority side: record that `to_name` is now owned by `shard`
    /// (and that `from_name`, if given, ceased to exist there — its
    /// override is dropped so a re-created entry hash-places normally).
    /// Bumps and returns the new epoch.
    pub fn record_move(&mut self, from_name: Option<&str>, to_name: &str, shard: u32) -> u64 {
        if let Some(f) = from_name {
            self.overrides.remove(f);
        }
        if default_shard(to_name, self.n) == shard {
            self.overrides.remove(to_name);
        } else {
            self.overrides.insert(to_name.to_string(), shard);
        }
        self.epoch += 1;
        self.epoch
    }

    /// Client side: adopt a fresh epoch + override delta from a
    /// `WrongShard` reply. Older epochs are ignored.
    pub fn apply(&mut self, epoch: u64, moves: &[(String, u32)]) {
        if epoch <= self.epoch {
            return;
        }
        self.epoch = epoch;
        self.overrides = moves.iter().cloned().collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_shard_owns_everything() {
        let l = Layout::new(1);
        assert_eq!(l.owner("anything"), 0);
        assert_eq!(default_shard("anything", 1), 0);
    }

    #[test]
    fn hash_placement_is_deterministic_and_in_range() {
        for n in [2u32, 4, 8] {
            for name in ["src", "target", "tmp", "u17", "a-long-name"] {
                let s = default_shard(name, n);
                assert!(s < n);
                assert_eq!(s, default_shard(name, n), "stable for {name}/{n}");
            }
        }
    }

    #[test]
    fn record_move_overrides_and_bumps_epoch() {
        let mut l = Layout::new(4);
        let home = l.owner("doc");
        let other = (home + 1) % 4;
        let e = l.record_move(Some("old"), "doc", other);
        assert_eq!(e, 2);
        assert_eq!(l.owner("doc"), other);
        // Moving it back to its hash home drops the override entirely.
        let e = l.record_move(None, "doc", home);
        assert_eq!(e, 3);
        assert_eq!(l.owner("doc"), home);
        assert!(l.moves().is_empty());
    }

    #[test]
    fn apply_ignores_stale_epochs() {
        let mut l = Layout::new(4);
        l.apply(5, &[("doc".into(), 3)]);
        assert_eq!(l.epoch(), 5);
        assert_eq!(l.owner("doc"), 3);
        l.apply(4, &[]);
        assert_eq!(l.owner("doc"), 3, "stale delta must not regress the map");
    }
}
