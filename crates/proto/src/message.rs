//! RPC request and reply bodies.
//!
//! These are the in-memory equivalents of the XDR-encoded messages on the
//! wire. Each body knows its procedure id (for per-procedure counters) and
//! its approximate wire size (for network transfer-time modelling).

use crate::attr::Fattr;
use crate::handle::{ClientId, FileHandle, FileVersion};
use crate::procs::NfsProc;
use crate::status::NfsStatus;

/// Approximate size of RPC + NFS headers on the wire, in bytes.
const HEADER_BYTES: usize = 128;

/// Per-operation framing inside a compound message (an op tag plus a
/// length word), replacing the full RPC header each inner call would
/// have paid as a standalone message.
pub const COMPOUND_OP_BYTES: usize = 16;

/// Bytes of wire traffic a message occupies when carried *inside* a
/// compound: its payload plus the slim per-op framing instead of a full
/// RPC header.
fn compound_slot_bytes(standalone_wire_size: usize) -> usize {
    standalone_wire_size - HEADER_BYTES + COMPOUND_OP_BYTES
}

/// A client→server request body (NFS procedures plus SNFS `open`/`close`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NfsRequest {
    /// Ping.
    Null,
    /// Fetch attributes for a handle.
    GetAttr { fh: FileHandle },
    /// Truncate to `size` and/or bump times.
    SetAttr { fh: FileHandle, size: Option<u64> },
    /// Translate one name component under a directory.
    Lookup { dir: FileHandle, name: String },
    /// Read `count` bytes at `offset`.
    Read {
        fh: FileHandle,
        offset: u64,
        count: u32,
    },
    /// Write `data` at `offset`; the server must reach stable storage
    /// before replying (RFC 1094 semantics).
    Write {
        fh: FileHandle,
        offset: u64,
        data: Vec<u8>,
    },
    /// Create a regular file under `dir`.
    Create { dir: FileHandle, name: String },
    /// Remove a regular file.
    Remove { dir: FileHandle, name: String },
    /// Rename within the file system.
    Rename {
        from_dir: FileHandle,
        from_name: String,
        to_dir: FileHandle,
        to_name: String,
    },
    /// Create a directory.
    Mkdir { dir: FileHandle, name: String },
    /// Remove an empty directory.
    Rmdir { dir: FileHandle, name: String },
    /// List a directory.
    Readdir { dir: FileHandle },
    /// File system statistics.
    StatFs { fh: FileHandle },
    /// SNFS: the client is opening `fh`; `write` is the open mode
    /// (paper §3.1).
    Open {
        fh: FileHandle,
        write: bool,
        client: ClientId,
    },
    /// SNFS: the client is done with `fh`; `write` must match the mode
    /// passed to the corresponding `Open` (paper §3.1).
    Close {
        fh: FileHandle,
        write: bool,
        client: ClientId,
    },
    /// SNFS recovery: liveness probe; the reply carries the server epoch
    /// so a reboot is detectable (§2.4).
    Keepalive { client: ClientId },
    /// SNFS recovery: the client re-registers everything it knows after
    /// detecting a server reboot. The server rebuilds its state table
    /// from these reports — "the clients together know who is caching the
    /// file" (§2.4).
    Recover {
        client: ClientId,
        files: Vec<RecoveredFile>,
    },
    /// Create a hard link `to_dir/to_name` to the file `from`.
    Link {
        from: FileHandle,
        to_dir: FileHandle,
        to_name: String,
    },
    /// Create a symbolic link `dir/name` pointing at `target`.
    Symlink {
        dir: FileHandle,
        name: String,
        target: String,
    },
    /// Read a symbolic link's target.
    Readlink { fh: FileHandle },
    /// SNFS delegation: the client returns a delegation it holds on `fh`,
    /// reporting the net open state it accumulated while serving opens and
    /// closes locally (the lazy batch of queued close-time updates). Sent
    /// in response to a recall callback; `wrote` is true if any local open
    /// was for writing, so the server can bump the file version.
    DelegReturn {
        fh: FileHandle,
        client: ClientId,
        /// Processes at the client currently holding the file open to read.
        readers: u32,
        /// Processes at the client currently holding the file open to write.
        writers: u32,
        /// True if any locally-served open was a write open.
        wrote: bool,
    },
    /// Transport-level batch: several requests sharing one RPC exchange
    /// (one header + slim per-op framing on the wire). Built by the
    /// batching `Caller`; each inner call keeps its own xid and counters,
    /// so the paper's per-procedure tables are unaffected. Never nested.
    Compound { calls: Vec<NfsRequest> },
    /// Sharded namespace (DESIGN.md §18), shard→shard: phase one of a
    /// cross-shard rename/link. The participant locks `name` in its
    /// export root and reports whether an entry by that name exists.
    TxPrepare { txid: u64, name: String },
    /// Sharded namespace, shard→shard: phase two. The participant
    /// removes its superseded `name` entry (if the prepared handle still
    /// matches) and releases the lock. Idempotent; retried until acked.
    TxCommit { txid: u64 },
    /// Sharded namespace, shard→shard: the coordinator abandons a
    /// prepared transaction; the participant releases the lock.
    TxAbort { txid: u64 },
}

/// One file's worth of client state in a `Recover` report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveredFile {
    /// The file.
    pub fh: FileHandle,
    /// Processes at this client with the file open for reading.
    pub readers: u32,
    /// Processes at this client with the file open for writing.
    pub writers: u32,
    /// Version of the client's cached copy, if it caches the file.
    pub cached_version: Option<FileVersion>,
    /// True if the client holds dirty (not yet written back) blocks.
    pub dirty: bool,
}

impl NfsRequest {
    /// The procedure id, for accounting.
    pub fn proc_id(&self) -> NfsProc {
        match self {
            NfsRequest::Null => NfsProc::Null,
            NfsRequest::GetAttr { .. } => NfsProc::GetAttr,
            NfsRequest::SetAttr { .. } => NfsProc::SetAttr,
            NfsRequest::Lookup { .. } => NfsProc::Lookup,
            NfsRequest::Read { .. } => NfsProc::Read,
            NfsRequest::Write { .. } => NfsProc::Write,
            NfsRequest::Create { .. } => NfsProc::Create,
            NfsRequest::Remove { .. } => NfsProc::Remove,
            NfsRequest::Rename { .. } => NfsProc::Rename,
            NfsRequest::Mkdir { .. } => NfsProc::Mkdir,
            NfsRequest::Rmdir { .. } => NfsProc::Rmdir,
            NfsRequest::Readdir { .. } => NfsProc::Readdir,
            NfsRequest::StatFs { .. } => NfsProc::StatFs,
            NfsRequest::Open { .. } => NfsProc::Open,
            NfsRequest::Close { .. } => NfsProc::Close,
            NfsRequest::Keepalive { .. } => NfsProc::Keepalive,
            NfsRequest::Recover { .. } => NfsProc::Recover,
            NfsRequest::Link { .. } => NfsProc::Link,
            NfsRequest::Symlink { .. } => NfsProc::Symlink,
            NfsRequest::Readlink { .. } => NfsProc::Readlink,
            NfsRequest::DelegReturn { .. } => NfsProc::DelegReturn,
            NfsRequest::Compound { .. } => NfsProc::Compound,
            NfsRequest::TxPrepare { .. } => NfsProc::TxPrepare,
            NfsRequest::TxCommit { .. } => NfsProc::TxCommit,
            NfsRequest::TxAbort { .. } => NfsProc::TxAbort,
        }
    }

    /// Approximate bytes this request occupies on the wire.
    pub fn wire_size(&self) -> usize {
        let payload = match self {
            NfsRequest::Write { data, .. } => data.len(),
            NfsRequest::Lookup { name, .. }
            | NfsRequest::Create { name, .. }
            | NfsRequest::Remove { name, .. }
            | NfsRequest::Mkdir { name, .. }
            | NfsRequest::Rmdir { name, .. } => name.len(),
            NfsRequest::Rename {
                from_name, to_name, ..
            } => from_name.len() + to_name.len(),
            NfsRequest::Recover { files, .. } => files.len() * 32,
            NfsRequest::Link { to_name, .. } => to_name.len(),
            NfsRequest::Symlink { name, target, .. } => name.len() + target.len(),
            NfsRequest::TxPrepare { name, .. } => name.len(),
            NfsRequest::Compound { calls } => {
                return HEADER_BYTES
                    + calls
                        .iter()
                        .map(|c| compound_slot_bytes(c.wire_size()))
                        .sum::<usize>();
            }
            _ => 0,
        };
        HEADER_BYTES + payload
    }

    /// Wraps a batch of requests in a single compound message. A batch of
    /// one stays a plain request: it needs no framing and must look
    /// identical to the unbatched wire format.
    pub fn compound(mut calls: Vec<NfsRequest>) -> NfsRequest {
        debug_assert!(!calls.is_empty(), "empty compound request");
        debug_assert!(
            !calls
                .iter()
                .any(|c| matches!(c, NfsRequest::Compound { .. })),
            "compound requests must not nest"
        );
        if calls.len() == 1 {
            calls.pop().expect("length checked")
        } else {
            NfsRequest::Compound { calls }
        }
    }
}

/// One entry in a `readdir` reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirEntry {
    /// Component name.
    pub name: String,
    /// The entry's file id (inode number). A handle requires `lookup`.
    pub fileid: u64,
}

/// Body of a successful `read`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadReply {
    /// The bytes read (may be shorter than requested at end of file).
    pub data: Vec<u8>,
    /// True if the read reached end of file.
    pub eof: bool,
    /// Post-read attributes.
    pub attr: Fattr,
}

/// A delegation the server may piggyback on an open reply when the state
/// table says the file has no conflicting users (NFSv4-style extension of
/// the paper's consistency protocol). While a client holds one, it serves
/// further opens, closes and attribute reads locally with zero RPCs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delegation {
    /// Many clients may hold read delegations concurrently; each may serve
    /// read opens locally.
    Read,
    /// Exclusive: the holder may serve read *and* write opens locally and
    /// is the attribute authority for the file.
    Write,
}

impl Delegation {
    /// True for a write (exclusive) delegation.
    pub fn is_write(self) -> bool {
        matches!(self, Delegation::Write)
    }

    /// True if this delegation lets the holder serve an open in the given
    /// mode locally: a write delegation covers both modes, a read
    /// delegation covers read opens only.
    pub fn covers(self, write_open: bool) -> bool {
        self.is_write() || !write_open
    }
}

/// Body of a successful SNFS `open` (paper §3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpenReply {
    /// Whether the client may cache this file's data.
    pub cache_enabled: bool,
    /// Version after this open (incremented if opened for write).
    pub version: FileVersion,
    /// Version before this open; a writer whose cache matches this value
    /// may keep its cache, because the version bump came from its own open.
    pub prev_version: FileVersion,
    /// Current attributes (replaces the `getattr` NFS does at open time).
    pub attr: Fattr,
    /// True if the file may be inconsistent because a client that held
    /// dirty blocks crashed before writing them back (paper §3.2).
    pub inconsistent: bool,
    /// Delegation granted with this open, if any. Rides in the existing
    /// header (a two-bit flag on the wire), so wire size is unchanged.
    pub delegation: Option<Delegation>,
}

/// A server→client reply body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NfsReply {
    /// Success with no body (`close`, `remove`, ...).
    Ok,
    /// Success with attributes (`getattr`, `setattr`, `write`).
    Attr(Fattr),
    /// Successful `lookup`/`create`/`mkdir`.
    Handle { fh: FileHandle, attr: Fattr },
    /// Successful `read`.
    Read(ReadReply),
    /// Successful `readdir`.
    Readdir { entries: Vec<DirEntry> },
    /// Successful SNFS `open`.
    Open(OpenReply),
    /// Reply to `keepalive`: the server's current epoch.
    Epoch(u64),
    /// Reply to `deleg_return`: the file version after applying the
    /// returned state (bumped if the holder wrote), plus `fenced` — true
    /// when the server had already revoked this delegation after a recall
    /// timeout, meaning the returned state was discarded and the client
    /// must drop its cache and re-validate via a fresh RPC open.
    DelegReturned { version: FileVersion, fenced: bool },
    /// Reply to `readlink`: the link's target path.
    Path(String),
    /// Sharded namespace: the receiving shard does not own the name at
    /// the layout epoch it holds. Carries the authoritative epoch plus
    /// the full override delta so the client can refresh its cached
    /// layout map and re-route (Fletch-style stale-layout recovery).
    WrongShard {
        epoch: u64,
        moves: Vec<(String, u32)>,
    },
    /// Reply to `tx_prepare`: the name is locked at the participant;
    /// `existed` reports whether an entry by that name is present.
    TxPrepared { existed: bool },
    /// Any failure.
    Err(NfsStatus),
    /// Transport-level batch of replies, positionally matching the calls
    /// of the `NfsRequest::Compound` that produced it.
    Compound { replies: Vec<NfsReply> },
}

impl NfsReply {
    /// Approximate bytes this reply occupies on the wire.
    pub fn wire_size(&self) -> usize {
        let payload = match self {
            NfsReply::Read(r) => r.data.len(),
            NfsReply::Readdir { entries } => {
                entries.iter().map(|e| e.name.len() + 16).sum::<usize>()
            }
            NfsReply::Path(p) => p.len(),
            NfsReply::WrongShard { moves, .. } => {
                8 + moves.iter().map(|(n, _)| n.len() + 8).sum::<usize>()
            }
            NfsReply::Compound { replies } => {
                return HEADER_BYTES
                    + replies
                        .iter()
                        .map(|r| compound_slot_bytes(r.wire_size()))
                        .sum::<usize>();
            }
            _ => 0,
        };
        HEADER_BYTES + payload
    }

    /// Wraps a batch of replies in a single compound message; a batch of
    /// one stays a plain reply (mirrors [`NfsRequest::compound`]).
    pub fn compound(mut replies: Vec<NfsReply>) -> NfsReply {
        debug_assert!(!replies.is_empty(), "empty compound reply");
        debug_assert!(
            !replies
                .iter()
                .any(|r| matches!(r, NfsReply::Compound { .. })),
            "compound replies must not nest"
        );
        if replies.len() == 1 {
            replies.pop().expect("length checked")
        } else {
            NfsReply::Compound { replies }
        }
    }

    /// Converts an error reply into `Err`, anything else into `Ok(self)`.
    pub fn into_result(self) -> Result<NfsReply, NfsStatus> {
        match self {
            NfsReply::Err(e) => Err(e),
            ok => Ok(ok),
        }
    }

    /// Extracts attributes if this reply carries them.
    pub fn attr(&self) -> Option<&Fattr> {
        match self {
            NfsReply::Attr(a) => Some(a),
            NfsReply::Handle { attr, .. } => Some(attr),
            NfsReply::Read(r) => Some(&r.attr),
            NfsReply::Open(o) => Some(&o.attr),
            _ => None,
        }
    }
}

/// A server→client callback request (paper §3.2).
///
/// `writeback` asks the client to write its dirty blocks back before
/// replying; `invalidate` asks it to drop cached blocks and stop caching.
/// `relinquish` is the §6.2 extension: asks the client to give up a
/// delayed-close ("closed but not yet reported") file so the server can
/// reclaim the state-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallbackArg {
    /// The file in question.
    pub fh: FileHandle,
    /// Write dirty blocks back to the server before replying.
    pub writeback: bool,
    /// Invalidate cached blocks and disable further caching.
    pub invalidate: bool,
    /// Relinquish a delayed-close file (§6.2 extension).
    pub relinquish: bool,
    /// Recall a delegation: the holder must flush dirty blocks, return the
    /// delegation (with its queued open-state updates) via a `deleg_return`
    /// RPC, and only then reply to this callback. Rides in the existing
    /// header, so wire size is unchanged.
    pub recall: bool,
    /// Server-assigned callback sequence number, stable across
    /// server-level retries of the same logical callback (each retry is
    /// a fresh RPC with a fresh xid, so the RPC dup cache cannot pair
    /// them). Clients use it to make duplicate deliveries idempotent —
    /// a second arrival must not double-invalidate or re-flush. Zero
    /// means "unsequenced" (hand-built test callbacks) and is never
    /// deduplicated. Rides in the existing header, so wire size is
    /// unchanged.
    pub seq: u64,
}

impl CallbackArg {
    /// Approximate wire size of the callback request.
    pub fn wire_size(&self) -> usize {
        HEADER_BYTES
    }
}

/// Reply to a callback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallbackReply {
    /// True if the client performed the requested actions. False means the
    /// client no longer knows the file (e.g. it rebooted).
    pub ok: bool,
}

impl CallbackReply {
    /// Approximate wire size of the callback reply: the status bit rides
    /// inside the headers, so there is no payload beyond them.
    pub fn wire_size(&self) -> usize {
        HEADER_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::FileType;

    fn fh() -> FileHandle {
        FileHandle::new(1, 2, 0)
    }

    fn attr() -> Fattr {
        Fattr {
            fileid: 2,
            ftype: FileType::Regular,
            size: 10,
            nlink: 1,
            mtime: 0,
            ctime: 0,
            atime: 0,
        }
    }

    #[test]
    fn proc_ids_cover_every_request() {
        let reqs: Vec<(NfsRequest, NfsProc)> = vec![
            (NfsRequest::Null, NfsProc::Null),
            (NfsRequest::GetAttr { fh: fh() }, NfsProc::GetAttr),
            (
                NfsRequest::Lookup {
                    dir: fh(),
                    name: "x".into(),
                },
                NfsProc::Lookup,
            ),
            (
                NfsRequest::Write {
                    fh: fh(),
                    offset: 0,
                    data: vec![0; 100],
                },
                NfsProc::Write,
            ),
            (
                NfsRequest::Open {
                    fh: fh(),
                    write: true,
                    client: ClientId(1),
                },
                NfsProc::Open,
            ),
            (
                NfsRequest::Close {
                    fh: fh(),
                    write: false,
                    client: ClientId(1),
                },
                NfsProc::Close,
            ),
        ];
        for (r, p) in reqs {
            assert_eq!(r.proc_id(), p);
        }
    }

    #[test]
    fn write_wire_size_includes_data() {
        let small = NfsRequest::GetAttr { fh: fh() }.wire_size();
        let big = NfsRequest::Write {
            fh: fh(),
            offset: 0,
            data: vec![0; 4096],
        }
        .wire_size();
        assert!(big >= small + 4096);
    }

    #[test]
    fn read_reply_wire_size_includes_data() {
        let r = NfsReply::Read(ReadReply {
            data: vec![0; 2048],
            eof: false,
            attr: attr(),
        });
        assert!(r.wire_size() >= 2048);
    }

    #[test]
    fn into_result_splits_errors() {
        assert_eq!(
            NfsReply::Err(NfsStatus::NoEnt).into_result(),
            Err(NfsStatus::NoEnt)
        );
        assert!(NfsReply::Ok.into_result().is_ok());
    }

    #[test]
    fn compound_request_accounting() {
        let calls = vec![
            NfsRequest::GetAttr { fh: fh() },
            NfsRequest::Write {
                fh: fh(),
                offset: 0,
                data: vec![0; 4096],
            },
            NfsRequest::Lookup {
                dir: fh(),
                name: "abc".into(),
            },
        ];
        let standalone: usize = calls.iter().map(|c| c.wire_size()).sum();
        let compound = NfsRequest::compound(calls.clone());
        assert_eq!(compound.proc_id(), NfsProc::Compound);
        // One shared header plus per-op framing: every payload byte is
        // still accounted for, and each inner call past the first saves
        // a full header minus its framing.
        let expected = HEADER_BYTES + calls.len() * COMPOUND_OP_BYTES + 4096 + 3;
        assert_eq!(compound.wire_size(), expected);
        assert!(compound.wire_size() < standalone);
    }

    #[test]
    fn compound_of_one_is_the_plain_message() {
        let req = NfsRequest::GetAttr { fh: fh() };
        assert_eq!(NfsRequest::compound(vec![req.clone()]), req);
        let rep = NfsReply::Attr(attr());
        assert_eq!(NfsReply::compound(vec![rep.clone()]), rep);
    }

    #[test]
    fn compound_reply_accounting() {
        let replies = vec![
            NfsReply::Attr(attr()),
            NfsReply::Read(ReadReply {
                data: vec![0; 2048],
                eof: false,
                attr: attr(),
            }),
        ];
        let compound = NfsReply::compound(replies.clone());
        let expected = HEADER_BYTES + replies.len() * COMPOUND_OP_BYTES + 2048;
        assert_eq!(compound.wire_size(), expected);
        assert!(compound.wire_size() < replies.iter().map(|r| r.wire_size()).sum());
    }

    #[test]
    fn callback_wire_sizes_are_header_only() {
        let arg = CallbackArg {
            fh: fh(),
            writeback: true,
            invalidate: true,
            relinquish: false,
            recall: false,
            seq: 0,
        };
        let rep = CallbackReply { ok: true };
        assert_eq!(arg.wire_size(), HEADER_BYTES);
        assert_eq!(rep.wire_size(), HEADER_BYTES);
    }

    #[test]
    fn attr_extraction() {
        assert!(NfsReply::Attr(attr()).attr().is_some());
        assert!(NfsReply::Ok.attr().is_none());
        let open = NfsReply::Open(OpenReply {
            cache_enabled: true,
            version: FileVersion(1),
            prev_version: FileVersion(0),
            attr: attr(),
            inconsistent: false,
            delegation: None,
        });
        assert_eq!(open.attr().unwrap().fileid, 2);
    }

    #[test]
    fn delegation_covers_open_modes() {
        assert!(Delegation::Write.covers(true));
        assert!(Delegation::Write.covers(false));
        assert!(Delegation::Read.covers(false));
        assert!(!Delegation::Read.covers(true));
    }

    #[test]
    fn deleg_return_is_header_only() {
        let req = NfsRequest::DelegReturn {
            fh: fh(),
            client: ClientId(1),
            readers: 2,
            writers: 0,
            wrote: false,
        };
        assert_eq!(req.proc_id(), NfsProc::DelegReturn);
        assert_eq!(req.wire_size(), HEADER_BYTES);
    }
}
