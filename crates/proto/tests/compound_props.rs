//! Property-based tests for compound (batched) message accounting: the
//! wire-size bookkeeping must conserve every payload byte, charge exactly
//! one shared header, and collapse a batch of one to the plain message.

use proptest::prelude::*;
use spritely_proto::{
    DirEntry, Fattr, FileHandle, FileType, NfsProc, NfsReply, NfsRequest, COMPOUND_OP_BYTES,
};

fn fh() -> FileHandle {
    FileHandle::new(1, 2, 0)
}

fn attr() -> Fattr {
    Fattr {
        fileid: 2,
        ftype: FileType::Regular,
        size: 10,
        nlink: 1,
        mtime: 0,
        ctime: 0,
        atime: 0,
    }
}

/// The shared header size, recovered from a bodyless message (the
/// constant itself is private to the proto crate).
fn header_bytes() -> usize {
    NfsRequest::Null.wire_size()
}

fn arb_request() -> impl Strategy<Value = NfsRequest> {
    prop_oneof![
        Just(NfsRequest::Null),
        Just(NfsRequest::GetAttr { fh: fh() }),
        (0usize..8192).prop_map(|n| NfsRequest::Write {
            fh: fh(),
            offset: 0,
            data: vec![0xa5; n],
        }),
        (1usize..14).prop_map(|n| NfsRequest::Lookup {
            dir: fh(),
            name: "n".repeat(n),
        }),
        (0u64..1 << 20, 1u32..65536).prop_map(|(offset, count)| NfsRequest::Read {
            fh: fh(),
            offset,
            count,
        }),
    ]
}

fn arb_reply() -> impl Strategy<Value = NfsReply> {
    prop_oneof![
        Just(NfsReply::Ok),
        Just(NfsReply::Attr(attr())),
        (0usize..8192).prop_map(|n| NfsReply::Read(spritely_proto::ReadReply {
            data: vec![0x5a; n],
            eof: false,
            attr: attr(),
        })),
        proptest::collection::vec(1usize..12, 0..8).prop_map(|lens| NfsReply::Readdir {
            entries: lens
                .into_iter()
                .enumerate()
                .map(|(i, len)| DirEntry {
                    name: "e".repeat(len),
                    fileid: i as u64,
                })
                .collect(),
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Compounding conserves payload bytes exactly: the batch costs the
    /// standalone total, minus one full header per inner call, plus one
    /// shared header and slim per-op framing. Batching multiple calls
    /// always wins on the wire.
    #[test]
    fn compound_request_accounting_round_trips(
        calls in proptest::collection::vec(arb_request(), 2..12),
    ) {
        let header = header_bytes();
        let standalone: usize = calls.iter().map(|c| c.wire_size()).sum();
        let n = calls.len();
        let compound = NfsRequest::compound(calls.clone());
        prop_assert_eq!(compound.proc_id(), NfsProc::Compound);
        prop_assert_eq!(
            compound.wire_size(),
            standalone - n * header + header + n * COMPOUND_OP_BYTES,
        );
        prop_assert!(compound.wire_size() < standalone, "batching must save bytes");
        // Round trip: unwrapping the compound recovers the calls verbatim.
        match compound {
            NfsRequest::Compound { calls: inner } => prop_assert_eq!(inner, calls),
            other => prop_assert!(false, "expected a compound, got {other:?}"),
        }
    }

    /// Same invariants on the reply side.
    #[test]
    fn compound_reply_accounting_round_trips(
        replies in proptest::collection::vec(arb_reply(), 2..12),
    ) {
        let header = header_bytes();
        let standalone: usize = replies.iter().map(|r| r.wire_size()).sum();
        let n = replies.len();
        let compound = NfsReply::compound(replies.clone());
        prop_assert_eq!(
            compound.wire_size(),
            standalone - n * header + header + n * COMPOUND_OP_BYTES,
        );
        match compound {
            NfsReply::Compound { replies: inner } => prop_assert_eq!(inner, replies),
            other => prop_assert!(false, "expected a compound, got {other:?}"),
        }
    }

    /// A batch of one is byte-identical to the unbatched message, so the
    /// paper transport's wire traffic is untouched by the batching layer.
    #[test]
    fn compound_of_one_is_transparent(req in arb_request(), rep in arb_reply()) {
        prop_assert_eq!(NfsRequest::compound(vec![req.clone()]), req);
        prop_assert_eq!(NfsReply::compound(vec![rep.clone()]), rep);
    }
}
