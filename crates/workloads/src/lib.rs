//! Workload generators for the paper's evaluation.
//!
//! * [`andrew`] — the (portable) Andrew benchmark of §5.2: MakeDir, Copy,
//!   ScanDir, ReadAll, Make over a generated source tree, with a
//!   simulated compiler that re-reads header files and writes
//!   intermediates to `/tmp`;
//! * [`sort`] — the external merge sort of §5.3, whose temp-file traffic
//!   reproduces the paper's temp-storage ratios (304 k / 2170 k / 7764 k
//!   for 281 k / 1408 k / 2816 k inputs);
//! * [`micro`] — microbenchmarks: the §5.3 write-close-reopen-read probe
//!   and a temp-file lifetime sweep.
//!
//! Workloads are written against the [`Proc`](spritely_vfs::Proc) syscall
//! API only; where the files live (local disk, NFS, SNFS) is decided by
//! the mount table, exactly as in the paper's three configurations.

pub mod andrew;
pub mod micro;
pub mod sort;

pub use andrew::{AndrewBenchmark, AndrewConfig, AndrewParams, AndrewTimes};
pub use micro::{temp_file_lifetime, write_close_reopen_read, ReopenResult};
pub use sort::{populate_sort_input, run_sort, SortConfig, SortParams};
