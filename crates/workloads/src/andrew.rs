//! The Andrew benchmark (paper §5.2).
//!
//! A deterministic reconstruction of the portable Andrew benchmark: a
//! source subtree of directories and small files, processed in five
//! phases. The "compiler" of the Make phase models the I/O shape the
//! paper's analysis relies on: sources read once, a handful of popular
//! header files re-read for every compilation unit, short-lived
//! intermediates written to `/tmp` and deleted, objects written to the
//! target tree, and a final link step that reads every object.

use spritely_proto::Result;
use spritely_sim::{SimDuration, SimRng, SimTime};
use spritely_vfs::{OpenFlags, Proc};

/// Read/write chunk used by all phases (one block).
const CHUNK: usize = 4096;

/// Shape of the generated source tree and of the simulated compiler.
#[derive(Debug, Clone, Copy)]
pub struct AndrewParams {
    /// Number of subdirectories.
    pub dirs: usize,
    /// Number of `.c` compilation units.
    pub c_files: usize,
    /// Number of `.h` header files.
    pub h_files: usize,
    /// Number of miscellaneous files (docs, makefiles, data).
    pub misc_files: usize,
    /// Total bytes across all source files.
    pub total_bytes: u64,
    /// Headers re-read per compilation unit.
    pub headers_per_compile: usize,
    /// Compile CPU per KB of source.
    pub compile_cpu_per_kb: SimDuration,
    /// Object size as a fraction of source size.
    pub obj_ratio: f64,
    /// `/tmp` intermediate size as a fraction of source size.
    pub tmp_ratio: f64,
}

impl Default for AndrewParams {
    fn default() -> Self {
        AndrewParams {
            dirs: 5,
            c_files: 17,
            h_files: 20,
            misc_files: 33,
            total_bytes: 600 * 1024,
            headers_per_compile: 6,
            compile_cpu_per_kb: SimDuration::from_millis(120),
            obj_ratio: 1.2,
            tmp_ratio: 3.0,
        }
    }
}

/// Per-phase elapsed times (the rows of Table 5-1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AndrewTimes {
    /// Construct the target subtree's directories.
    pub makedir: SimDuration,
    /// Copy every file from source to target.
    pub copy: SimDuration,
    /// Recursively stat every file in the target subtree.
    pub scandir: SimDuration,
    /// Read every byte of every file in the target subtree.
    pub readall: SimDuration,
    /// Compile and link everything.
    pub make: SimDuration,
}

impl AndrewTimes {
    /// Whole-benchmark elapsed time.
    pub fn total(&self) -> SimDuration {
        self.makedir + self.copy + self.scandir + self.readall + self.make
    }
}

/// Where the benchmark's three file areas live (decided by mounts).
#[derive(Debug, Clone)]
pub struct AndrewConfig {
    /// Source subtree base (pre-populated).
    pub src_base: String,
    /// Target subtree base (created by the benchmark).
    pub target_base: String,
    /// Temporary directory for compiler intermediates.
    pub tmp_base: String,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    C,
    H,
    Misc,
}

#[derive(Debug, Clone)]
struct FileSpec {
    /// Path relative to the base, e.g. `"d2/f07.c"`.
    rel: String,
    size: u64,
    kind: Kind,
}

/// A deterministic Andrew benchmark instance.
pub struct AndrewBenchmark {
    params: AndrewParams,
    dirs: Vec<String>,
    files: Vec<FileSpec>,
}

impl AndrewBenchmark {
    /// Generates the tree specification from a seed.
    pub fn new(seed: u64, params: AndrewParams) -> Self {
        let rng = SimRng::new(seed);
        let dirs: Vec<String> = (0..params.dirs).map(|i| format!("d{i}")).collect();
        let n = params.c_files + params.h_files + params.misc_files;
        // Sizes: jittered around the mean so the total lands close to
        // `total_bytes`.
        let mean = params.total_bytes / n as u64;
        let mut files = Vec::with_capacity(n);
        for i in 0..n {
            let kind = if i < params.c_files {
                Kind::C
            } else if i < params.c_files + params.h_files {
                Kind::H
            } else {
                Kind::Misc
            };
            let jitter = rng.range_u64(mean / 2, mean * 3 / 2 + 1);
            let dir = &dirs[rng.index(dirs.len())];
            let ext = match kind {
                Kind::C => "c",
                Kind::H => "h",
                Kind::Misc => "txt",
            };
            files.push(FileSpec {
                rel: format!("{dir}/f{i:03}.{ext}"),
                size: jitter.max(256),
                kind,
            });
        }
        AndrewBenchmark {
            params,
            dirs,
            files,
        }
    }

    /// Total source bytes of the generated tree.
    pub fn source_bytes(&self) -> u64 {
        self.files.iter().map(|f| f.size).sum()
    }

    /// Number of files in the tree.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    fn content(size: u64, tag: u64) -> Vec<u8> {
        (0..size)
            .map(|i| ((i * 131 + tag * 17) % 251) as u8)
            .collect()
    }

    /// Creates the source subtree under `src_base` (setup; not timed as a
    /// benchmark phase).
    pub async fn populate_source(&self, p: &Proc, src_base: &str) -> Result<()> {
        p.mkdir(src_base).await.ok();
        for d in &self.dirs {
            p.mkdir(&format!("{src_base}/{d}")).await?;
        }
        for (i, f) in self.files.iter().enumerate() {
            let path = format!("{src_base}/{}", f.rel);
            let fd = p.open(&path, OpenFlags::create_write()).await?;
            let data = Self::content(f.size, i as u64);
            for chunk in data.chunks(CHUNK) {
                p.write(fd, chunk).await?;
            }
            p.close(fd).await?;
        }
        Ok(())
    }

    async fn copy_file(&self, p: &Proc, from: &str, to: &str) -> Result<()> {
        let src = p.open(from, OpenFlags::read()).await?;
        let dst = p.open(to, OpenFlags::create_write()).await?;
        loop {
            let data = p.read(src, CHUNK as u32).await?;
            if data.is_empty() {
                break;
            }
            p.write(dst, &data).await?;
        }
        p.close(src).await?;
        p.close(dst).await?;
        Ok(())
    }

    async fn read_fully(&self, p: &Proc, path: &str) -> Result<u64> {
        let fd = p.open(path, OpenFlags::read()).await?;
        let mut total = 0u64;
        loop {
            let data = p.read(fd, CHUNK as u32).await?;
            if data.is_empty() {
                break;
            }
            total += data.len() as u64;
        }
        p.close(fd).await?;
        Ok(total)
    }

    async fn write_file(&self, p: &Proc, path: &str, size: u64, tag: u64) -> Result<()> {
        let fd = p.open(path, OpenFlags::create_write()).await?;
        let data = Self::content(size, tag);
        for chunk in data.chunks(CHUNK) {
            p.write(fd, chunk).await?;
        }
        p.close(fd).await?;
        Ok(())
    }

    /// Phase 1: construct the target subtree's directories.
    pub async fn phase_makedir(&self, p: &Proc, cfg: &AndrewConfig) -> Result<()> {
        p.mkdir(&cfg.target_base).await.ok();
        for d in &self.dirs {
            p.mkdir(&format!("{}/{d}", cfg.target_base)).await?;
        }
        Ok(())
    }

    /// Phase 2: copy every file from source to target.
    pub async fn phase_copy(&self, p: &Proc, cfg: &AndrewConfig) -> Result<()> {
        for f in &self.files {
            self.copy_file(
                p,
                &format!("{}/{}", cfg.src_base, f.rel),
                &format!("{}/{}", cfg.target_base, f.rel),
            )
            .await?;
        }
        Ok(())
    }

    /// Phase 3: recursively examine the status of every file (twice, as
    /// the original does — it is a stat-heavy phase).
    pub async fn phase_scandir(&self, p: &Proc, cfg: &AndrewConfig) -> Result<()> {
        for _ in 0..2 {
            p.readdir(&cfg.target_base).await?;
            for d in &self.dirs {
                p.readdir(&format!("{}/{d}", cfg.target_base)).await?;
            }
            for f in &self.files {
                p.stat(&format!("{}/{}", cfg.target_base, f.rel)).await?;
            }
        }
        Ok(())
    }

    /// Phase 4: read every byte of every file in the target subtree.
    pub async fn phase_readall(&self, p: &Proc, cfg: &AndrewConfig) -> Result<()> {
        for f in &self.files {
            self.read_fully(p, &format!("{}/{}", cfg.target_base, f.rel))
                .await?;
        }
        Ok(())
    }

    /// Phase 5: compile every `.c` file and link the objects.
    ///
    /// Each compile: read the source, re-read a deterministic set of
    /// headers, burn compile CPU, write and read back a short-lived
    /// `/tmp` intermediate (then delete it), and write the object file.
    /// The link: read every object, burn CPU, write the binary.
    pub async fn phase_make(&self, p: &Proc, cfg: &AndrewConfig) -> Result<()> {
        let headers: Vec<&FileSpec> = self.files.iter().filter(|f| f.kind == Kind::H).collect();
        let mut objects: Vec<(String, u64)> = Vec::new();
        let mut compile_idx = 0u64;
        for (i, f) in self.files.iter().enumerate() {
            if f.kind != Kind::C {
                continue;
            }
            let src_path = format!("{}/{}", cfg.target_base, f.rel);
            self.read_fully(p, &src_path).await?;
            // Headers: a deterministic window over the header list, so
            // popular headers are re-read by many compilation units.
            for h in 0..self.params.headers_per_compile.min(headers.len()) {
                let hdr = headers[(compile_idx as usize + h * 3) % headers.len()];
                self.read_fully(p, &format!("{}/{}", cfg.target_base, hdr.rel))
                    .await?;
            }
            // Compilation CPU.
            let kb = f.size as f64 / 1024.0;
            p.compute(self.params.compile_cpu_per_kb.mul_f64(kb)).await;
            // Short-lived intermediate in /tmp.
            let tmp_path = format!("{}/cc{}.s", cfg.tmp_base, compile_idx);
            let tmp_size = (f.size as f64 * self.params.tmp_ratio) as u64;
            self.write_file(p, &tmp_path, tmp_size, i as u64 + 1000)
                .await?;
            self.read_fully(p, &tmp_path).await?;
            p.unlink(&tmp_path).await?;
            // Object file into the target tree.
            let obj_path = format!("{}/{}", cfg.target_base, f.rel.replace(".c", ".o"));
            let obj_size = (f.size as f64 * self.params.obj_ratio) as u64;
            self.write_file(p, &obj_path, obj_size, i as u64 + 2000)
                .await?;
            objects.push((obj_path, obj_size));
            compile_idx += 1;
        }
        // Link step.
        let mut binary_size = 0u64;
        for (obj, size) in &objects {
            self.read_fully(p, obj).await?;
            binary_size += size;
        }
        p.compute(
            self.params
                .compile_cpu_per_kb
                .mul_f64(binary_size as f64 / 1024.0 * 0.5),
        )
        .await;
        self.write_file(p, &format!("{}/a.out", cfg.target_base), binary_size, 9999)
            .await?;
        Ok(())
    }

    /// Runs all five phases, timing each.
    pub async fn run(&self, p: &Proc, cfg: &AndrewConfig) -> Result<AndrewTimes> {
        let t = |since: SimTime, p: &Proc| p.sim().now().duration_since(since);
        let t0 = p.sim().now();
        self.phase_makedir(p, cfg).await?;
        let t1 = p.sim().now();
        self.phase_copy(p, cfg).await?;
        let t2 = p.sim().now();
        self.phase_scandir(p, cfg).await?;
        let t3 = p.sim().now();
        self.phase_readall(p, cfg).await?;
        let t4 = p.sim().now();
        self.phase_make(p, cfg).await?;
        let t5 = p.sim().now();
        let _ = t;
        Ok(AndrewTimes {
            makedir: t1.duration_since(t0),
            copy: t2.duration_since(t1),
            scandir: t3.duration_since(t2),
            readall: t4.duration_since(t3),
            make: t5.duration_since(t4),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_spec_is_deterministic() {
        let a = AndrewBenchmark::new(42, AndrewParams::default());
        let b = AndrewBenchmark::new(42, AndrewParams::default());
        assert_eq!(a.source_bytes(), b.source_bytes());
        assert_eq!(a.file_count(), b.file_count());
        let c = AndrewBenchmark::new(43, AndrewParams::default());
        assert_ne!(a.source_bytes(), c.source_bytes());
    }

    #[test]
    fn tree_size_near_target() {
        let a = AndrewBenchmark::new(1, AndrewParams::default());
        let total = a.source_bytes();
        let want = AndrewParams::default().total_bytes;
        assert!(
            total > want / 2 && total < want * 2,
            "total {total} vs target {want}"
        );
        assert_eq!(a.file_count(), 70);
    }
}
