//! The external-sort benchmark (paper §5.3).
//!
//! Models Unix `sort` on inputs too big for memory: run generation
//! (read a buffer's worth, sort it with CPU, write it to a temp file)
//! followed by W-way merge passes over the temp files, each pass deleting
//! its inputs. With the default 128 KB run buffer and 4-way merge, the
//! temp bytes written for the paper's three input sizes reproduce its
//! temp-storage column:
//!
//! | input  | paper temp | this model |
//! |--------|-----------|------------|
//! | 281 k  | 304 k     | ≈ 1 × N (runs only)      |
//! | 1408 k | 2170 k    | ≈ 2 × N (runs + 1 pass)  |
//! | 2816 k | 7764 k    | ≈ 3 × N (runs + 2 passes)|

use spritely_proto::Result;
use spritely_sim::SimDuration;
use spritely_vfs::{Fd, OpenFlags, Proc};

/// Read/write chunk (one block).
const CHUNK: usize = 4096;

/// Parameters of the sort.
#[derive(Debug, Clone, Copy)]
pub struct SortParams {
    /// Input file size in bytes.
    pub input_bytes: u64,
    /// In-memory run buffer (Unix sort's workspace).
    pub run_size: u64,
    /// Merge fan-in.
    pub merge_ways: usize,
    /// CPU to sort one KB during run generation.
    pub sort_cpu_per_kb: SimDuration,
    /// CPU to merge one KB during a merge pass.
    pub merge_cpu_per_kb: SimDuration,
}

impl SortParams {
    /// The paper's configuration for a given input size.
    pub fn paper(input_bytes: u64) -> Self {
        SortParams {
            input_bytes,
            run_size: 128 * 1024,
            merge_ways: 4,
            sort_cpu_per_kb: SimDuration::from_micros(6_000),
            merge_cpu_per_kb: SimDuration::from_micros(2_000),
        }
    }
}

/// Where the sort's files live.
#[derive(Debug, Clone)]
pub struct SortConfig {
    /// Pre-populated input file.
    pub input_path: String,
    /// Output file (created).
    pub output_path: String,
    /// Directory for temp files (`/usr/tmp` in the paper).
    pub tmp_dir: String,
}

/// Creates the input file (setup; not part of the timed benchmark).
pub async fn populate_sort_input(p: &Proc, path: &str, bytes: u64) -> Result<()> {
    let fd = p.open(path, OpenFlags::create_write()).await?;
    let mut written = 0u64;
    let mut chunk = vec![0u8; CHUNK];
    while written < bytes {
        let n = CHUNK.min((bytes - written) as usize);
        for (i, b) in chunk[..n].iter_mut().enumerate() {
            *b = ((written as usize + i) % 253) as u8;
        }
        p.write(fd, &chunk[..n]).await?;
        written += n as u64;
    }
    p.close(fd).await?;
    Ok(())
}

async fn copy_stream(p: &Proc, src: Fd, dst: Fd, limit: u64) -> Result<u64> {
    let mut moved = 0u64;
    while moved < limit {
        let want = CHUNK.min((limit - moved) as usize) as u32;
        let data = p.read(src, want).await?;
        if data.is_empty() {
            break;
        }
        p.write(dst, &data).await?;
        moved += data.len() as u64;
    }
    Ok(moved)
}

/// Runs the external sort; returns the elapsed virtual time.
pub async fn run_sort(p: &Proc, params: SortParams, cfg: &SortConfig) -> Result<SimDuration> {
    let t0 = p.sim().now();
    let mut temp_seq = 0u64;
    // ---- Run generation --------------------------------------------------
    let input = p.open(&cfg.input_path, OpenFlags::read()).await?;
    let mut runs: Vec<(String, u64)> = Vec::new();
    loop {
        // Fill the run buffer.
        let mut buf_len = 0u64;
        let mut chunks: Vec<Vec<u8>> = Vec::new();
        while buf_len < params.run_size {
            let data = p
                .read(
                    input,
                    CHUNK.min((params.run_size - buf_len) as usize) as u32,
                )
                .await?;
            if data.is_empty() {
                break;
            }
            buf_len += data.len() as u64;
            chunks.push(data);
        }
        if buf_len == 0 {
            break;
        }
        // Sort it.
        p.compute(params.sort_cpu_per_kb.mul_f64(buf_len as f64 / 1024.0))
            .await;
        // Write the run to a temp file.
        let path = format!("{}/srt{:04}", cfg.tmp_dir, temp_seq);
        temp_seq += 1;
        let fd = p.open(&path, OpenFlags::create_write()).await?;
        for c in &chunks {
            p.write(fd, c).await?;
        }
        p.close(fd).await?;
        runs.push((path, buf_len));
    }
    p.close(input).await?;
    // ---- Merge passes ----------------------------------------------------
    while runs.len() > 1 {
        let last_pass = runs.len() <= params.merge_ways;
        let mut next: Vec<(String, u64)> = Vec::new();
        for group in runs.chunks(params.merge_ways) {
            let total: u64 = group.iter().map(|&(_, s)| s).sum();
            let out_path = if last_pass {
                cfg.output_path.clone()
            } else {
                let path = format!("{}/srt{:04}", cfg.tmp_dir, temp_seq);
                temp_seq += 1;
                path
            };
            let out = p.open(&out_path, OpenFlags::create_write()).await?;
            // Open all inputs and read them round-robin (merge order).
            let mut fds = Vec::new();
            for (path, _) in group {
                fds.push(p.open(path, OpenFlags::read()).await?);
            }
            let mut open_fds: Vec<Fd> = fds.clone();
            let mut moved = 0u64;
            while !open_fds.is_empty() {
                let mut still = Vec::new();
                for &fd in &open_fds {
                    let data = p.read(fd, CHUNK as u32).await?;
                    if data.is_empty() {
                        continue;
                    }
                    moved += data.len() as u64;
                    p.compute(params.merge_cpu_per_kb.mul_f64(data.len() as f64 / 1024.0))
                        .await;
                    p.write(out, &data).await?;
                    still.push(fd);
                }
                open_fds = still;
            }
            debug_assert_eq!(moved, total, "merge moved every byte");
            for fd in fds {
                p.close(fd).await?;
            }
            p.close(out).await?;
            // Delete the merged inputs — the temp-file cancellation case.
            for (path, _) in group {
                p.unlink(path).await?;
            }
            next.push((out_path, total));
        }
        runs = next;
        if last_pass {
            break;
        }
    }
    // Degenerate input (one run): it *is* the output.
    if runs.len() == 1 && runs[0].0 != cfg.output_path {
        let (path, size) = &runs[0];
        let src = p.open(path, OpenFlags::read()).await?;
        let dst = p.open(&cfg.output_path, OpenFlags::create_write()).await?;
        copy_stream(p, src, dst, *size).await?;
        p.close(src).await?;
        p.close(dst).await?;
        p.unlink(path).await?;
    }
    Ok(p.sim().now().duration_since(t0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_params_pass_counts() {
        // Validate the temp-traffic model against the paper's column.
        let passes = |n: u64| {
            let p = SortParams::paper(n);
            let runs = n.div_ceil(p.run_size);
            let mut levels = 0u64;
            let mut r = runs;
            while r > 1 {
                levels += 1;
                r = r.div_ceil(p.merge_ways as u64);
            }
            // Temp bytes = runs (1×N) + all but the final merge level.
            1 + levels.saturating_sub(1)
        };
        assert_eq!(passes(281 * 1024), 1); // ≈ 304 k temp
        assert_eq!(passes(1408 * 1024), 2); // ≈ 2170 k temp
        assert_eq!(passes(2816 * 1024), 3); // ≈ 7764 k temp
    }
}
