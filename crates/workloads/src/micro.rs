//! Microbenchmarks.

use spritely_proto::Result;
use spritely_sim::SimDuration;
use spritely_vfs::{OpenFlags, Proc};

const CHUNK: usize = 4096;

/// Result of the §5.3 write-close-reopen-read probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReopenResult {
    /// Time to write and close the file.
    pub write_time: SimDuration,
    /// Time to reopen and read it fully.
    pub read_time: SimDuration,
}

/// The SunOS microbenchmark of §5.3: write a large file, close it, then
/// open and read either the same file (`reread_same = true`) or a
/// different pre-existing file of the same size.
///
/// On a client that invalidates its cache at close, the two cases cost
/// the same; on a fixed client, re-reading the same file is nearly free.
pub async fn write_close_reopen_read(
    p: &Proc,
    path: &str,
    other_path: Option<&str>,
    bytes: u64,
) -> Result<ReopenResult> {
    let t0 = p.sim().now();
    let fd = p.open(path, OpenFlags::create_write()).await?;
    let mut written = 0u64;
    let chunk = vec![0xA5u8; CHUNK];
    while written < bytes {
        let n = CHUNK.min((bytes - written) as usize);
        p.write(fd, &chunk[..n]).await?;
        written += n as u64;
    }
    p.close(fd).await?;
    let t1 = p.sim().now();
    let read_path = other_path.unwrap_or(path);
    let fd = p.open(read_path, OpenFlags::read()).await?;
    loop {
        let data = p.read(fd, CHUNK as u32).await?;
        if data.is_empty() {
            break;
        }
    }
    p.close(fd).await?;
    let t2 = p.sim().now();
    Ok(ReopenResult {
        write_time: t1.duration_since(t0),
        read_time: t2.duration_since(t1),
    })
}

/// Creates a temp file of `bytes`, lets it linger for `lifetime`, then
/// deletes it. Under SNFS, a lifetime below the write-delay means the
/// data never reaches the server (§5.4); under NFS it always does.
pub async fn temp_file_lifetime(
    p: &Proc,
    path: &str,
    bytes: u64,
    lifetime: SimDuration,
) -> Result<()> {
    let fd = p.open(path, OpenFlags::create_write()).await?;
    let mut written = 0u64;
    let chunk = vec![0x5Au8; CHUNK];
    while written < bytes {
        let n = CHUNK.min((bytes - written) as usize);
        p.write(fd, &chunk[..n]).await?;
        written += n as u64;
    }
    p.close(fd).await?;
    p.sim().sleep(lifetime).await;
    p.unlink(path).await?;
    Ok(())
}
