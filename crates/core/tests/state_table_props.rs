//! Property-based tests for the SNFS server state table: arbitrary
//! interleavings of opens, closes, crashes and removals must preserve the
//! consistency invariants Table 4-1 encodes.

use proptest::prelude::*;
use spritely_core::{FileState, StateTable};
use spritely_proto::{ClientId, FileHandle, FileVersion};
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    Open { file: u8, client: u8, write: bool },
    Close { file: u8, client: u8, write: bool },
    Crash { client: u8 },
    Remove { file: u8 },
    WritebackDone { file: u8, client: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u8..4, 0u8..3, any::<bool>())
            .prop_map(|(file, client, write)| Op::Open { file, client, write }),
        4 => (0u8..4, 0u8..3, any::<bool>())
            .prop_map(|(file, client, write)| Op::Close { file, client, write }),
        1 => (0u8..3).prop_map(|client| Op::Crash { client }),
        1 => (0u8..4).prop_map(|file| Op::Remove { file }),
        1 => (0u8..4, 0u8..3)
            .prop_map(|(file, client)| Op::WritebackDone { file, client }),
    ]
}

fn fh(n: u8) -> FileHandle {
    FileHandle::new(1, u64::from(n) + 10, 0)
}

/// A minimal reference model: per file, the multiset of (client, write)
/// opens the table *should* believe in, given that we only issue closes
/// the model considers open (mirroring real clients, which never close
/// what they did not open).
#[derive(Default)]
struct Model {
    opens: HashMap<(u8, u8), (u32, u32)>, // (file, client) -> (readers, writers)
}

impl Model {
    fn open(&mut self, file: u8, client: u8, write: bool) {
        let e = self.opens.entry((file, client)).or_default();
        if write {
            e.1 += 1;
        } else {
            e.0 += 1;
        }
    }

    fn can_close(&self, file: u8, client: u8, write: bool) -> bool {
        match self.opens.get(&(file, client)) {
            Some(&(r, w)) => {
                if write {
                    w > 0
                } else {
                    r > 0
                }
            }
            None => false,
        }
    }

    fn close(&mut self, file: u8, client: u8, write: bool) {
        if let Some(e) = self.opens.get_mut(&(file, client)) {
            if write {
                e.1 = e.1.saturating_sub(1);
            } else {
                e.0 = e.0.saturating_sub(1);
            }
        }
    }

    fn crash(&mut self, client: u8) {
        self.opens.retain(|&(_, c), _| c != client);
    }

    fn remove(&mut self, file: u8) {
        self.opens.retain(|&(f, _), _| f != file);
    }

    fn writers(&self, file: u8) -> u32 {
        self.opens
            .iter()
            .filter(|(&(f, _), _)| f == file)
            .map(|(_, &(_, w))| w)
            .sum()
    }

    fn client_hosts(&self, file: u8) -> usize {
        self.opens
            .iter()
            .filter(|(&(f, _), &(r, w))| f == file && (r > 0 || w > 0))
            .count()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn table_state_is_consistent_with_the_open_multiset(
        ops in proptest::collection::vec(op_strategy(), 1..120)
    ) {
        let mut table = StateTable::new(1000);
        let mut model = Model::default();
        let mut last_version: HashMap<u8, FileVersion> = HashMap::new();
        for op in ops {
            match op {
                Op::Open { file, client, write } => {
                    let out = table.open(fh(file), ClientId(u32::from(client)), write);
                    model.open(file, client, write);
                    // Version monotonicity: write opens strictly increase,
                    // read opens never decrease.
                    if let Some(&prev) = last_version.get(&file) {
                        if write {
                            prop_assert!(out.version > prev, "write open bumps version");
                        } else {
                            prop_assert!(out.version >= prev);
                        }
                    }
                    last_version.insert(file, out.version);
                    // Callbacks never target the opener.
                    for cb in &out.callbacks {
                        prop_assert_ne!(cb.target, ClientId(u32::from(client)));
                    }
                    // A write-shared file is never cachable.
                    if model.writers(file) > 0 && model.client_hosts(file) > 1 {
                        prop_assert!(!out.cache_enabled,
                            "multiple hosts with a writer must not cache");
                    }
                }
                Op::Close { file, client, write } => {
                    // Clients only close what they opened.
                    if model.can_close(file, client, write) {
                        table.close(fh(file), ClientId(u32::from(client)), write);
                        model.close(file, client, write);
                    }
                }
                Op::Crash { client } => {
                    table.client_crashed(ClientId(u32::from(client)));
                    model.crash(client);
                }
                Op::Remove { file } => {
                    table.file_removed(fh(file));
                    model.remove(file);
                    last_version.remove(&file);
                }
                Op::WritebackDone { file, client } => {
                    table.writeback_done(fh(file), ClientId(u32::from(client)));
                }
            }
            // Global invariants after every step.
            for file in 0..4u8 {
                let hosts = model.client_hosts(file);
                let writers = model.writers(file);
                let state = table.state_of(fh(file));
                // Host count must agree with the table's client list.
                let table_hosts = table.clients_of(fh(file)).len();
                prop_assert_eq!(table_hosts, hosts, "file {} host count", file);
                // State classification vs. the open multiset.
                match state {
                    FileState::Closed | FileState::ClosedDirty => {
                        prop_assert_eq!(hosts, 0)
                    }
                    FileState::OneReader | FileState::OneRdrDirty => {
                        prop_assert_eq!(hosts, 1);
                        prop_assert_eq!(writers, 0);
                    }
                    FileState::OneWriter => {
                        prop_assert_eq!(hosts, 1);
                        prop_assert!(writers > 0);
                    }
                    FileState::MultReaders => {
                        prop_assert!(hosts >= 2);
                        prop_assert_eq!(writers, 0);
                    }
                    FileState::WriteShared => {
                        prop_assert!(hosts >= 1);
                    }
                }
            }
        }
    }

    #[test]
    fn reclaim_never_loses_open_files(
        n_files in 1usize..40,
        limit in 2usize..10,
    ) {
        let mut table = StateTable::new(limit.max(2));
        // Open half the files and keep them open; open+close the rest.
        let mut kept = Vec::new();
        for i in 0..n_files {
            let f = fh(i as u8);
            table.open(f, ClientId(1), i % 3 == 0);
            if i % 2 == 0 {
                kept.push((f, i % 3 == 0));
            } else {
                table.close(f, ClientId(1), i % 3 == 0);
            }
        }
        let _victims = table.reclaim(limit / 2);
        // Every still-open file must still be tracked correctly.
        for (f, write) in kept {
            let st = table.state_of(f);
            prop_assert_ne!(st, FileState::Closed, "open file reclaimed");
            let _ = write;
        }
    }

    #[test]
    fn versions_are_never_reused_across_files(
        writes in proptest::collection::vec((0u8..6, any::<bool>()), 1..60)
    ) {
        let mut table = StateTable::new(1000);
        let mut seen = std::collections::HashSet::new();
        let mut current: HashMap<u8, FileVersion> = HashMap::new();
        for (file, write) in writes {
            let out = table.open(fh(file), ClientId(1), write);
            table.close(fh(file), ClientId(1), write);
            if write {
                // Freshly issued version must be globally unique.
                prop_assert!(seen.insert(out.version), "version reuse");
            } else if let Some(&v) = current.get(&file) {
                prop_assert_eq!(out.version, v);
            } else {
                // First contact: unique issue as well.
                prop_assert!(seen.insert(out.version), "version reuse");
            }
            current.insert(file, out.version);
        }
    }
}
