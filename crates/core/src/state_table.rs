//! The SNFS server state table (paper §4.3).
//!
//! "Most of the code added to support SNFS is in the state table manager
//! module" — and the same is true here. The table tracks, per file: the
//! version number, which clients have it open (with per-client reader and
//! writer counts, since one client host may have several processes using
//! the file), whether a closed file's last writer may still hold dirty
//! blocks, and the sticky non-cachable flag for write-shared files.
//!
//! This module is pure state (no I/O, no timing): `open`/`close` return
//! the callbacks the *service layer* must perform, and the service reports
//! back with [`StateTable::writeback_done`] / [`StateTable::client_crashed`].
//! That split makes the Table 4-1 transition rules directly testable.

use std::collections::HashMap;

use spritely_proto::{ClientId, Delegation, FileHandle, FileVersion};

/// The seven file states of paper §4.3.4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FileState {
    /// Not open by any client.
    Closed,
    /// Not open, but the last writer may still have dirty blocks.
    ClosedDirty,
    /// Open read-only by one client.
    OneReader,
    /// Open read-only by one client which may have dirty blocks cached
    /// from a previous open (or a pending write-back from another client).
    OneRdrDirty,
    /// Open read-only by two or more clients.
    MultReaders,
    /// Open read-write by one client.
    OneWriter,
    /// Open by two or more clients, at least one of them writing; no
    /// client may cache.
    WriteShared,
}

impl From<FileState> for spritely_trace::FState {
    fn from(s: FileState) -> Self {
        match s {
            FileState::Closed => spritely_trace::FState::Closed,
            FileState::ClosedDirty => spritely_trace::FState::ClosedDirty,
            FileState::OneReader => spritely_trace::FState::OneReader,
            FileState::OneRdrDirty => spritely_trace::FState::OneRdrDirty,
            FileState::MultReaders => spritely_trace::FState::MultReaders,
            FileState::OneWriter => spritely_trace::FState::OneWriter,
            FileState::WriteShared => spritely_trace::FState::WriteShared,
        }
    }
}

/// Per-client open counts within one entry (the "client information
/// block" of §4.3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientOpens {
    /// The client host.
    pub client: ClientId,
    /// Processes with the file open for reading at that host.
    pub readers: u32,
    /// Processes with the file open for writing at that host.
    pub writers: u32,
}

/// A callback the service layer must perform before replying to an open.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallbackNeeded {
    /// Which client to call back.
    pub target: ClientId,
    /// Ask the client to write its dirty blocks back first.
    pub writeback: bool,
    /// Ask the client to invalidate its cache and stop caching.
    pub invalidate: bool,
}

/// What [`StateTable::reclaim`] did and what it still needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReclaimOutcome {
    /// Cleanly-closed entries dropped outright.
    pub dropped: Vec<FileHandle>,
    /// Closed-dirty entries that need a write-back callback before they
    /// can be dropped.
    pub writebacks: Vec<(FileHandle, ClientId)>,
}

/// The table's answer to an `open` RPC.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpenOutcome {
    /// May the opener cache the file?
    pub cache_enabled: bool,
    /// Version after this open.
    pub version: FileVersion,
    /// Version before the most recent open-for-write.
    pub prev_version: FileVersion,
    /// True if a crashed client may have lost dirty data for this file.
    pub inconsistent: bool,
    /// Callbacks the service must perform before replying.
    pub callbacks: Vec<CallbackNeeded>,
}

/// One live delegation recorded against an entry (DESIGN.md §17).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deleg {
    /// The client holding the delegation.
    pub holder: ClientId,
    /// True for a write (exclusive) delegation.
    pub write: bool,
}

#[derive(Debug)]
struct Entry {
    version: FileVersion,
    prev_version: FileVersion,
    clients: Vec<ClientOpens>,
    /// Client that may hold dirty blocks (set when a caching writer
    /// closes; cleared by a confirmed write-back).
    dirty: Option<ClientId>,
    /// Sticky while the file is write-shared: cleared only when the file
    /// is fully closed (clients cannot be told to *resume* caching).
    uncached: bool,
    /// Set when a client holding dirty blocks crashed.
    inconsistent: bool,
    /// Live delegations: any number of read delegations, or exactly one
    /// write delegation (DESIGN.md §17).
    delegs: Vec<Deleg>,
    /// Holders whose delegation was revoked after a recall timeout. A late
    /// return from a fenced holder must be discarded, not applied.
    fenced: Vec<ClientId>,
}

impl Entry {
    fn state(&self) -> FileState {
        if self.clients.is_empty() {
            if self.dirty.is_some() {
                FileState::ClosedDirty
            } else {
                FileState::Closed
            }
        } else if self.uncached {
            FileState::WriteShared
        } else if self.clients.len() == 1 {
            let c = &self.clients[0];
            if c.writers > 0 {
                FileState::OneWriter
            } else if self.dirty.is_some() {
                FileState::OneRdrDirty
            } else {
                FileState::OneReader
            }
        } else {
            // Multiple caching clients can only be readers; a writer would
            // have set `uncached`.
            FileState::MultReaders
        }
    }

    fn opens_of(&mut self, client: ClientId) -> &mut ClientOpens {
        if let Some(i) = self.clients.iter().position(|c| c.client == client) {
            &mut self.clients[i]
        } else {
            self.clients.push(ClientOpens {
                client,
                readers: 0,
                writers: 0,
            });
            self.clients.last_mut().expect("just pushed")
        }
    }
}

/// Statistics about table behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TableStats {
    /// Entries dropped because they were cleanly closed (reclaim).
    pub reclaimed_closed: u64,
    /// Version numbers handed out.
    pub versions_issued: u64,
}

/// The SNFS server state table.
///
/// # Examples
///
/// ```
/// use spritely_core::{FileState, StateTable};
/// use spritely_proto::{ClientId, FileHandle};
///
/// let mut table = StateTable::new(100);
/// let fh = FileHandle::new(1, 10, 0);
///
/// // A lone writer may cache.
/// let open = table.open(fh, ClientId(1), true);
/// assert!(open.cache_enabled);
/// assert_eq!(table.state_of(fh), FileState::OneWriter);
///
/// // A second host arrives: write-shared, caching disabled, and the
/// // writer owes a write-back + invalidate callback.
/// let open2 = table.open(fh, ClientId(2), false);
/// assert!(!open2.cache_enabled);
/// assert_eq!(open2.callbacks.len(), 1);
/// assert!(open2.callbacks[0].writeback && open2.callbacks[0].invalidate);
/// ```
pub struct StateTable {
    entries: HashMap<FileHandle, Entry>,
    /// Global version counter (paper §4.3.3 chose a global counter rather
    /// than per-file stable storage; we follow it).
    next_version: u64,
    limit: usize,
    stats: TableStats,
}

impl StateTable {
    /// Creates a table bounded to `limit` entries (paper §4.3.1: "we limit
    /// the number of entries in this table"; each entry was 68 bytes).
    ///
    /// # Panics
    ///
    /// Panics if `limit` is zero.
    pub fn new(limit: usize) -> Self {
        assert!(limit > 0, "state table needs at least one entry");
        StateTable {
            entries: HashMap::new(),
            next_version: 1,
            limit,
            stats: TableStats::default(),
        }
    }

    fn fresh_version(&mut self) -> FileVersion {
        let v = FileVersion(self.next_version);
        self.next_version += 1;
        self.stats.versions_issued += 1;
        v
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Drops every entry *and* the global version counter — the volatile
    /// state lost in a server crash. The counter is one of the "obvious
    /// problems" §4.3.3 concedes about a global in-memory counter; during
    /// recovery, [`restore`](Self::restore) raises it back above every
    /// version any surviving client reports.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.next_version = 1;
    }

    /// True if the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True if the table is at or over its configured limit.
    pub fn over_limit(&self) -> bool {
        self.entries.len() >= self.limit
    }

    /// Statistics so far.
    pub fn stats(&self) -> TableStats {
        self.stats
    }

    /// Current state of a file ([`FileState::Closed`] if untracked).
    pub fn state_of(&self, fh: FileHandle) -> FileState {
        self.entries
            .get(&fh)
            .map_or(FileState::Closed, Entry::state)
    }

    /// Current version of a file, if tracked.
    pub fn version_of(&self, fh: FileHandle) -> Option<FileVersion> {
        self.entries.get(&fh).map(|e| e.version)
    }

    /// The client recorded as possibly holding dirty blocks for `fh`.
    pub fn dirty_holder(&self, fh: FileHandle) -> Option<ClientId> {
        self.entries.get(&fh).and_then(|e| e.dirty)
    }

    /// Per-client open counts (for tests and debugging).
    pub fn clients_of(&self, fh: FileHandle) -> Vec<ClientOpens> {
        self.entries
            .get(&fh)
            .map(|e| e.clients.clone())
            .unwrap_or_default()
    }

    /// Handles an `open` RPC: computes the Table 4-1 transition, returning
    /// the callbacks that must complete before the reply is sent.
    pub fn open(&mut self, fh: FileHandle, client: ClientId, write: bool) -> OpenOutcome {
        if !self.entries.contains_key(&fh) {
            let v = self.fresh_version();
            self.entries.insert(
                fh,
                Entry {
                    version: v,
                    prev_version: v,
                    clients: Vec::new(),
                    dirty: None,
                    uncached: false,
                    inconsistent: false,
                    delegs: Vec::new(),
                    fenced: Vec::new(),
                },
            );
        }
        // Compute callbacks against the pre-open state.
        let mut callbacks = Vec::new();
        {
            let e = self.entries.get_mut(&fh).expect("inserted above");
            match e.state() {
                FileState::Closed => {}
                FileState::ClosedDirty => {
                    let last = e.dirty.expect("ClosedDirty implies a dirty holder");
                    if last != client {
                        // The newcomer needs the last writer's data at the
                        // server. If the newcomer writes, the version will
                        // change, so the old copy must also be invalidated.
                        callbacks.push(CallbackNeeded {
                            target: last,
                            writeback: true,
                            invalidate: write,
                        });
                    }
                }
                FileState::OneReader | FileState::MultReaders => {
                    // A writer arriving on *other* clients' reads makes the
                    // file write-shared. A sole reader upgrading itself to
                    // write keeps its cache (Table 4-1: ONE_READER →
                    // ONE_WRITER for the same client).
                    if write && e.clients.iter().any(|c| c.client != client) {
                        for c in &e.clients {
                            if c.client != client {
                                callbacks.push(CallbackNeeded {
                                    target: c.client,
                                    writeback: false,
                                    invalidate: true,
                                });
                            }
                        }
                        e.uncached = true;
                    }
                }
                FileState::OneRdrDirty => {
                    let holder = e.dirty.expect("OneRdrDirty implies a dirty holder");
                    if client != holder || !e.clients.iter().any(|c| c.client == client) {
                        // A different client arrives (or the dirty holder
                        // is not among the openers): flush the dirty data.
                        if write {
                            for c in &e.clients {
                                if c.client != client {
                                    callbacks.push(CallbackNeeded {
                                        target: c.client,
                                        writeback: c.client == holder,
                                        invalidate: true,
                                    });
                                }
                            }
                            if !e.clients.iter().any(|c| c.client == holder) && holder != client {
                                callbacks.push(CallbackNeeded {
                                    target: holder,
                                    writeback: true,
                                    invalidate: true,
                                });
                            }
                            e.uncached = true;
                        } else if holder != client {
                            callbacks.push(CallbackNeeded {
                                target: holder,
                                writeback: true,
                                invalidate: false,
                            });
                        }
                    } else if write {
                        // Same client upgrades to writing: nothing to do.
                    }
                }
                FileState::OneWriter => {
                    let w = e.clients[0].client;
                    if w != client {
                        // Concurrent sharing with a writer: the writer must
                        // flush and stop caching; the file becomes
                        // write-shared and nobody caches.
                        callbacks.push(CallbackNeeded {
                            target: w,
                            writeback: true,
                            invalidate: true,
                        });
                        e.uncached = true;
                    }
                }
                FileState::WriteShared => {}
            }
        }
        // Version bump for write opens (paper §4.3.3: "increases every
        // time the file is opened for writing").
        let bump = write;
        let v = if bump {
            Some(self.fresh_version())
        } else {
            None
        };
        let e = self.entries.get_mut(&fh).expect("inserted above");
        if let Some(v) = v {
            e.prev_version = e.version;
            e.version = v;
            // A new version supersedes whatever a crashed writer lost.
            if write {
                e.inconsistent = false;
            }
        }
        // Record the opener.
        let opens = e.opens_of(client);
        if write {
            opens.writers += 1;
        } else {
            opens.readers += 1;
        }
        OpenOutcome {
            cache_enabled: !e.uncached,
            version: e.version,
            prev_version: e.prev_version,
            inconsistent: e.inconsistent,
            callbacks,
        }
    }

    /// True if `client` is touching a tracked, active file it has no open
    /// for and no dirty claim on — i.e. a plain-NFS access to an
    /// SNFS-managed file (the §6.1 coexistence case).
    pub fn is_foreign_access(&self, fh: FileHandle, client: ClientId) -> bool {
        match self.entries.get(&fh) {
            None => false,
            Some(e) => {
                e.state() != FileState::Closed
                    && e.dirty != Some(client)
                    && !e.clients.iter().any(|c| c.client == client)
            }
        }
    }

    /// Handles a `close` RPC. `write` must match the mode of the
    /// corresponding open (paper §3.1).
    ///
    /// Returns the new state, for observability.
    pub fn close(&mut self, fh: FileHandle, client: ClientId, write: bool) -> FileState {
        self.close_with(fh, client, write, true)
    }

    /// [`close`](Self::close) with control over the dirty marking: a
    /// client that wrote *through* (an implicit §6.1 open by a plain NFS
    /// client) holds no delayed blocks, so it must not be recorded as a
    /// dirty last-writer.
    pub fn close_with(
        &mut self,
        fh: FileHandle,
        client: ClientId,
        write: bool,
        may_cache_dirty: bool,
    ) -> FileState {
        let Some(e) = self.entries.get_mut(&fh) else {
            return FileState::Closed;
        };
        let Some(i) = e.clients.iter().position(|c| c.client == client) else {
            return e.state();
        };
        let was_uncached = e.uncached;
        {
            let c = &mut e.clients[i];
            if write {
                c.writers = c.writers.saturating_sub(1);
            } else {
                c.readers = c.readers.saturating_sub(1);
            }
        }
        // A caching writer that drops its last write-open may still hold
        // dirty blocks (delayed write-back!). Record it as the last
        // writer. Uncached (write-shared) clients wrote through, so there
        // is nothing dirty.
        if write && !was_uncached && may_cache_dirty && e.clients[i].writers == 0 {
            e.dirty = Some(client);
        }
        if e.clients[i].readers == 0 && e.clients[i].writers == 0 {
            e.clients.remove(i);
        }
        if e.clients.is_empty() {
            e.uncached = false;
        }
        e.state()
    }

    /// The service confirms that `client` wrote its dirty blocks back.
    pub fn writeback_done(&mut self, fh: FileHandle, client: ClientId) {
        if let Some(e) = self.entries.get_mut(&fh) {
            if e.dirty == Some(client) {
                e.dirty = None;
            }
        }
    }

    /// Decides whether the open just recorded for `client` can carry a
    /// delegation (DESIGN.md §17). Call *after* [`open`](Self::open), once
    /// its callbacks have completed.
    ///
    /// A write delegation requires the opener to be the file's only user
    /// (`OneWriter`); read delegations may be held by any number of
    /// clients as long as nobody writes. Uncachable or inconsistent files
    /// never carry delegations, and foreign dirty data (a different
    /// client's unflushed blocks) blocks a grant.
    pub fn grantable_delegation(
        &self,
        fh: FileHandle,
        client: ClientId,
        write: bool,
    ) -> Option<Delegation> {
        let e = self.entries.get(&fh)?;
        if e.uncached || e.inconsistent {
            return None;
        }
        if e.dirty.is_some_and(|d| d != client) {
            return None;
        }
        let held = e.delegs.iter().find(|d| d.holder == client).copied();
        if write {
            let sole = e.clients.len() == 1 && e.clients[0].client == client;
            let foreign_deleg = e.delegs.iter().any(|d| d.holder != client);
            if sole && !foreign_deleg {
                Some(Delegation::Write)
            } else {
                None
            }
        } else {
            let any_writer = e.clients.iter().any(|c| c.writers > 0);
            let foreign_write_deleg = e.delegs.iter().any(|d| d.write && d.holder != client);
            if any_writer || foreign_write_deleg {
                return None;
            }
            // Already holding a covering delegation: nothing new to grant.
            if held.is_some() {
                return None;
            }
            Some(Delegation::Read)
        }
    }

    /// Records a delegation grant for `client` (replacing any delegation
    /// it already holds on the file) and lifts its fence, if any.
    pub fn grant_delegation(&mut self, fh: FileHandle, client: ClientId, write: bool) {
        if let Some(e) = self.entries.get_mut(&fh) {
            e.delegs.retain(|d| d.holder != client);
            e.delegs.push(Deleg {
                holder: client,
                write,
            });
            e.fenced.retain(|&c| c != client);
        }
    }

    /// The delegation `client` holds on `fh`, if any.
    pub fn delegation_of(&self, fh: FileHandle, client: ClientId) -> Option<Deleg> {
        self.entries
            .get(&fh)?
            .delegs
            .iter()
            .find(|d| d.holder == client)
            .copied()
    }

    /// All live delegations on `fh` (for tests and debugging).
    pub fn delegations_of(&self, fh: FileHandle) -> Vec<Deleg> {
        self.entries
            .get(&fh)
            .map(|e| e.delegs.clone())
            .unwrap_or_default()
    }

    /// Delegations held by *other* clients that conflict with `client`
    /// opening in the given mode and must be recalled first: a write open
    /// conflicts with every foreign delegation, a read open only with a
    /// foreign write delegation. Sorted by holder for determinism.
    pub fn conflicting_delegations(
        &self,
        fh: FileHandle,
        client: ClientId,
        write: bool,
    ) -> Vec<Deleg> {
        let Some(e) = self.entries.get(&fh) else {
            return Vec::new();
        };
        let mut out: Vec<Deleg> = e
            .delegs
            .iter()
            .filter(|d| d.holder != client && (write || d.write))
            .copied()
            .collect();
        out.sort_unstable_by_key(|d| d.holder);
        out
    }

    /// Applies a returned delegation: replaces the holder's recorded open
    /// counts with the state it accumulated while serving opens locally,
    /// and bumps the file version if it wrote (so other clients' cached
    /// copies stop validating). Returns the resulting version, or `None`
    /// if the holder was fenced (revoked after a recall timeout) or the
    /// entry is gone — in both cases the reported state is discarded.
    pub fn return_delegation(
        &mut self,
        fh: FileHandle,
        client: ClientId,
        readers: u32,
        writers: u32,
        wrote: bool,
    ) -> Option<FileVersion> {
        let fenced = self
            .entries
            .get(&fh)
            .is_some_and(|e| e.fenced.contains(&client));
        if fenced {
            let e = self.entries.get_mut(&fh).expect("checked above");
            e.fenced.retain(|&c| c != client);
            return None;
        }
        self.entries.get(&fh)?;
        let v = if wrote {
            Some(self.fresh_version())
        } else {
            None
        };
        let e = self.entries.get_mut(&fh).expect("checked above");
        let had = e.delegs.iter().any(|d| d.holder == client);
        e.delegs.retain(|d| d.holder != client);
        if !had {
            return Some(e.version);
        }
        if let Some(v) = v {
            e.prev_version = e.version;
            e.version = v;
            // The holder's (flushed) data supersedes whatever a crashed
            // writer may have lost.
            e.inconsistent = false;
        }
        if let Some(i) = e.clients.iter().position(|c| c.client == client) {
            if readers == 0 && writers == 0 {
                e.clients.remove(i);
            } else {
                e.clients[i].readers = readers;
                e.clients[i].writers = writers;
            }
        } else if readers > 0 || writers > 0 {
            e.clients.push(ClientOpens {
                client,
                readers,
                writers,
            });
        }
        if e.clients.is_empty() {
            e.uncached = false;
        }
        Some(e.version)
    }

    /// Revokes `client`'s delegation after a recall timed out: the holder
    /// is treated as crashed *for this file* — its delegation, open counts
    /// and dirty claim are dropped, and it is fenced so a late return is
    /// discarded. A revoked write delegation may have lost locally-buffered
    /// writes, so the file is flagged inconsistent (paper §3.2 semantics).
    ///
    /// Returns true if a delegation was actually revoked.
    pub fn revoke_delegation(&mut self, fh: FileHandle, client: ClientId) -> bool {
        let Some(e) = self.entries.get_mut(&fh) else {
            return false;
        };
        let Some(i) = e.delegs.iter().position(|d| d.holder == client) else {
            return false;
        };
        let was_write = e.delegs[i].write;
        e.delegs.remove(i);
        if !e.fenced.contains(&client) {
            e.fenced.push(client);
        }
        e.clients.retain(|c| c.client != client);
        if e.dirty == Some(client) {
            e.dirty = None;
            e.inconsistent = true;
        }
        if was_write {
            e.inconsistent = true;
        }
        if e.clients.is_empty() {
            e.uncached = false;
        }
        true
    }

    /// True if `client` was fenced on `fh` (revoked, return pending).
    pub fn is_fenced(&self, fh: FileHandle, client: ClientId) -> bool {
        self.entries
            .get(&fh)
            .is_some_and(|e| e.fenced.contains(&client))
    }

    /// Number of live delegations across all entries.
    pub fn delegation_count(&self) -> usize {
        self.entries.values().map(|e| e.delegs.len()).sum()
    }

    /// A file was removed: its state is no longer meaningful.
    pub fn file_removed(&mut self, fh: FileHandle) {
        self.entries.remove(&fh);
    }

    /// A client is unreachable: drop all of its opens. Files for which it
    /// held dirty blocks are flagged inconsistent (reported on the next
    /// open, cleared by the next open-for-write). Returns the affected
    /// files with their before/after states, sorted by handle (a
    /// deterministic order, independent of hash-map iteration).
    pub fn client_crashed(&mut self, client: ClientId) -> Vec<(FileHandle, FileState, FileState)> {
        let mut affected = Vec::new();
        for (&fh, e) in self.entries.iter_mut() {
            let state_before = e.state();
            let before = e.clients.len();
            e.clients.retain(|c| c.client != client);
            let mut touched = before != e.clients.len();
            if e.dirty == Some(client) {
                e.dirty = None;
                e.inconsistent = true;
                touched = true;
            }
            // A crashed write-delegation holder may have lost local writes
            // it never reported; a crashed read holder just disappears.
            if let Some(i) = e.delegs.iter().position(|d| d.holder == client) {
                if e.delegs[i].write {
                    e.inconsistent = true;
                }
                e.delegs.remove(i);
                touched = true;
            }
            e.fenced.retain(|&c| c != client);
            if e.clients.is_empty() {
                e.uncached = false;
            }
            if touched {
                affected.push((fh, state_before, e.state()));
            }
        }
        affected.sort_unstable_by_key(|&(fh, _, _)| fh);
        affected
    }

    /// Frees cleanly-closed entries and returns the write-back callbacks
    /// needed to free closed-dirty ones (paper §4.3.1: "when entries run
    /// low, those recording closed files may be reclaimed by sending
    /// callbacks"). Reclaims down toward `target` entries. The outcome
    /// lists both what was dropped and what still needs a write-back.
    pub fn reclaim(&mut self, target: usize) -> ReclaimOutcome {
        // Pass 1: drop Closed entries outright.
        let mut to_drop: Vec<FileHandle> = self
            .entries
            .iter()
            .filter(|(_, e)| e.state() == FileState::Closed && e.delegs.is_empty())
            .map(|(&fh, _)| fh)
            .collect();
        to_drop.sort_unstable(); // deterministic order
        let mut dropped = Vec::new();
        for fh in to_drop {
            if self.entries.len() <= target {
                break;
            }
            self.entries.remove(&fh);
            self.stats.reclaimed_closed += 1;
            dropped.push(fh);
        }
        if self.entries.len() <= target {
            return ReclaimOutcome {
                dropped,
                writebacks: Vec::new(),
            };
        }
        // Pass 2: closed-dirty entries need a write-back callback first.
        let mut writebacks: Vec<(FileHandle, ClientId)> = self
            .entries
            .iter()
            .filter(|(_, e)| e.state() == FileState::ClosedDirty)
            .map(|(&fh, e)| (fh, e.dirty.expect("ClosedDirty implies holder")))
            .collect();
        writebacks.sort_unstable();
        writebacks.truncate(self.entries.len() - target);
        ReclaimOutcome {
            dropped,
            writebacks,
        }
    }

    /// Rebuilds table state from one client's recovery report (§2.4:
    /// "the clients together 'know' who is caching the file, and the
    /// server can reconstruct its state from the clients").
    ///
    /// Safe to apply reports from several clients in any order: opens
    /// accumulate, the version floor only rises, and the write-shared
    /// stickiness re-derives once a writer plus another host coexist.
    pub fn restore(&mut self, client: ClientId, files: &[spritely_proto::RecoveredFile]) {
        for f in files {
            // The version counter must never re-issue a number a client
            // still holds.
            if let Some(v) = f.cached_version {
                if v.0 >= self.next_version {
                    self.next_version = v.0 + 1;
                }
            }
            let needs_entry = f.readers > 0 || f.writers > 0 || f.dirty;
            if !needs_entry {
                continue;
            }
            let version = f.cached_version.unwrap_or_else(|| {
                let v = FileVersion(self.next_version);
                self.next_version += 1;
                v
            });
            let e = self.entries.entry(f.fh).or_insert(Entry {
                version,
                prev_version: version,
                clients: Vec::new(),
                dirty: None,
                uncached: false,
                inconsistent: false,
                delegs: Vec::new(),
                fenced: Vec::new(),
            });
            if e.version < version {
                e.prev_version = e.version;
                e.version = version;
            }
            if f.readers > 0 || f.writers > 0 {
                let opens = e.opens_of(client);
                opens.readers = f.readers;
                opens.writers = f.writers;
            }
            if f.dirty {
                e.dirty = Some(client);
            }
            // Re-derive write-shared stickiness: a writer coexisting with
            // any other host means nobody was caching before the crash.
            let hosts = e.clients.len();
            let writers: u32 = e.clients.iter().map(|c| c.writers).sum();
            if writers > 0 && hosts > 1 {
                e.uncached = true;
            }
        }
    }

    /// Drops an entry if it is now cleanly closed (used after a reclaim
    /// write-back completes).
    pub fn drop_if_closed(&mut self, fh: FileHandle) -> bool {
        if self
            .entries
            .get(&fh)
            .is_some_and(|e| e.state() == FileState::Closed && e.delegs.is_empty())
        {
            self.entries.remove(&fh);
            self.stats.reclaimed_closed += 1;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const C1: ClientId = ClientId(1);
    const C2: ClientId = ClientId(2);
    const C3: ClientId = ClientId(3);

    fn fh(n: u64) -> FileHandle {
        FileHandle::new(1, n, 0)
    }

    fn table() -> StateTable {
        StateTable::new(1000)
    }

    #[test]
    fn closed_to_one_reader_cacheable() {
        let mut t = table();
        let o = t.open(fh(1), C1, false);
        assert!(o.cache_enabled);
        assert!(o.callbacks.is_empty());
        assert_eq!(t.state_of(fh(1)), FileState::OneReader);
    }

    #[test]
    fn closed_to_one_writer_bumps_version() {
        let mut t = table();
        let o1 = t.open(fh(1), C1, false);
        t.close(fh(1), C1, false);
        let o2 = t.open(fh(1), C1, true);
        assert!(o2.cache_enabled);
        assert_eq!(t.state_of(fh(1)), FileState::OneWriter);
        assert!(o2.version > o1.version, "write open bumps version");
        assert_eq!(o2.prev_version, o1.version);
    }

    #[test]
    fn reader_cache_valid_across_reopen() {
        // The crucial difference from the buggy NFS client: versions let a
        // reader keep its cache across close/reopen.
        let mut t = table();
        let o1 = t.open(fh(1), C1, false);
        t.close(fh(1), C1, false);
        let o2 = t.open(fh(1), C1, false);
        assert_eq!(o1.version, o2.version, "no writer → same version");
    }

    #[test]
    fn writer_cache_valid_via_prev_version() {
        let mut t = table();
        let o1 = t.open(fh(1), C1, true);
        t.close(fh(1), C1, true);
        // Reopen for write: version bumps, but prev matches the writer's
        // cached version, so its cache is valid (paper §3.1).
        let o2 = t.open(fh(1), C1, true);
        assert!(o2.version > o1.version);
        assert_eq!(o2.prev_version, o1.version);
    }

    #[test]
    fn second_reader_makes_mult_readers() {
        let mut t = table();
        t.open(fh(1), C1, false);
        let o = t.open(fh(1), C2, false);
        assert!(o.cache_enabled);
        assert!(o.callbacks.is_empty());
        assert_eq!(t.state_of(fh(1)), FileState::MultReaders);
    }

    #[test]
    fn same_client_second_read_open_no_transition() {
        let mut t = table();
        t.open(fh(1), C1, false);
        t.open(fh(1), C1, false);
        assert_eq!(t.state_of(fh(1)), FileState::OneReader);
        assert_eq!(t.clients_of(fh(1))[0].readers, 2);
        t.close(fh(1), C1, false);
        assert_eq!(t.state_of(fh(1)), FileState::OneReader);
        t.close(fh(1), C1, false);
        assert_eq!(t.state_of(fh(1)), FileState::Closed);
    }

    #[test]
    fn writer_arriving_on_readers_invalidates_them() {
        let mut t = table();
        t.open(fh(1), C1, false);
        t.open(fh(1), C2, false);
        let o = t.open(fh(1), C3, true);
        assert!(!o.cache_enabled, "write-shared: nobody caches");
        let mut targets: Vec<ClientId> = o.callbacks.iter().map(|c| c.target).collect();
        targets.sort_unstable();
        assert_eq!(targets, vec![C1, C2]);
        assert!(o.callbacks.iter().all(|c| c.invalidate && !c.writeback));
        assert_eq!(t.state_of(fh(1)), FileState::WriteShared);
    }

    #[test]
    fn reader_arriving_on_writer_forces_writeback_and_invalidate() {
        let mut t = table();
        t.open(fh(1), C1, true);
        let o = t.open(fh(1), C2, false);
        assert!(!o.cache_enabled);
        assert_eq!(
            o.callbacks,
            vec![CallbackNeeded {
                target: C1,
                writeback: true,
                invalidate: true
            }]
        );
        assert_eq!(t.state_of(fh(1)), FileState::WriteShared);
    }

    #[test]
    fn reader_upgrading_to_writer_keeps_cache() {
        let mut t = table();
        t.open(fh(1), C1, false);
        let o = t.open(fh(1), C1, true);
        assert!(o.cache_enabled, "sole client may keep caching");
        assert!(o.callbacks.is_empty());
        assert_eq!(t.state_of(fh(1)), FileState::OneWriter);
    }

    #[test]
    fn writer_close_leaves_closed_dirty() {
        let mut t = table();
        t.open(fh(1), C1, true);
        let st = t.close(fh(1), C1, true);
        assert_eq!(st, FileState::ClosedDirty);
    }

    #[test]
    fn close_write_while_still_reading_gives_one_rdr_dirty() {
        // The garbled Table 4-1 row: a client with both read and write
        // opens closes the write but keeps reading.
        let mut t = table();
        t.open(fh(1), C1, false);
        t.open(fh(1), C1, true);
        let st = t.close(fh(1), C1, true);
        assert_eq!(st, FileState::OneRdrDirty);
        let st = t.close(fh(1), C1, false);
        assert_eq!(st, FileState::ClosedDirty);
    }

    #[test]
    fn closed_dirty_reopen_by_last_writer_is_quiet() {
        let mut t = table();
        t.open(fh(1), C1, true);
        t.close(fh(1), C1, true);
        let o = t.open(fh(1), C1, false);
        assert!(o.cache_enabled);
        assert!(o.callbacks.is_empty(), "own dirty data needs no callback");
        assert_eq!(t.state_of(fh(1)), FileState::OneRdrDirty);
    }

    #[test]
    fn closed_dirty_read_by_other_client_forces_writeback() {
        let mut t = table();
        t.open(fh(1), C1, true);
        t.close(fh(1), C1, true);
        let o = t.open(fh(1), C2, false);
        assert!(o.cache_enabled, "after write-back the reader may cache");
        assert_eq!(
            o.callbacks,
            vec![CallbackNeeded {
                target: C1,
                writeback: true,
                invalidate: false
            }]
        );
        t.writeback_done(fh(1), C1);
        assert_eq!(t.state_of(fh(1)), FileState::OneReader);
    }

    #[test]
    fn closed_dirty_write_by_other_client_also_invalidates() {
        let mut t = table();
        t.open(fh(1), C1, true);
        t.close(fh(1), C1, true);
        let o = t.open(fh(1), C2, true);
        assert!(o.cache_enabled, "sole writer may cache");
        assert_eq!(
            o.callbacks,
            vec![CallbackNeeded {
                target: C1,
                writeback: true,
                invalidate: true
            }]
        );
        t.writeback_done(fh(1), C1);
        assert_eq!(t.state_of(fh(1)), FileState::OneWriter);
    }

    #[test]
    fn one_rdr_dirty_other_reader_forces_writeback_then_mult_readers() {
        let mut t = table();
        t.open(fh(1), C1, true);
        t.close(fh(1), C1, true);
        t.open(fh(1), C1, false); // OneRdrDirty
        let o = t.open(fh(1), C2, false);
        assert!(o.cache_enabled);
        assert_eq!(
            o.callbacks,
            vec![CallbackNeeded {
                target: C1,
                writeback: true,
                invalidate: false
            }]
        );
        t.writeback_done(fh(1), C1);
        assert_eq!(t.state_of(fh(1)), FileState::MultReaders);
    }

    #[test]
    fn one_rdr_dirty_other_writer_goes_write_shared() {
        let mut t = table();
        t.open(fh(1), C1, true);
        t.close(fh(1), C1, true);
        t.open(fh(1), C1, false); // OneRdrDirty
        let o = t.open(fh(1), C2, true);
        assert!(!o.cache_enabled);
        assert_eq!(
            o.callbacks,
            vec![CallbackNeeded {
                target: C1,
                writeback: true,
                invalidate: true
            }]
        );
        assert_eq!(t.state_of(fh(1)), FileState::WriteShared);
    }

    #[test]
    fn write_shared_is_sticky_until_fully_closed() {
        let mut t = table();
        t.open(fh(1), C1, true);
        t.open(fh(1), C2, false); // → WriteShared
        t.close(fh(1), C1, true); // writer leaves...
        assert_eq!(
            t.state_of(fh(1)),
            FileState::WriteShared,
            "remaining reader cannot resume caching"
        );
        // A third open while sticky is still uncached, no callbacks.
        let o = t.open(fh(1), C3, false);
        assert!(!o.cache_enabled);
        assert!(o.callbacks.is_empty());
        t.close(fh(1), C2, false);
        t.close(fh(1), C3, false);
        assert_eq!(t.state_of(fh(1)), FileState::Closed);
        // After full close the stickiness resets.
        let o = t.open(fh(1), C1, false);
        assert!(o.cache_enabled);
    }

    #[test]
    fn uncached_writer_close_leaves_no_dirt() {
        let mut t = table();
        t.open(fh(1), C1, true);
        t.open(fh(1), C2, true); // write-shared
        t.close(fh(1), C1, true);
        t.close(fh(1), C2, true);
        assert_eq!(
            t.state_of(fh(1)),
            FileState::Closed,
            "write-through left nothing dirty"
        );
    }

    #[test]
    fn file_removed_drops_entry() {
        let mut t = table();
        t.open(fh(1), C1, true);
        t.file_removed(fh(1));
        assert_eq!(t.state_of(fh(1)), FileState::Closed);
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn client_crash_clears_opens_and_flags_dirty_files() {
        let mut t = table();
        t.open(fh(1), C1, true);
        t.close(fh(1), C1, true); // ClosedDirty (C1 holds dirt)
        t.open(fh(2), C1, false);
        t.open(fh(2), C2, false);
        let affected = t.client_crashed(C1);
        assert_eq!(affected.len(), 2);
        assert_eq!(
            affected[0],
            (fh(1), FileState::ClosedDirty, FileState::Closed),
            "dirty claim dropped"
        );
        assert_eq!(
            affected[1],
            (fh(2), FileState::MultReaders, FileState::OneReader),
            "C1's read open dropped"
        );
        // fh(1) lost its dirty data → next open reports inconsistent.
        let o = t.open(fh(1), C2, false);
        assert!(o.inconsistent);
        // A write-open supersedes the lost data.
        t.close(fh(1), C2, false);
        let o = t.open(fh(1), C2, true);
        assert!(!o.inconsistent || o.version > o.prev_version);
        t.close(fh(1), C2, true);
        let o = t.open(fh(1), C3, true);
        assert!(!o.inconsistent, "cleared by the earlier write open");
        // fh(2) still has C2 reading.
        assert_eq!(t.state_of(fh(2)), FileState::OneReader);
    }

    #[test]
    fn reclaim_drops_closed_first_then_asks_for_writebacks() {
        let mut t = StateTable::new(4);
        // Two cleanly closed, one closed-dirty, one open.
        t.open(fh(1), C1, false);
        t.close(fh(1), C1, false);
        t.open(fh(2), C1, false);
        t.close(fh(2), C1, false);
        t.open(fh(3), C1, true);
        t.close(fh(3), C1, true);
        t.open(fh(4), C1, false);
        assert!(t.over_limit());
        let out = t.reclaim(2);
        assert_eq!(t.len(), 2, "closed entries dropped");
        assert_eq!(out.dropped, vec![fh(1), fh(2)]);
        assert!(
            out.writebacks.is_empty(),
            "target met without touching dirty"
        );
        let out = t.reclaim(1);
        assert!(out.dropped.is_empty());
        assert_eq!(out.writebacks, vec![(fh(3), C1)]);
        // Service performs the write-back, confirms, drops.
        t.writeback_done(fh(3), C1);
        assert!(t.drop_if_closed(fh(3)));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn versions_are_globally_unique_and_increasing() {
        let mut t = table();
        let a = t.open(fh(1), C1, true);
        let b = t.open(fh(2), C1, true);
        assert!(b.version > a.version, "global counter");
    }

    #[test]
    fn close_of_unknown_file_is_harmless() {
        let mut t = table();
        assert_eq!(t.close(fh(9), C1, false), FileState::Closed);
    }

    #[test]
    fn mult_readers_partial_close_returns_to_one_reader() {
        let mut t = table();
        t.open(fh(1), C1, false);
        t.open(fh(1), C2, false);
        t.close(fh(1), C1, false);
        assert_eq!(t.state_of(fh(1)), FileState::OneReader);
    }

    #[test]
    fn write_delegation_only_for_sole_writer() {
        let mut t = table();
        t.open(fh(1), C1, true);
        assert_eq!(
            t.grantable_delegation(fh(1), C1, true),
            Some(Delegation::Write)
        );
        t.grant_delegation(fh(1), C1, true);
        assert_eq!(
            t.delegation_of(fh(1), C1),
            Some(Deleg {
                holder: C1,
                write: true
            })
        );
        // A second host's open must first recall C1's delegation.
        assert_eq!(
            t.conflicting_delegations(fh(1), C2, false),
            vec![Deleg {
                holder: C1,
                write: true
            }]
        );
    }

    #[test]
    fn many_read_delegations_coexist() {
        let mut t = table();
        t.open(fh(1), C1, false);
        t.grant_delegation(fh(1), C1, false);
        t.open(fh(1), C2, false);
        assert_eq!(
            t.grantable_delegation(fh(1), C2, false),
            Some(Delegation::Read)
        );
        t.grant_delegation(fh(1), C2, false);
        assert_eq!(t.delegation_count(), 2);
        // Read opens don't conflict with read delegations...
        assert!(t.conflicting_delegations(fh(1), C3, false).is_empty());
        // ...but a write open recalls all of them, in holder order.
        let conflicts = t.conflicting_delegations(fh(1), C3, true);
        assert_eq!(conflicts.len(), 2);
        assert_eq!(conflicts[0].holder, C1);
        assert_eq!(conflicts[1].holder, C2);
    }

    #[test]
    fn no_read_delegation_while_a_writer_is_open() {
        let mut t = table();
        t.open(fh(1), C1, true);
        t.open(fh(1), C2, false); // write-shared
        assert_eq!(t.grantable_delegation(fh(1), C2, false), None);
        assert_eq!(t.grantable_delegation(fh(1), C1, true), None, "uncached");
    }

    #[test]
    fn return_applies_batched_state_and_bumps_version_on_write() {
        let mut t = table();
        let o = t.open(fh(1), C1, true);
        t.grant_delegation(fh(1), C1, true);
        // The holder locally closed its writer and opened two readers.
        let v = t.return_delegation(fh(1), C1, 2, 0, true).expect("applied");
        assert!(v > o.version, "local writes bump the version");
        assert_eq!(t.clients_of(fh(1))[0].readers, 2);
        assert_eq!(t.clients_of(fh(1))[0].writers, 0);
        assert_eq!(t.delegation_count(), 0);
    }

    #[test]
    fn return_with_no_opens_leaves_entry_closed_and_reclaimable() {
        let mut t = table();
        t.open(fh(1), C1, false);
        t.grant_delegation(fh(1), C1, false);
        // While delegated the entry must survive reclaim even though the
        // server-side counts could look stale.
        assert!(!t.drop_if_closed(fh(1)));
        t.return_delegation(fh(1), C1, 0, 0, false);
        assert_eq!(t.state_of(fh(1)), FileState::Closed);
        assert!(t.drop_if_closed(fh(1)));
    }

    #[test]
    fn revoke_fences_holder_and_discards_late_return() {
        let mut t = table();
        let o = t.open(fh(1), C1, true);
        t.grant_delegation(fh(1), C1, true);
        assert!(t.revoke_delegation(fh(1), C1));
        assert!(t.is_fenced(fh(1), C1));
        assert_eq!(t.delegation_count(), 0);
        // Revoked write delegation may have lost buffered writes.
        let o2 = t.open(fh(1), C2, false);
        assert!(o2.inconsistent);
        assert_eq!(o2.version, o.version, "no bump from the dead holder");
        // The late return is discarded and lifts the fence.
        assert_eq!(t.return_delegation(fh(1), C1, 1, 1, true), None);
        assert!(!t.is_fenced(fh(1), C1));
        assert_eq!(t.clients_of(fh(1)).len(), 1, "only C2's open survives");
    }

    #[test]
    fn crashed_client_loses_delegations() {
        let mut t = table();
        t.open(fh(1), C1, true);
        t.grant_delegation(fh(1), C1, true);
        let affected = t.client_crashed(C1);
        assert_eq!(affected.len(), 1);
        assert_eq!(t.delegation_count(), 0);
        let o = t.open(fh(1), C2, false);
        assert!(o.inconsistent, "write-delegated holder crashed");
    }
}

#[cfg(test)]
mod recovery_tests {
    use super::*;
    use spritely_proto::RecoveredFile;

    const C1: ClientId = ClientId(1);
    const C2: ClientId = ClientId(2);

    fn fh(n: u64) -> FileHandle {
        FileHandle::new(1, n, 0)
    }

    #[test]
    fn restore_rebuilds_opens_and_dirty_claims() {
        let mut t = StateTable::new(100);
        t.clear(); // fresh post-crash state
        t.restore(
            C1,
            &[
                RecoveredFile {
                    fh: fh(1),
                    readers: 0,
                    writers: 1,
                    cached_version: Some(FileVersion(7)),
                    dirty: false,
                },
                RecoveredFile {
                    fh: fh(2),
                    readers: 0,
                    writers: 0,
                    cached_version: Some(FileVersion(5)),
                    dirty: true,
                },
            ],
        );
        assert_eq!(t.state_of(fh(1)), FileState::OneWriter);
        assert_eq!(t.state_of(fh(2)), FileState::ClosedDirty);
        // The version counter resumed above the highest reported value.
        let o = t.open(fh(3), C1, true);
        assert!(o.version > FileVersion(7), "counter floor restored");
    }

    #[test]
    fn restore_reports_from_two_clients_commute() {
        let report_a = [RecoveredFile {
            fh: fh(1),
            readers: 1,
            writers: 0,
            cached_version: Some(FileVersion(3)),
            dirty: false,
        }];
        let report_b = [RecoveredFile {
            fh: fh(1),
            readers: 0,
            writers: 1,
            cached_version: Some(FileVersion(3)),
            dirty: false,
        }];
        let build = |first: &[RecoveredFile],
                     second: &[RecoveredFile],
                     c_first: ClientId,
                     c_second: ClientId| {
            let mut t = StateTable::new(100);
            t.clear();
            t.restore(c_first, first);
            t.restore(c_second, second);
            t.state_of(fh(1))
        };
        let ab = build(&report_a, &report_b, C1, C2);
        let ba = build(&report_b, &report_a, C2, C1);
        assert_eq!(ab, ba);
        assert_eq!(ab, FileState::WriteShared, "writer + reader on two hosts");
    }

    #[test]
    fn restored_write_shared_is_uncachable() {
        let mut t = StateTable::new(100);
        t.clear();
        t.restore(
            C1,
            &[RecoveredFile {
                fh: fh(1),
                readers: 1,
                writers: 0,
                cached_version: None,
                dirty: false,
            }],
        );
        t.restore(
            C2,
            &[RecoveredFile {
                fh: fh(1),
                readers: 0,
                writers: 1,
                cached_version: None,
                dirty: false,
            }],
        );
        // A third open must come back uncachable.
        let o = t.open(fh(1), ClientId(3), false);
        assert!(!o.cache_enabled);
    }

    #[test]
    fn restore_ignores_empty_reports() {
        let mut t = StateTable::new(100);
        t.restore(
            C1,
            &[RecoveredFile {
                fh: fh(9),
                readers: 0,
                writers: 0,
                cached_version: None,
                dirty: false,
            }],
        );
        assert_eq!(t.len(), 0, "nothing to remember");
    }
}
