//! The SNFS client: version-checked caching with delayed write-back,
//! callback service, and write cancellation for deleted files.
//!
//! Differences from the NFS client (paper §4.2), all load-bearing for the
//! results:
//!
//! * `open`/`close` RPCs replace attribute probes; while a file is
//!   cachable there are **no consistency checks at all**;
//! * writes to a cachable file go into the cache **dirty** and stay there
//!   — close does *not* flush; the update daemon writes blocks back when
//!   they age past the write-delay (30 s), and deleting the file first
//!   cancels them entirely;
//! * on a `cacheEnabled = false` open, the client bypasses its cache:
//!   every read and write goes to the server (and read-ahead is disabled);
//! * the client services server→client `callback` RPCs using the same
//!   endpoint machinery the server uses (§4.2.2);
//! * the §6.2 **delayed-close** extension (off by default, as in the
//!   paper): closes are held back in anticipation of a quick reopen; a
//!   `relinquish` callback or a local timeout finally reports them.

use std::cell::{Cell, RefCell};
use std::collections::{HashMap, HashSet};
use std::rc::Rc;

use spritely_localfs::{BlockCache, DirtyRun, DirtyVictim};
use spritely_metrics::{Histogram, InflightGauge, OpCounter};
use spritely_proto::{
    block_of, blocks_for, CallbackArg, CallbackReply, ClientId, DirEntry, Fattr, FileHandle,
    FileVersion, NfsReply, NfsRequest, NfsStatus, ReadReply, Result, BLOCK_SIZE,
};
use spritely_rpcnet::{Endpoint, EndpointParams, RpcError, ShardCaller};
use spritely_sim::{Event, Resource, Semaphore, Sim, SimDuration, SimTime};
use spritely_trace::{EventKind, Tracer};

use crate::delegation::{DelegationParams, DelegationStats};

/// Configuration of the client's write-behind pool (the Ultrix biod
/// analogue): how dirty blocks travel back to the server.
///
/// The defaults are **paper-faithful**: one block per `write` RPC and one
/// RPC in flight, which is exactly the serial flush the paper's SNFS
/// client performs — table 5-x RPC counts are unchanged. Perf-mode runs
/// enable gathering and pipelining via [`pipelined`](Self::pipelined).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteBehindParams {
    /// Flush daemons: how many planned runs may be staged at once
    /// (Ultrix ran 4 biods per client).
    pub pool: usize,
    /// Maximum contiguous dirty blocks gathered into one `write` RPC.
    pub gather_blocks: usize,
    /// Maximum write-back RPCs in flight concurrently.
    pub max_inflight: usize,
}

impl Default for WriteBehindParams {
    fn default() -> Self {
        WriteBehindParams {
            pool: 4,
            gather_blocks: 1,
            max_inflight: 1,
        }
    }
}

impl WriteBehindParams {
    /// BSD-style write gathering and pipelining (perf mode): 16-block
    /// gathered writes, 2 in flight. The pipeline is deliberately
    /// shallow: concurrent write RPCs interleave their blocks on the
    /// server disk and forfeit sequential transfer, so past ~2 in
    /// flight the extra overlap costs more seeks than it hides (the
    /// same reason BSD gathered writes up to a track before issuing).
    pub fn pipelined() -> Self {
        WriteBehindParams {
            pool: 4,
            gather_blocks: 16,
            max_inflight: 2,
        }
    }
}

/// Configuration of an [`SnfsClient`].
#[derive(Debug, Clone, Copy)]
pub struct SnfsClientParams {
    /// Data cache capacity in blocks.
    pub cache_blocks: usize,
    /// Age at which dirty blocks are written back (paper §4.2.3: 30 s).
    pub write_delay: SimDuration,
    /// Interval of the client's update daemon; `None` = infinite
    /// write-delay (Table 5-5 configuration).
    pub update_interval: Option<SimDuration>,
    /// Prefetch the next block on cache-missing sequential reads of
    /// cachable files.
    pub read_ahead: bool,
    /// How many blocks ahead to prefetch (1 = the paper's single
    /// speculative block; larger windows pipeline sequential reads).
    pub read_ahead_window: usize,
    /// Write-behind pool: gathering and pipelining of dirty-block flushes.
    pub write_behind: WriteBehindParams,
    /// §6.2 extension: hold back `close` RPCs anticipating a reopen.
    pub delayed_close: bool,
    /// How long a delayed close lingers before being reported
    /// spontaneously.
    pub delayed_close_timeout: SimDuration,
    /// §7 extension: cache name translations, kept consistent by
    /// directory invalidate callbacks from the server. Lookups were half
    /// of all RPCs in the paper's Table 5-2; this removes most of them
    /// without giving up the consistency guarantee.
    pub name_cache: bool,
    /// Open-delegation knobs (DESIGN.md §17). Must match the server's;
    /// off (the default) keeps the client byte-identical to the paper.
    pub delegation: DelegationParams,
}

impl Default for SnfsClientParams {
    fn default() -> Self {
        SnfsClientParams {
            cache_blocks: 4096,
            // Paper §4.2.3: SNFS "follows the traditional Unix policy" —
            // the periodic update flushes *all* delayed blocks (age 0),
            // unlike Sprite's 30 s-age rule. Raise this for the
            // Sprite-style ablation.
            write_delay: SimDuration::ZERO,
            update_interval: Some(SimDuration::from_secs(30)),
            read_ahead: true,
            read_ahead_window: 1,
            write_behind: WriteBehindParams::default(),
            delayed_close: false,
            delayed_close_timeout: SimDuration::from_secs(180),
            name_cache: false,
            delegation: DelegationParams::paper(),
        }
    }
}

/// Client-side statistics (the "writes averted" story of §5.4).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Dirty blocks dropped because their file was deleted before
    /// write-back.
    pub cancelled_blocks: u64,
    /// Dirty blocks written back (daemon + callbacks + fsync + eviction).
    pub written_back_blocks: u64,
    /// Callbacks serviced.
    pub callbacks_served: u64,
    /// Cache invalidations performed on behalf of callbacks or version
    /// mismatches.
    pub invalidations: u64,
    /// Opens satisfied locally thanks to delayed close (§6.2).
    pub local_reopens: u64,
    /// Successful recovery re-registrations after a server reboot (§2.4).
    pub recoveries: u64,
    /// Lookups served from the local name cache (§7 extension).
    pub name_cache_hits: u64,
    /// Write-back RPCs that failed (daemon, fsync, callback and eviction
    /// paths alike).
    pub writeback_failures: u64,
    /// `getattr` RPCs elided because a piggybacked post-op attribute was
    /// fresh enough to answer (only with a piggybacking transport).
    pub attr_piggybacks: u64,
}

type Key = (FileHandle, u64);

struct FileInfo {
    cacheable: bool,
    /// Version of the data in our cache, if any.
    cached_version: Option<FileVersion>,
    /// Locally authoritative attributes while we cache the file.
    attr: Fattr,
    readers: u32,
    writers: u32,
    /// §6.2: a close we have not reported yet: (readers, writers) counts
    /// awaiting a close RPC.
    pending_close: Option<(u32, u32)>,
}

/// A delegation this client holds on one file (DESIGN.md §17). While it
/// is live (and the lease fresh), opens and closes are served from
/// `FileInfo` with zero RPCs; the counts there double as the queued
/// state the lazy batch return reports.
struct DelegRecord {
    /// Write delegation (covers read and write opens) vs read-only.
    write: bool,
    /// The file was modified under the delegation; the return must bump
    /// the server's version so other clients revalidate.
    wrote: bool,
    /// A recall arrived: stop serving locally, a return is under way.
    recalled: bool,
}

struct Inner {
    sim: Sim,
    caller: ShardCaller,
    id: ClientId,
    params: SnfsClientParams,
    cache: RefCell<BlockCache<Key>>,
    files: RefCell<HashMap<FileHandle, FileInfo>>,
    in_flight: RefCell<HashMap<Key, Event>>,
    stats: Cell<ClientStats>,
    /// Last server epoch observed via `keepalive`/`recover` (0 = never).
    known_epoch: Cell<u64>,
    /// Name-translation cache: `(dir, name) → (fh, attr)` (§7 extension;
    /// consistent via directory invalidate callbacks).
    names: RefCell<HashMap<(FileHandle, String), (FileHandle, Fattr)>>,
    /// Write-behind pool slots: bounds how many planned flush runs are
    /// staged concurrently.
    flush_slots: Semaphore,
    /// Bounds write-back RPCs in flight (1 = the paper's serial flush).
    flush_inflight: Semaphore,
    /// Blocks per gathered write-back RPC.
    gather_hist: Histogram,
    /// Concurrent write-back RPCs, with high-water mark.
    inflight_gauge: InflightGauge,
    /// In-flight background eviction write-backs per file: a task count
    /// plus an event set when the count returns to zero. An evicted
    /// dirty block is gone from the cache, so this map is the only
    /// record that its data has not reached the server yet —
    /// `writeback_file` (and through it fsync, callbacks, and
    /// `cold_boot`) must wait on it before claiming the file is clean.
    evictions: RefCell<HashMap<FileHandle, (usize, Event)>>,
    /// First error from a background eviction write-back of each file,
    /// reported by the next `writeback_file`/`fsync` of that file
    /// (classic delayed-write error semantics).
    eviction_errors: RefCell<HashMap<FileHandle, NfsStatus>>,
    /// Files this client removed (last link gone): an in-flight eviction
    /// write-back of such a file must be cancelled, not sent — the §4.2.3
    /// cancellation covers data already on its way out of the cache.
    removed: RefCell<HashSet<FileHandle>>,
    /// Post-op attributes that rode back piggybacked on write-through,
    /// write-shared-read, and close replies, with arrival time. Only
    /// recorded (and consulted) when the transport piggybacks attrs.
    piggy_attrs: RefCell<HashMap<FileHandle, (Fattr, SimTime)>>,
    /// Callback sequence numbers already seen (server-assigned, stable
    /// across the server's retransmissions): a duplicated delivery of an
    /// invalidate/write-back callback must not run twice. `seq == 0`
    /// (unsequenced) is never deduplicated.
    cb_seen: RefCell<HashMap<u64, CbGuard>>,
    /// Duplicate callback deliveries short-circuited by `cb_seen`.
    cb_dupes: Cell<u64>,
    /// Delegations held (DESIGN.md §17); empty unless
    /// `params.delegation.enabled`.
    delegs: RefCell<HashMap<FileHandle, DelegRecord>>,
    /// Per-file gate while a delegation return is in flight: opens and
    /// closes of that file wait for the return to land, so the batched
    /// counts the return reports cannot be invalidated mid-flight.
    deleg_returning: RefCell<HashMap<FileHandle, Event>>,
    /// When the last keepalive (or recover) reply arrived — the
    /// delegation lease anchor. Renewed *only* by those replies: they
    /// travel the same host-to-host direction as recall callbacks, so a
    /// fresh lease proves recalls could have reached us (§17.3).
    last_contact: Cell<SimTime>,
    /// Client-side delegation counters (local opens/closes).
    deleg_stats: Cell<DelegationStats>,
    tracer: RefCell<Option<Tracer>>,
}

/// State of one callback sequence number in the client-side dedup guard.
enum CbGuard {
    /// First delivery is still executing; duplicates wait on the event
    /// and then answer with the recorded reply.
    InProgress(Event),
    Done(CallbackReply),
}

/// A Spritely NFS client bound to one server.
#[derive(Clone)]
pub struct SnfsClient {
    inner: Rc<Inner>,
}

fn status_of(e: RpcError) -> NfsStatus {
    match e {
        RpcError::Timeout => NfsStatus::Io,
    }
}

impl SnfsClient {
    /// Creates a client that calls the server through `caller` — a plain
    /// [`Caller`](spritely_rpcnet::Caller) for the single-server
    /// configuration, or a [`ShardCaller`] routing over several shards.
    pub fn new(sim: &Sim, caller: impl Into<ShardCaller>, params: SnfsClientParams) -> Self {
        let caller = caller.into();
        let id = caller.client_id();
        let wb = params.write_behind;
        assert!(
            wb.pool > 0,
            "write-behind pool must have at least one daemon"
        );
        assert!(wb.max_inflight > 0, "need at least one in-flight write");
        SnfsClient {
            inner: Rc::new(Inner {
                sim: sim.clone(),
                caller,
                id,
                params,
                cache: RefCell::new(BlockCache::new(params.cache_blocks)),
                files: RefCell::new(HashMap::new()),
                in_flight: RefCell::new(HashMap::new()),
                stats: Cell::new(ClientStats::default()),
                known_epoch: Cell::new(0),
                names: RefCell::new(HashMap::new()),
                flush_slots: Semaphore::new(wb.pool),
                flush_inflight: Semaphore::new(wb.max_inflight),
                gather_hist: Histogram::new(),
                inflight_gauge: InflightGauge::new(),
                evictions: RefCell::new(HashMap::new()),
                eviction_errors: RefCell::new(HashMap::new()),
                removed: RefCell::new(HashSet::new()),
                piggy_attrs: RefCell::new(HashMap::new()),
                cb_seen: RefCell::new(HashMap::new()),
                cb_dupes: Cell::new(0),
                delegs: RefCell::new(HashMap::new()),
                deleg_returning: RefCell::new(HashMap::new()),
                last_contact: Cell::new(sim.now()),
                deleg_stats: Cell::new(DelegationStats::default()),
                tracer: RefCell::new(None),
            }),
        }
    }

    /// Attaches a tracer; client-side cache events (dirty blocks, cache
    /// reads, grants, invalidations, cancellations, flushes) get recorded.
    pub fn set_tracer(&self, tracer: Tracer) {
        *self.inner.tracer.borrow_mut() = Some(tracer);
    }

    fn emit(&self, parent: u64, kind: EventKind) -> u64 {
        match self.inner.tracer.borrow().as_ref() {
            Some(t) => t.emit(parent, kind),
            None => 0,
        }
    }

    fn traced(&self) -> bool {
        self.inner.tracer.borrow().is_some()
    }

    /// This client's id.
    pub fn client_id(&self) -> ClientId {
        self.inner.id
    }

    /// Statistics so far.
    pub fn stats(&self) -> ClientStats {
        self.inner.stats.get()
    }

    /// Duplicate callback deliveries absorbed by the sequence guard
    /// (each one would have double-invalidated without it).
    pub fn callback_dupes(&self) -> u64 {
        self.inner.cb_dupes.get()
    }

    /// Client-side delegation counters (local opens and closes).
    pub fn delegation_stats(&self) -> DelegationStats {
        self.inner.deleg_stats.get()
    }

    /// Delegations currently held (test hook).
    pub fn delegations_held(&self) -> usize {
        self.inner.delegs.borrow().len()
    }

    fn bump_deleg(&self, f: impl FnOnce(&mut DelegationStats)) {
        let mut s = self.inner.deleg_stats.get();
        f(&mut s);
        self.inner.deleg_stats.set(s);
    }

    /// True while the delegation lease is fresh: the server answered a
    /// keepalive/recover recently enough that, had it recalled anything
    /// we hold, the recall could have reached us too (DESIGN.md §17.3).
    fn lease_fresh(&self) -> bool {
        let age = self
            .inner
            .sim
            .now()
            .saturating_duration_since(self.inner.last_contact.get());
        age < self.inner.params.delegation.lease
    }

    /// True when a live delegation on `fh` may serve local state: it has
    /// not been recalled and the lease is fresh.
    fn deleg_serves(&self, fh: FileHandle) -> bool {
        self.inner
            .delegs
            .borrow()
            .get(&fh)
            .is_some_and(|d| !d.recalled)
            && self.lease_fresh()
    }

    /// Waits out any in-flight delegation return for `fh` (no-op when
    /// none is). Opens and closes pass through here so they cannot
    /// change the open counts between the return's snapshot and its
    /// application at the server.
    async fn wait_deleg_return(&self, fh: FileHandle) {
        loop {
            let gate = self.inner.deleg_returning.borrow().get(&fh).cloned();
            match gate {
                Some(ev) => ev.wait().await,
                None => return,
            }
        }
    }

    /// Data cache `(hits, misses)`.
    pub fn cache_stats(&self) -> (u64, u64) {
        self.inner.cache.borrow().hit_stats()
    }

    /// Number of dirty blocks awaiting write-back.
    pub fn dirty_blocks(&self) -> usize {
        self.inner.cache.borrow().dirty_count()
    }

    /// Peak number of data blocks this client ever held resident. The
    /// cache map is lazily populated, so an idle client reports zero
    /// regardless of its configured capacity — the number the 512-client
    /// scaling runs use to price a client's real memory footprint.
    pub fn peak_cache_blocks(&self) -> usize {
        self.inner.cache.borrow().peak_resident()
    }

    /// Number of evicted dirty blocks whose background write-back has
    /// not completed yet (must be zero after a successful `fsync`).
    pub fn pending_evictions(&self) -> usize {
        self.inner.evictions.borrow().values().map(|(n, _)| n).sum()
    }

    /// Histogram of blocks per gathered write-back RPC.
    pub fn gather_histogram(&self) -> Histogram {
        self.inner.gather_hist.clone()
    }

    /// Gauge of concurrent write-back RPCs (with high-water mark).
    pub fn inflight_gauge(&self) -> InflightGauge {
        self.inner.inflight_gauge.clone()
    }

    fn bump_stats(&self, f: impl FnOnce(&mut ClientStats)) {
        let mut s = self.inner.stats.get();
        f(&mut s);
        self.inner.stats.set(s);
    }

    async fn call(&self, req: NfsRequest) -> Result<NfsReply> {
        self.call_ctx(0, req).await
    }

    async fn call_ctx(&self, parent: u64, req: NfsRequest) -> Result<NfsReply> {
        self.call_inner(parent, req, false).await
    }

    /// Background variant for write-back and read-ahead traffic: the
    /// transport batcher may hold such a call briefly to coalesce it
    /// with its peers.
    async fn call_bg(&self, parent: u64, req: NfsRequest) -> Result<NfsReply> {
        self.call_inner(parent, req, true).await
    }

    async fn call_inner(&self, parent: u64, req: NfsRequest, bg: bool) -> Result<NfsReply> {
        // A rebooted server answers `Grace` until its state table is
        // rebuilt; back off and retry — the grace period is short and
        // bounded (§2.4). Each retry is a fresh logical call (new xid).
        for _ in 0..30 {
            let res = if bg {
                self.inner.caller.call_bg(parent, req.clone()).await
            } else {
                self.inner.caller.call_ctx(parent, req.clone()).await
            };
            match res {
                Ok(NfsReply::Err(NfsStatus::Grace)) => {
                    self.inner.sim.sleep(SimDuration::from_secs(2)).await;
                }
                Ok(rep) => return rep.into_result(),
                Err(e) => return Err(status_of(e)),
            }
        }
        Err(NfsStatus::Grace)
    }

    /// Like `call_ctx`, but also reports whether the reply arrived on a
    /// retransmission (attempt > 0). Non-idempotent procedures need this:
    /// if the server's duplicate cache has forgotten our first execution,
    /// the retransmit re-executes and fails spuriously — the classic NFS
    /// create-returns-EEXIST / remove-returns-ENOENT race. The error
    /// reply itself is returned (not lifted to `Err`) so callers can map
    /// those retransmit-only outcomes back to success.
    async fn call_ctx_retx(&self, parent: u64, req: NfsRequest) -> Result<(NfsReply, bool)> {
        for _ in 0..30 {
            match self
                .inner
                .caller
                .call_ctx_flagged(parent, req.clone())
                .await
            {
                Ok((NfsReply::Err(NfsStatus::Grace), _)) => {
                    self.inner.sim.sleep(SimDuration::from_secs(2)).await;
                }
                Ok((rep, retx)) => return Ok((rep, retx)),
                Err(e) => return Err(status_of(e)),
            }
        }
        Err(NfsStatus::Grace)
    }

    // ---- open / close ------------------------------------------------------

    /// Opens a file: an `open` RPC (or a local reopen under §6.2),
    /// version-checked cache retention, and cachability bookkeeping.
    pub async fn open(&self, fh: FileHandle, write: bool) -> Result<Fattr> {
        let op = self.emit(
            0,
            EventKind::OpBegin {
                client: self.inner.id,
                op: "open",
                fh,
            },
        );
        let res = self.open_inner(fh, write, op).await;
        self.emit(
            op,
            EventKind::OpEnd {
                client: self.inner.id,
                op: "open",
                ok: res.is_ok(),
            },
        );
        res
    }

    async fn open_inner(&self, fh: FileHandle, write: bool, op: u64) -> Result<Fattr> {
        if self.inner.params.delegation.enabled {
            self.wait_deleg_return(fh).await;
            if let Some(attr) = self.try_local_open(fh, write, op) {
                return Ok(attr);
            }
        }
        // §6.2 delayed close: if the file is "closed but not reported",
        // and the pending modes cover the new open, reopen locally.
        if self.inner.params.delayed_close {
            let mut files = self.inner.files.borrow_mut();
            if let Some(info) = files.get_mut(&fh) {
                if let Some((pr, pw)) = info.pending_close {
                    let covered = if write { pw > 0 } else { pr > 0 || pw > 0 };
                    if covered {
                        // Cancel the pending close; transfer one open back.
                        if write {
                            info.writers += 1;
                            info.pending_close = Some((pr, pw - 1));
                        } else if pr > 0 {
                            info.readers += 1;
                            info.pending_close = Some((pr - 1, pw));
                        } else {
                            // Reading under a pending write-open.
                            info.readers += 1;
                            info.pending_close = Some((pr, pw - 1));
                            // The unreported write-open now backs a read;
                            // report the mode we actually hold.
                            info.writers += 1;
                            info.readers -= 1;
                        }
                        if info.pending_close == Some((0, 0)) {
                            info.pending_close = None;
                        }
                        let attr = info.attr;
                        drop(files);
                        self.bump_stats(|s| s.local_reopens += 1);
                        return Ok(attr);
                    }
                }
            }
        }
        let rep = self
            .call_ctx(
                op,
                NfsRequest::Open {
                    fh,
                    write,
                    client: self.inner.id,
                },
            )
            .await?;
        let open = match rep {
            NfsReply::Open(o) => o,
            _ => return Err(NfsStatus::Io),
        };
        if let Some(g) = open.delegation {
            // The server chose us as (sole writer / one of the readers);
            // record the grant — the server already emitted DelegGrant.
            // An upgrade (read → write) replaces the old record; the
            // queued open counts live in FileInfo and survive.
            self.inner.delegs.borrow_mut().insert(
                fh,
                DelegRecord {
                    write: g.is_write(),
                    wrote: false,
                    recalled: false,
                },
            );
        }
        self.inner.removed.borrow_mut().remove(&fh);
        let (attr, flush_first, drop_blocks) = {
            let mut files = self.inner.files.borrow_mut();
            let info = files.entry(fh).or_insert(FileInfo {
                cacheable: true,
                cached_version: None,
                attr: open.attr,
                readers: 0,
                writers: 0,
                pending_close: None,
            });
            // Cache validity (paper §3.1): valid if the cached version matches
            // the latest, or — for a write open — the previous version, since
            // that bump came from this very open.
            let valid = match info.cached_version {
                Some(cv) => cv == open.version || (write && cv == open.prev_version),
                None => false,
            };
            let mut drop_blocks = false;
            let mut flush_first = false;
            if !valid && info.cached_version.is_some() {
                drop_blocks = true;
            }
            if !open.cache_enabled {
                // Must stop caching. Any dirty blocks should already have been
                // collected by a callback, but be defensive: push them first.
                flush_first = info.cached_version.is_some();
                drop_blocks = true;
                info.cacheable = false;
                info.cached_version = None;
            } else {
                info.cacheable = true;
                info.cached_version = Some(open.version);
            }
            if write {
                info.writers += 1;
            } else {
                info.readers += 1;
            }
            // Attribute authority: while this client retains a version-valid
            // cache, its local attributes are the truth — the server may be
            // mid-write-back and only know a prefix of the file. Adopt the
            // server's attributes only when the cache was not retained.
            let keep_local = valid && open.cache_enabled;
            if !keep_local {
                info.attr = open.attr;
            }
            (info.attr, flush_first, drop_blocks)
        };
        // Trace the consistency decision: a discarded cache first, then
        // the grant that replaces it.
        if drop_blocks {
            self.emit(
                op,
                EventKind::Invalidate {
                    client: self.inner.id,
                    fh,
                },
            );
        }
        self.emit(
            op,
            EventKind::OpenGrant {
                client: self.inner.id,
                fh,
                version: open.version.0,
                prev_version: open.prev_version.0,
                cache_enabled: open.cache_enabled,
                write,
            },
        );
        if flush_first {
            self.writeback_file_ctx(fh, op).await?;
        }
        if drop_blocks {
            self.bump_stats(|s| s.invalidations += 1);
            self.inner.cache.borrow_mut().drop_matching(|k| k.0 == fh);
        }
        Ok(attr)
    }

    /// Serves an open from a held delegation with zero RPCs (DESIGN.md
    /// §17.1): the delegation must cover the mode, no recall may be in
    /// progress, and the lease must be fresh. Falls back to the RPC path
    /// (returning `None`) otherwise — the delegation record is kept, and
    /// the replace-semantics of the eventual return reconcile the mix.
    fn try_local_open(&self, fh: FileHandle, write: bool, op: u64) -> Option<Fattr> {
        {
            let mut delegs = self.inner.delegs.borrow_mut();
            let d = delegs.get_mut(&fh)?;
            if d.recalled || (write && !d.write) || !self.lease_fresh() {
                return None;
            }
            if write {
                // The normal protocol bumps the version per write open;
                // under a delegation the bump is deferred to the return.
                d.wrote = true;
            }
        }
        let mut files = self.inner.files.borrow_mut();
        let info = files.get_mut(&fh)?;
        if write {
            info.writers += 1;
        } else {
            info.readers += 1;
        }
        let attr = info.attr;
        drop(files);
        self.bump_deleg(|s| s.local_opens += 1);
        self.emit(
            op,
            EventKind::DelegLocalOpen {
                client: self.inner.id,
                fh,
                write,
            },
        );
        Some(attr)
    }

    /// Closes a file. No data is flushed (delayed write-back survives the
    /// close — the whole point, §2.3). Sends the `close` RPC, or defers it
    /// under §6.2.
    pub async fn close(&self, fh: FileHandle, write: bool) -> Result<()> {
        let op = self.emit(
            0,
            EventKind::OpBegin {
                client: self.inner.id,
                op: "close",
                fh,
            },
        );
        let res = self.close_inner(fh, write, op).await;
        self.emit(
            op,
            EventKind::OpEnd {
                client: self.inner.id,
                op: "close",
                ok: res.is_ok(),
            },
        );
        res
    }

    async fn close_inner(&self, fh: FileHandle, write: bool, op: u64) -> Result<()> {
        if self.inner.params.delegation.enabled {
            self.wait_deleg_return(fh).await;
            // While we hold the delegation record — even one being
            // recalled was handled by the gate above — the close is
            // absorbed locally: the server never saw some of these opens,
            // and the batch return reports the net counts.
            let absorb = {
                let mut delegs = self.inner.delegs.borrow_mut();
                match delegs.get_mut(&fh) {
                    Some(d) => {
                        d.wrote |= write;
                        true
                    }
                    None => false,
                }
            };
            if absorb {
                let mut files = self.inner.files.borrow_mut();
                if let Some(info) = files.get_mut(&fh) {
                    if write {
                        info.writers = info.writers.saturating_sub(1);
                    } else {
                        info.readers = info.readers.saturating_sub(1);
                    }
                }
                drop(files);
                self.bump_deleg(|s| s.local_closes += 1);
                return Ok(());
            }
        }
        {
            let mut files = self.inner.files.borrow_mut();
            if let Some(info) = files.get_mut(&fh) {
                if write {
                    info.writers = info.writers.saturating_sub(1);
                } else {
                    info.readers = info.readers.saturating_sub(1);
                }
                if self.inner.params.delayed_close {
                    let (pr, pw) = info.pending_close.unwrap_or((0, 0));
                    info.pending_close = Some(if write { (pr, pw + 1) } else { (pr + 1, pw) });
                    drop(files);
                    self.schedule_spontaneous_close(fh);
                    return Ok(());
                }
            }
        }
        let rep = self
            .call_ctx(
                op,
                NfsRequest::Close {
                    fh,
                    write,
                    client: self.inner.id,
                },
            )
            .await?;
        if let NfsReply::Attr(attr) = rep {
            self.note_piggyback_attr(fh, attr);
        }
        Ok(())
    }

    /// §6.2: after a timeout, report a still-pending close spontaneously.
    fn schedule_spontaneous_close(&self, fh: FileHandle) {
        let this = self.clone();
        let delay = self.inner.params.delayed_close_timeout;
        self.inner.sim.spawn(async move {
            this.inner.sim.sleep(delay).await;
            let _ = this.flush_pending_close(fh).await;
        });
    }

    /// Reports any pending delayed closes for `fh` to the server.
    pub async fn flush_pending_close(&self, fh: FileHandle) -> Result<()> {
        loop {
            let mode = {
                let mut files = self.inner.files.borrow_mut();
                match files.get_mut(&fh) {
                    Some(info) => match info.pending_close {
                        Some((pr, pw)) if pw > 0 => {
                            info.pending_close = Some((pr, pw - 1));
                            Some(true)
                        }
                        Some((pr, _)) if pr > 0 => {
                            let (pr, pw) = info.pending_close.expect("just matched");
                            info.pending_close = Some((pr - 1, pw));
                            Some(false)
                        }
                        _ => {
                            info.pending_close = None;
                            None
                        }
                    },
                    None => None,
                }
            };
            let Some(write) = mode else { break };
            self.call(NfsRequest::Close {
                fh,
                write,
                client: self.inner.id,
            })
            .await?;
        }
        let mut files = self.inner.files.borrow_mut();
        if let Some(info) = files.get_mut(&fh) {
            if info.pending_close == Some((0, 0)) {
                info.pending_close = None;
            }
        }
        Ok(())
    }

    fn is_cacheable(&self, fh: FileHandle) -> bool {
        self.inner
            .files
            .borrow()
            .get(&fh)
            .is_none_or(|i| i.cacheable)
    }

    // ---- piggybacked post-op attributes --------------------------------------

    /// True when the transport pipeline piggybacks post-op attributes.
    fn piggyback(&self) -> bool {
        self.inner.caller.transport().piggyback
    }

    /// Records a post-op attribute that rode back on a reply. No-op
    /// unless the transport piggybacks (so the paper transport keeps
    /// exactly its original state).
    fn note_piggyback_attr(&self, fh: FileHandle, attr: Fattr) {
        if self.piggyback() {
            self.inner
                .piggy_attrs
                .borrow_mut()
                .insert(fh, (attr, self.inner.sim.now()));
        }
    }

    /// A piggybacked attribute fresh enough to answer a `getattr` on a
    /// write-shared file: the same relaxation as the NFS attribute-cache
    /// floor, but bounded to one second.
    fn fresh_piggyback_attr(&self, fh: FileHandle) -> Option<Fattr> {
        let map = self.inner.piggy_attrs.borrow();
        let (attr, at) = map.get(&fh)?;
        let age = self.inner.sim.now().saturating_duration_since(*at);
        (age < SimDuration::from_secs(1)).then_some(*attr)
    }

    fn local_attr(&self, fh: FileHandle) -> Option<Fattr> {
        self.inner.files.borrow().get(&fh).map(|i| i.attr)
    }

    // ---- data path ----------------------------------------------------------

    async fn fetch_block(
        &self,
        fh: FileHandle,
        lblk: u64,
        cache_it: bool,
        bg: bool,
    ) -> Result<Vec<u8>> {
        let key = (fh, lblk);
        if cache_it {
            // Coalesce with an identical fetch already in flight. If that
            // fetch is a read-ahead parked in the batcher, kick it onto
            // the wire: someone is waiting for the data now.
            let waiting = self.inner.in_flight.borrow().get(&key).cloned();
            if let Some(ev) = waiting {
                if !bg {
                    self.inner.caller.kick();
                }
                ev.wait().await;
                if let Some(b) = self.inner.cache.borrow_mut().get(&key) {
                    return Ok(b);
                }
            }
            let ev = Event::new();
            self.inner.in_flight.borrow_mut().insert(key, ev.clone());
            let req = NfsRequest::Read {
                fh,
                offset: lblk * BLOCK_SIZE as u64,
                count: BLOCK_SIZE as u32,
            };
            let res = if bg {
                self.call_bg(0, req).await
            } else {
                self.call(req).await
            };
            self.inner.in_flight.borrow_mut().remove(&key);
            ev.set();
            match res? {
                NfsReply::Read(ReadReply { data, .. }) => {
                    let victim = self
                        .inner
                        .cache
                        .borrow_mut()
                        .insert_clean(key, data.clone());
                    // A fetch (or prefetch) can evict a dirty block of an
                    // all-dirty cache; its data must be written out, not
                    // dropped.
                    if let Some(v) = victim {
                        self.write_back_victim(v).await;
                    }
                    Ok(data)
                }
                _ => Err(NfsStatus::Io),
            }
        } else {
            match self
                .call(NfsRequest::Read {
                    fh,
                    offset: lblk * BLOCK_SIZE as u64,
                    count: BLOCK_SIZE as u32,
                })
                .await?
            {
                NfsReply::Read(ReadReply { data, .. }) => Ok(data),
                _ => Err(NfsStatus::Io),
            }
        }
    }

    fn spawn_read_ahead(&self, fh: FileHandle, lblk: u64, size: u64) {
        if !self.inner.params.read_ahead {
            return;
        }
        // A window of 1 is the paper's single speculative block; wider
        // windows keep several sequential fetches in flight at once.
        let window = self.inner.params.read_ahead_window.max(1) as u64;
        for next in lblk + 1..=lblk + window {
            if next * (BLOCK_SIZE as u64) >= size {
                break;
            }
            if self.inner.cache.borrow().contains(&(fh, next))
                || self.inner.in_flight.borrow().contains_key(&(fh, next))
            {
                continue;
            }
            let this = self.clone();
            self.inner.sim.spawn(async move {
                let _ = this.fetch_block(fh, next, true, true).await;
            });
        }
    }

    /// Reads up to `len` bytes at `offset`. Returns `(data, eof)`.
    pub async fn read(&self, fh: FileHandle, offset: u64, len: u32) -> Result<(Vec<u8>, bool)> {
        if !self.is_cacheable(fh) {
            // Write-shared: every read goes to the server; no cache, no
            // read-ahead (paper §4.2.1).
            let rep = self
                .call(NfsRequest::Read {
                    fh,
                    offset,
                    count: len,
                })
                .await?;
            return match rep {
                NfsReply::Read(ReadReply { data, eof, attr }) => {
                    self.note_piggyback_attr(fh, attr);
                    Ok((data, eof))
                }
                _ => Err(NfsStatus::Io),
            };
        }
        let attr = match self.local_attr(fh) {
            Some(a) => a,
            None => self.getattr(fh).await?,
        };
        let size = attr.size;
        if offset >= size || len == 0 {
            return Ok((Vec::new(), true));
        }
        let end = size.min(offset + u64::from(len));
        let mut out = Vec::with_capacity((end - offset) as usize);
        let first = block_of(offset);
        let last = block_of(end - 1);
        // Trace one cache-served read per call, stamped with the granted
        // version, at the moment of the hit (synchronously — so the
        // checker sees it ordered against grants and invalidations).
        let cached_version = if self.traced() {
            self.inner
                .files
                .borrow()
                .get(&fh)
                .and_then(|i| i.cached_version)
        } else {
            None
        };
        let mut hit_traced = false;
        for lblk in first..=last {
            let blk_start = lblk * BLOCK_SIZE as u64;
            let from = (offset.max(blk_start) - blk_start) as usize;
            let to = ((end - blk_start).min(BLOCK_SIZE as u64)) as usize;
            let cached = self.inner.cache.borrow_mut().get(&(fh, lblk));
            let mut block = match cached {
                Some(b) => {
                    if !hit_traced {
                        if let Some(v) = cached_version {
                            self.emit(
                                0,
                                EventKind::CacheRead {
                                    client: self.inner.id,
                                    fh,
                                    version: v.0,
                                },
                            );
                            hit_traced = true;
                        }
                    }
                    b
                }
                None => {
                    let b = self.fetch_block(fh, lblk, true, false).await?;
                    self.spawn_read_ahead(fh, lblk, size);
                    b
                }
            };
            // A short cached block inside the file is a hole: zero-fill.
            if block.len() < to {
                block.resize(to, 0);
            }
            out.extend_from_slice(&block[from..to]);
        }
        Ok((out, end == size))
    }

    /// Writes `data` at `offset`. Cachable files take a *delayed* write
    /// (dirty in the cache, no RPC); write-shared files write through
    /// synchronously.
    pub async fn write(&self, fh: FileHandle, offset: u64, data: &[u8]) -> Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        if !self.is_cacheable(fh) {
            let rep = self
                .call(NfsRequest::Write {
                    fh,
                    offset,
                    data: data.to_vec(),
                })
                .await?;
            return match rep {
                NfsReply::Attr(attr) => {
                    self.note_piggyback_attr(fh, attr);
                    Ok(())
                }
                _ => Err(NfsStatus::Io),
            };
        }
        let now = self.inner.sim.now();
        let old_size = self.local_attr(fh).map_or(0, |a| a.size);
        let end = offset + data.len() as u64;
        let first = block_of(offset);
        let last = block_of(end - 1);
        for lblk in first..=last {
            let blk_start = lblk * BLOCK_SIZE as u64;
            let from = offset.max(blk_start);
            let to = end.min(blk_start + BLOCK_SIZE as u64);
            let chunk = &data[(from - offset) as usize..(to - offset) as usize];
            let key = (fh, lblk);
            let off_in_block = (from - blk_start) as usize;
            let full = off_in_block == 0 && chunk.len() == BLOCK_SIZE;
            let merged = if full {
                chunk.to_vec()
            } else {
                // NOTE: take the cache lookup out of the `match` scrutinee —
                // a borrow held there would live across the `fetch_block`
                // await below and collide with its own cache borrow.
                let cached = self.inner.cache.borrow_mut().get(&key);
                let mut base = match cached {
                    Some(b) => b,
                    None if blk_start < old_size => {
                        // Partial write into an existing block: fetch it.
                        self.fetch_block(fh, lblk, true, false).await?
                    }
                    None => Vec::new(),
                };
                if base.len() < off_in_block + chunk.len() {
                    base.resize(off_in_block + chunk.len(), 0);
                }
                base[off_in_block..off_in_block + chunk.len()].copy_from_slice(chunk);
                base
            };
            let victim = self.inner.cache.borrow_mut().write(key, merged, now);
            self.emit(
                0,
                EventKind::BlockDirty {
                    client: self.inner.id,
                    fh,
                    blk: lblk,
                },
            );
            if let Some(v) = victim {
                self.write_back_victim(v).await;
            }
        }
        // Local attributes are authoritative for a caching writer.
        let mut files = self.inner.files.borrow_mut();
        if let Some(info) = files.get_mut(&fh) {
            info.attr.size = info.attr.size.max(end);
            info.attr.mtime = now.as_micros();
        }
        Ok(())
    }

    /// Records the start of a background eviction write-back for `fh`.
    /// Must run synchronously with the eviction itself (no await in
    /// between): once the block has left the cache this registration is
    /// the only thing that makes `writeback_file` wait for its data.
    fn register_eviction(&self, fh: FileHandle) {
        self.inner
            .evictions
            .borrow_mut()
            .entry(fh)
            .or_insert_with(|| (0, Event::new()))
            .0 += 1;
    }

    /// Marks one eviction write-back for `fh` finished, waking waiters
    /// when it was the last.
    fn finish_eviction(&self, fh: FileHandle) {
        let mut ev = self.inner.evictions.borrow_mut();
        let entry = ev.get_mut(&fh).expect("finish without register");
        entry.0 -= 1;
        if entry.0 == 0 {
            let (_, done) = ev.remove(&fh).expect("entry present");
            done.set();
        }
    }

    /// Waits until no eviction write-back for `fh` is in flight. Loops
    /// because new evictions may start while we wait (each batch gets a
    /// fresh event).
    async fn wait_evictions(&self, fh: FileHandle) {
        loop {
            let done = self
                .inner
                .evictions
                .borrow()
                .get(&fh)
                .map(|(_, d)| d.clone());
            match done {
                Some(d) => {
                    // About to block on background write-backs: push any
                    // parked batch out instead of riding the Nagle window.
                    self.inner.caller.kick();
                    d.wait().await;
                }
                None => return,
            }
        }
    }

    /// Routes a dirty block evicted under cache pressure through the
    /// write-behind pool. The eviction is registered before any await,
    /// so a concurrent `writeback_file` always sees (and waits for) it;
    /// the slot acquisition is the evicting task's backpressure, and the
    /// RPC itself proceeds in the background. A failure is counted and
    /// recorded against the file, to surface from its next
    /// `writeback_file`/`fsync`.
    async fn write_back_victim(&self, v: DirtyVictim<Key>) {
        let (fh, lblk) = v.key;
        self.register_eviction(fh);
        let slot = self.inner.flush_slots.acquire().await;
        let this = self.clone();
        self.inner.sim.spawn(async move {
            let _slot = slot;
            let _permit = this.inner.flush_inflight.acquire().await;
            // The file may have been removed while this write-back sat in
            // the queue; its data is unreachable, so the write is
            // cancelled like any other delayed write of a deleted file
            // (§4.2.3) rather than resurrecting it on the server.
            if this.inner.removed.borrow().contains(&fh) {
                this.bump_stats(|s| s.cancelled_blocks += 1);
                this.emit(
                    0,
                    EventKind::WriteCancel {
                        client: this.inner.id,
                        fh,
                        from_blk: 0,
                        blocks: 1,
                    },
                );
            } else if let Err(e) = this.write_back_rpc(fh, lblk, v.data, 1, 0).await {
                this.inner
                    .eviction_errors
                    .borrow_mut()
                    .entry(fh)
                    .or_insert(e);
            }
            this.finish_eviction(fh);
        });
    }

    /// Sends one write-back RPC covering `blocks` blocks starting at
    /// logical block `start`. Bumps the gather histogram, the in-flight
    /// gauge, and the written-back / failure counters.
    async fn write_back_rpc(
        &self,
        fh: FileHandle,
        start: u64,
        data: Vec<u8>,
        blocks: u64,
        parent: u64,
    ) -> Result<()> {
        self.inner.gather_hist.record(blocks);
        self.inner.inflight_gauge.inc();
        let res = self
            .call_bg(
                parent,
                NfsRequest::Write {
                    fh,
                    offset: start * BLOCK_SIZE as u64,
                    data,
                },
            )
            .await;
        self.inner.inflight_gauge.dec();
        match res {
            Ok(NfsReply::Attr(_)) => {
                self.bump_stats(|s| s.written_back_blocks += blocks);
                Ok(())
            }
            Ok(_) => {
                // The blocks stay dirty and will be retried: they are not
                // written back, only failed.
                self.bump_stats(|s| s.writeback_failures += 1);
                Err(NfsStatus::Io)
            }
            Err(e) => {
                self.bump_stats(|s| s.writeback_failures += 1);
                Err(e)
            }
        }
    }

    /// Issues one planned run: re-extracts the blocks at issue time
    /// (they may have gone clean, been rewritten, or vanished since
    /// planning) and sends one gathered `write` RPC per contiguous
    /// segment, marking blocks clean as each RPC lands. Stops at the
    /// first failed segment; its blocks (and the rest of the run) stay
    /// dirty for a later retry.
    async fn flush_one_run(&self, fh: FileHandle, run: DirtyRun, parent: u64) -> Result<()> {
        let gathered = self.inner.cache.borrow().gather_run(fh, run, BLOCK_SIZE);
        for gw in gathered {
            let blocks = gw.seqs.len() as u64;
            self.write_back_rpc(fh, gw.start, gw.data, blocks, parent)
                .await?;
            let mut cache = self.inner.cache.borrow_mut();
            for (blk, seq) in gw.seqs {
                cache.mark_clean(&(fh, blk), seq);
            }
        }
        Ok(())
    }

    /// Pushes planned runs through the write-behind pool: each run takes
    /// a pool slot *in plan order* (the semaphore is FIFO-fair), then a
    /// daemon task gathers and sends it with at most
    /// [`WriteBehindParams::max_inflight`] RPCs in flight. With
    /// `stop_on_err`, runs not yet issued when an error lands are
    /// abandoned — their blocks stay dirty — which with the paper-mode
    /// defaults (one block per RPC, one RPC in flight) reproduces the
    /// serial flush exactly.
    async fn flush_runs(
        &self,
        fh: FileHandle,
        runs: Vec<DirtyRun>,
        stop_on_err: bool,
        parent: u64,
    ) -> Result<()> {
        let failed: Rc<Cell<Option<NfsStatus>>> = Rc::new(Cell::new(None));
        let mut daemons = Vec::with_capacity(runs.len());
        for run in runs {
            if stop_on_err && failed.get().is_some() {
                break;
            }
            let slot = self.inner.flush_slots.acquire().await;
            let this = self.clone();
            let failed = failed.clone();
            daemons.push(self.inner.sim.spawn(async move {
                let _slot = slot;
                let _permit = this.inner.flush_inflight.acquire().await;
                if stop_on_err && failed.get().is_some() {
                    return;
                }
                if let Err(e) = this.flush_one_run(fh, run, parent).await {
                    if failed.get().is_none() {
                        failed.set(Some(e));
                    }
                }
            }));
        }
        for d in daemons {
            d.await;
        }
        match failed.get() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Flushes runs without touching the pool's slots or permits: one
    /// gathered RPC at a time, awaited inline. The callback service uses
    /// this path so a server-induced write-back can never queue behind
    /// unrelated background flushes — the client-side mirror of the
    /// server's N−1 reserved-thread rule (§3.2). A shared permit would
    /// let the callback handler block on an in-flight RPC that is itself
    /// stuck at the server behind the very open awaiting this callback,
    /// closing a cross-machine deadlock cycle.
    async fn flush_runs_direct(
        &self,
        fh: FileHandle,
        runs: Vec<DirtyRun>,
        parent: u64,
    ) -> Result<()> {
        for run in runs {
            self.flush_one_run(fh, run, parent).await?;
        }
        Ok(())
    }

    /// Writes back all of `fh`'s dirty blocks: waits out any in-flight
    /// eviction write-backs (so "done" really means the server has the
    /// data), then flushes the resident dirty runs. An error recorded by
    /// a background eviction is surfaced here, like a classic delayed
    /// write error reported at the next fsync/close.
    async fn writeback_file_via(&self, fh: FileHandle, use_pool: bool, parent: u64) -> Result<()> {
        let flush_seq = self.emit(
            parent,
            EventKind::FlushBegin {
                client: self.inner.id,
                fh,
                direct: !use_pool,
            },
        );
        self.wait_evictions(fh).await;
        let evict_err = self.inner.eviction_errors.borrow_mut().remove(&fh);
        let gather = self.inner.params.write_behind.gather_blocks;
        let runs = self.inner.cache.borrow().dirty_runs(fh, gather, BLOCK_SIZE);
        let res = if use_pool {
            self.flush_runs(fh, runs, true, flush_seq).await
        } else {
            self.flush_runs_direct(fh, runs, flush_seq).await
        };
        let res = match evict_err {
            Some(e) => Err(e),
            None => res,
        };
        self.emit(
            flush_seq,
            EventKind::FlushEnd {
                client: self.inner.id,
                fh,
                ok: res.is_ok(),
            },
        );
        res
    }

    /// Writes back all of `fh`'s dirty blocks (used by fsync, open
    /// transitions, and the update daemon).
    pub async fn writeback_file(&self, fh: FileHandle) -> Result<()> {
        self.writeback_file_via(fh, true, 0).await
    }

    async fn writeback_file_ctx(&self, fh: FileHandle, parent: u64) -> Result<()> {
        self.writeback_file_via(fh, true, parent).await
    }

    /// Flushes dirty blocks older than the write-delay (the update
    /// daemon's unit of work).
    pub async fn flush_aged(&self) {
        let now = self.inner.sim.now();
        let min_age = self.inner.params.write_delay;
        let gather = self.inner.params.write_behind.gather_blocks;
        // Plan every file's runs up front from a single snapshot: blocks
        // that age past the delay *during* the flush wait for the next
        // daemon pass, exactly as with the serial flush.
        let plans: Vec<(FileHandle, Vec<DirtyRun>)> = {
            let cache = self.inner.cache.borrow();
            let mut files: Vec<FileHandle> = cache
                .dirty_blocks()
                .into_iter()
                .filter(|&(_, t)| now.saturating_duration_since(t) >= min_age)
                .map(|((fh, _), _)| fh)
                .collect();
            files.sort_unstable();
            files.dedup();
            files
                .into_iter()
                .map(|fh| {
                    let runs = cache.dirty_runs_where(fh, gather, BLOCK_SIZE, |_, t| {
                        now.saturating_duration_since(t) >= min_age
                    });
                    (fh, runs)
                })
                .collect()
        };
        for (fh, runs) in plans {
            // Failures are counted in `writeback_failures`; the blocks
            // stay dirty and the next pass retries them.
            let _ = self.flush_runs(fh, runs, false, 0).await;
        }
    }

    /// Spawns the client's update daemon (periodic aged write-back),
    /// unless disabled by [`SnfsClientParams::update_interval`].
    pub fn spawn_update_daemon(&self) {
        let Some(interval) = self.inner.params.update_interval else {
            return;
        };
        let this = self.clone();
        let sim = self.inner.sim.clone();
        self.inner.sim.spawn(async move {
            loop {
                sim.sleep(interval).await;
                this.flush_aged().await;
            }
        });
    }

    /// Synchronously pushes a file's dirty blocks to the server (explicit
    /// flush for applications that want crash-resistance, §2.2).
    pub async fn fsync(&self, fh: FileHandle) -> Result<()> {
        let op = self.emit(
            0,
            EventKind::OpBegin {
                client: self.inner.id,
                op: "fsync",
                fh,
            },
        );
        let res = self.writeback_file_ctx(fh, op).await;
        if res.is_ok() {
            self.emit(
                op,
                EventKind::FsyncOk {
                    client: self.inner.id,
                    fh,
                },
            );
        }
        self.emit(
            op,
            EventKind::OpEnd {
                client: self.inner.id,
                op: "fsync",
                ok: res.is_ok(),
            },
        );
        res
    }

    /// Simulates an orderly client reboot (experiment setup): every dirty
    /// block is written back, then all cached state — data, versions,
    /// attributes — is dropped, as if the machine had power-cycled.
    pub async fn cold_boot(&self) -> Result<()> {
        // An orderly shutdown returns its delegations (with their queued
        // open counts) instead of leaving the server to time them out.
        if self.inner.params.delegation.enabled {
            let mut held: Vec<FileHandle> = self.inner.delegs.borrow().keys().copied().collect();
            held.sort_unstable();
            for fh in held {
                let _ = self.do_deleg_return(0, fh).await;
                self.inner.delegs.borrow_mut().remove(&fh);
            }
        }
        let files: Vec<FileHandle> = {
            let mut v: Vec<FileHandle> = self
                .inner
                .cache
                .borrow()
                .keys_matching(|_| true)
                .into_iter()
                .map(|k| k.0)
                .collect();
            // Files whose only unwritten data is an in-flight eviction
            // have no cache blocks left; writeback_file still waits them
            // out.
            v.extend(self.inner.evictions.borrow().keys().copied());
            v.sort_unstable();
            v.dedup();
            v
        };
        for fh in files {
            self.writeback_file(fh).await?;
            self.flush_pending_close(fh).await?;
        }
        self.inner.cache.borrow_mut().clear();
        self.inner.files.borrow_mut().clear();
        self.inner.names.borrow_mut().clear();
        self.inner.eviction_errors.borrow_mut().clear();
        self.inner.piggy_attrs.borrow_mut().clear();
        Ok(())
    }

    // ---- crash recovery (§2.4) -------------------------------------------------

    /// Builds this client's recovery report: every file it has open (or
    /// pending-closed) plus every file it holds cached or dirty blocks
    /// for.
    fn recovery_report(&self) -> Vec<spritely_proto::RecoveredFile> {
        let files = self.inner.files.borrow();
        let cache = self.inner.cache.borrow();
        let mut report: Vec<spritely_proto::RecoveredFile> = files
            .iter()
            .filter_map(|(&fh, info)| {
                let (pr, pw) = info.pending_close.unwrap_or((0, 0));
                let readers = info.readers + pr;
                let writers = info.writers + pw;
                let dirty = cache
                    .keys_matching(|k| k.0 == fh)
                    .iter()
                    .any(|k| cache.is_dirty(k));
                if readers == 0 && writers == 0 && info.cached_version.is_none() && !dirty {
                    return None;
                }
                Some(spritely_proto::RecoveredFile {
                    fh,
                    readers,
                    writers,
                    cached_version: info.cached_version,
                    dirty,
                })
            })
            .collect();
        report.sort_unstable_by_key(|f| f.fh);
        report
    }

    /// Discards every held delegation: either the server rebooted (its
    /// delegation state is gone and ours is void, DESIGN.md §17.4) or
    /// our lease lapsed (the server may have fenced us, §17.3). Each
    /// discard is announced as a revoked return, which is what tells the
    /// trace checker this client's authority ended here.
    ///
    /// `purge` additionally drops each file's cached blocks and version:
    /// a lease-lapse discard must assume other clients have written
    /// since we were fenced, so nothing cached under the delegation can
    /// be trusted. Reboot recovery passes `false` — the recovery report
    /// re-registers the cache (dirty claims included) and the server
    /// restores it (§2.4).
    fn discard_delegations(&self, purge: bool) {
        let mut fhs: Vec<FileHandle> = {
            let mut delegs = self.inner.delegs.borrow_mut();
            let fhs = delegs.keys().copied().collect();
            delegs.clear();
            fhs
        };
        fhs.sort_unstable();
        for fh in fhs {
            if purge {
                self.inner.cache.borrow_mut().drop_matching(|k| k.0 == fh);
                if let Some(info) = self.inner.files.borrow_mut().get_mut(&fh) {
                    info.cached_version = None;
                }
                self.bump_stats(|s| s.invalidations += 1);
                self.emit(
                    0,
                    EventKind::Invalidate {
                        client: self.inner.id,
                        fh,
                    },
                );
            }
            self.emit(
                0,
                EventKind::DelegReturn {
                    client: self.inner.id,
                    fh,
                    revoked: true,
                },
            );
        }
    }

    /// Re-registers this client's state with a rebooted server. Returns
    /// the server epoch acknowledged.
    pub async fn recover(&self) -> Result<u64> {
        self.discard_delegations(false);
        let files = self.recovery_report();
        let rep = self
            .call(NfsRequest::Recover {
                client: self.inner.id,
                files,
            })
            .await?;
        match rep {
            NfsReply::Epoch(e) => {
                self.inner.known_epoch.set(e);
                self.inner.last_contact.set(self.inner.sim.now());
                self.bump_stats(|s| s.recoveries += 1);
                Ok(e)
            }
            _ => Err(NfsStatus::Io),
        }
    }

    /// One keepalive probe: learns the server epoch and triggers
    /// [`recover`](Self::recover) when it changes (i.e. the server
    /// rebooted since we last spoke to it).
    pub async fn keepalive(&self) -> Result<u64> {
        let rep = self
            .inner
            .caller
            .call(NfsRequest::Keepalive {
                client: self.inner.id,
            })
            .await
            .map_err(status_of)?
            .into_result()?;
        let epoch = match rep {
            NfsReply::Epoch(e) => e,
            _ => return Err(NfsStatus::Io),
        };
        // A lapsed lease cannot be resurrected (DESIGN.md §17.3): while
        // we were out of contact the server may have recalled, timed out
        // and fenced anything we hold, so the records — and the cache
        // under them — are untrustworthy. Purge before renewing the
        // anchor; later opens re-earn delegations over RPC.
        if self.inner.params.delegation.enabled
            && !self.lease_fresh()
            && !self.inner.delegs.borrow().is_empty()
        {
            self.discard_delegations(true);
        }
        // Lease anchor (DESIGN.md §17.3): this reply crossed the same
        // server→client path a recall callback would, so as of now no
        // recall can have been lost to a partition we haven't noticed.
        self.inner.last_contact.set(self.inner.sim.now());
        let known = self.inner.known_epoch.get();
        if known == 0 {
            // First contact: just remember it.
            self.inner.known_epoch.set(epoch);
        } else if epoch != known {
            // The server rebooted: re-register everything we know.
            self.recover().await?;
        }
        Ok(epoch)
    }

    /// Spawns the keepalive daemon (paper §2.4: "periodic 'keepalive'
    /// packets ... detect when a client or server has crashed or
    /// rebooted"). Probes every `interval`; failures are tolerated (the
    /// server may simply be down — the next probe will find it again).
    pub fn spawn_keepalive_daemon(&self, interval: SimDuration) {
        let this = self.clone();
        let sim = self.inner.sim.clone();
        self.inner.sim.spawn(async move {
            loop {
                sim.sleep(interval).await;
                let _ = this.keepalive().await;
            }
        });
    }

    // ---- callback service ----------------------------------------------------

    /// Builds the client's callback-service endpoint (the server calls
    /// this; paper §4.2.2 reuses the NFS server machinery for it).
    pub fn callback_endpoint(
        &self,
        name: impl Into<String>,
        cpu: Resource,
        params: EndpointParams,
        counter: OpCounter,
    ) -> Endpoint<CallbackArg, CallbackReply> {
        let this = self.clone();
        let handler = Rc::new(move |_from: ClientId, ctx: u64, arg: CallbackArg| {
            let this = this.clone();
            Box::pin(async move { this.serve_callback_ctx(ctx, arg).await })
                as std::pin::Pin<Box<dyn std::future::Future<Output = CallbackReply>>>
        });
        Endpoint::new(&self.inner.sim, name, cpu, params, counter, handler)
    }

    /// Services one callback (paper §3.2): write back and/or invalidate,
    /// not returning until requested write-backs are complete.
    pub async fn serve_callback(&self, arg: CallbackArg) -> CallbackReply {
        self.serve_callback_ctx(0, arg).await
    }

    async fn serve_callback_ctx(&self, ctx: u64, arg: CallbackArg) -> CallbackReply {
        // Duplicate-delivery guard: a duplicated network delivery (or a
        // server retransmission racing its own first attempt) of the same
        // logical callback must not invalidate or write back twice. The
        // server assigns one `seq` per logical callback, stable across
        // its retransmissions; the first delivery runs the work (no
        // added awaits), duplicates wait for it and echo its reply.
        if arg.seq != 0 {
            loop {
                let wait = {
                    let mut seen = self.inner.cb_seen.borrow_mut();
                    match seen.get(&arg.seq) {
                        Some(CbGuard::Done(rep)) => {
                            let rep = *rep;
                            drop(seen);
                            self.inner.cb_dupes.set(self.inner.cb_dupes.get() + 1);
                            return rep;
                        }
                        Some(CbGuard::InProgress(ev)) => {
                            self.inner.cb_dupes.set(self.inner.cb_dupes.get() + 1);
                            ev.clone()
                        }
                        None => {
                            seen.insert(arg.seq, CbGuard::InProgress(Event::new()));
                            break;
                        }
                    }
                };
                wait.wait().await;
            }
            let rep = self.serve_callback_work(ctx, arg).await;
            let mut seen = self.inner.cb_seen.borrow_mut();
            if let Some(CbGuard::InProgress(ev)) = seen.insert(arg.seq, CbGuard::Done(rep)) {
                ev.set();
            }
            // Bound the memory: completed entries older than the last 128
            // sequence numbers can no longer be retransmitted (the server
            // moved on long ago).
            while seen.len() > 128 {
                let oldest_done = seen
                    .iter()
                    .filter(|(_, g)| matches!(g, CbGuard::Done(_)))
                    .map(|(&s, _)| s)
                    .min();
                match oldest_done {
                    Some(s) => seen.remove(&s),
                    None => break,
                };
            }
            return rep;
        }
        self.serve_callback_work(ctx, arg).await
    }

    async fn serve_callback_work(&self, ctx: u64, arg: CallbackArg) -> CallbackReply {
        self.bump_stats(|s| s.callbacks_served += 1);
        if arg.recall {
            return self.serve_recall(ctx, arg.fh).await;
        }
        let fh = arg.fh;
        // Bypass the pool: a callback-induced write-back must not share
        // slots or in-flight permits with unrelated background flushes
        // (see flush_runs_direct).
        if arg.writeback && self.writeback_file_via(fh, false, ctx).await.is_err() {
            return CallbackReply { ok: false };
        }
        if arg.invalidate {
            self.bump_stats(|s| s.invalidations += 1);
            self.emit(
                ctx,
                EventKind::Invalidate {
                    client: self.inner.id,
                    fh,
                },
            );
            let dropped = self.inner.cache.borrow_mut().drop_matching(|k| k.0 == fh);
            debug_assert_eq!(dropped.dirty, 0, "writeback should have preceded");
            // If `fh` is a directory this drops our name translations
            // under it (§7 extension); for files it is a no-op.
            self.drop_dir_names(fh);
            self.inner.piggy_attrs.borrow_mut().remove(&fh);
            let mut files = self.inner.files.borrow_mut();
            if let Some(info) = files.get_mut(&fh) {
                info.cached_version = None;
                if info.readers > 0 || info.writers > 0 {
                    info.cacheable = false;
                }
            }
        }
        if arg.relinquish {
            // §6.2: give up a delayed-close file so the server can reclaim
            // its table entry. Report the closes after replying.
            let this = self.clone();
            self.inner.sim.spawn(async move {
                let _ = this.flush_pending_close(fh).await;
            });
        }
        CallbackReply { ok: true }
    }

    /// Services a delegation recall (DESIGN.md §17.2): stop serving
    /// locally, flush dirty data, send the batch `DelegReturn` RPC, and
    /// only then acknowledge the callback — so an `ok` reply proves the
    /// server has the returned state. Idempotent: a delivery for a
    /// delegation already returned (or never held) just acks.
    async fn serve_recall(&self, ctx: u64, fh: FileHandle) -> CallbackReply {
        let first = {
            let mut delegs = self.inner.delegs.borrow_mut();
            match delegs.get_mut(&fh) {
                None => None,
                Some(d) if d.recalled => Some(false),
                Some(d) => {
                    d.recalled = true;
                    Some(true)
                }
            }
        };
        match first {
            // Nothing held: a late or duplicated delivery. Ack.
            None => CallbackReply { ok: true },
            // A return is already under way (a second conflicting open
            // recalled concurrently): wait for it, then ack.
            Some(false) => {
                self.wait_deleg_return(fh).await;
                CallbackReply { ok: true }
            }
            Some(true) => {
                // Gate opens/closes *before* the first await, so the
                // counts the return reports stay the file's truth until
                // the server applies them.
                let done = Event::new();
                self.inner
                    .deleg_returning
                    .borrow_mut()
                    .insert(fh, done.clone());
                self.emit(
                    ctx,
                    EventKind::DelegRecall {
                        client: self.inner.id,
                        fh,
                    },
                );
                let res = self.do_deleg_return(ctx, fh).await;
                self.inner.delegs.borrow_mut().remove(&fh);
                self.inner.deleg_returning.borrow_mut().remove(&fh);
                done.set();
                CallbackReply { ok: res.is_ok() }
            }
        }
    }

    /// Flushes dirty data and returns the delegation's batched state to
    /// the server. Uses the direct (pool-bypassing) flush path for the
    /// same reason write-back callbacks do: the conflicting opener is
    /// blocked on us, and our flush must not queue behind unrelated
    /// background traffic.
    async fn do_deleg_return(&self, ctx: u64, fh: FileHandle) -> Result<()> {
        self.writeback_file_via(fh, false, ctx).await?;
        let (readers, writers, wrote) = {
            let files = self.inner.files.borrow();
            let (r, w) = files.get(&fh).map_or((0, 0), |i| (i.readers, i.writers));
            let wrote = self.inner.delegs.borrow().get(&fh).is_some_and(|d| d.wrote);
            (r, w, wrote)
        };
        let rep = self
            .call_ctx(
                ctx,
                NfsRequest::DelegReturn {
                    fh,
                    client: self.inner.id,
                    readers,
                    writers,
                    wrote,
                },
            )
            .await?;
        match rep {
            NfsReply::DelegReturned { version, fenced } => {
                let mut files = self.inner.files.borrow_mut();
                if let Some(info) = files.get_mut(&fh) {
                    if fenced {
                        // We were revoked: the server discarded our
                        // batched state and may have marked the file
                        // inconsistent. Purge and revalidate on the next
                        // open.
                        info.cached_version = None;
                    } else if info.cached_version.is_some() {
                        // Our own return bumped the version (if we
                        // wrote); the cache is that version's content.
                        info.cached_version = Some(version);
                    }
                }
                drop(files);
                if fenced {
                    self.bump_stats(|s| s.invalidations += 1);
                    self.emit(
                        ctx,
                        EventKind::Invalidate {
                            client: self.inner.id,
                            fh,
                        },
                    );
                    self.inner.cache.borrow_mut().drop_matching(|k| k.0 == fh);
                }
                Ok(())
            }
            _ => Err(NfsStatus::Io),
        }
    }

    // ---- attributes and namespace ---------------------------------------------

    /// Attributes: served locally for cachable files (no refresh needed,
    /// §4.2.1); fetched from the server for write-shared files.
    pub async fn getattr(&self, fh: FileHandle) -> Result<Fattr> {
        // A held delegation is attribute authority (DESIGN.md §17.1):
        // nobody can change the file without a recall reaching us first,
        // so the cached attributes are the truth even for a file that
        // write-sharing once marked uncacheable.
        if self.inner.params.delegation.enabled && self.deleg_serves(fh) {
            if let Some(a) = self.local_attr(fh) {
                return Ok(a);
            }
        }
        if self.is_cacheable(fh) {
            if let Some(a) = self.local_attr(fh) {
                return Ok(a);
            }
        }
        if self.piggyback() {
            if let Some(a) = self.fresh_piggyback_attr(fh) {
                self.bump_stats(|s| s.attr_piggybacks += 1);
                return Ok(a);
            }
        }
        let rep = self.call(NfsRequest::GetAttr { fh }).await?;
        match rep {
            NfsReply::Attr(attr) => {
                let mut files = self.inner.files.borrow_mut();
                match files.get_mut(&fh) {
                    Some(info) => {
                        if info.attr.mtime <= attr.mtime {
                            info.attr = attr;
                        }
                    }
                    None => {
                        // First contact (e.g. a directory): remember the
                        // attributes; cachable files need no refresh
                        // (§4.2.1).
                        files.insert(
                            fh,
                            FileInfo {
                                cacheable: true,
                                cached_version: None,
                                attr,
                                readers: 0,
                                writers: 0,
                                pending_close: None,
                            },
                        );
                    }
                }
                Ok(attr)
            }
            _ => Err(NfsStatus::Io),
        }
    }

    /// Translates one name component (same protocol and cost as NFS
    /// unless the §7 name cache is enabled).
    pub async fn lookup(&self, dir: FileHandle, name: &str) -> Result<(FileHandle, Fattr)> {
        if self.inner.params.name_cache {
            let hit = self
                .inner
                .names
                .borrow()
                .get(&(dir, name.to_string()))
                .copied();
            if let Some((fh, attr)) = hit {
                self.bump_stats(|s| s.name_cache_hits += 1);
                // Attributes of a cached file are locally authoritative;
                // serve the freshest view we have.
                let attr = self.local_attr(fh).unwrap_or(attr);
                return Ok((fh, attr));
            }
        }
        let rep = self
            .call(NfsRequest::Lookup {
                dir,
                name: name.to_string(),
            })
            .await?;
        match rep {
            NfsReply::Handle { fh, attr } => {
                if self.inner.params.name_cache {
                    self.inner
                        .names
                        .borrow_mut()
                        .insert((dir, name.to_string()), (fh, attr));
                }
                // Attribute authority: if we cache this file, the server
                // may only know a write-back prefix of it — our local
                // attributes are the truth (same rule as open/getattr).
                let attr = if self.is_cacheable(fh) {
                    self.local_attr(fh).unwrap_or(attr)
                } else {
                    attr
                };
                Ok((fh, attr))
            }
            _ => Err(NfsStatus::Io),
        }
    }

    /// Drops cached name translations under `dir` (server directory
    /// callback, or a local namespace change).
    fn drop_dir_names(&self, dir: FileHandle) {
        self.inner.names.borrow_mut().retain(|k, _| k.0 != dir);
    }

    /// Creates a regular file.
    pub async fn create(&self, dir: FileHandle, name: &str) -> Result<(FileHandle, Fattr)> {
        let (rep, retx) = self
            .call_ctx_retx(
                0,
                NfsRequest::Create {
                    dir,
                    name: name.to_string(),
                },
            )
            .await?;
        let rep = match rep {
            // Retransmit-outcome mapping: EEXIST on a retransmission
            // usually means *our own* first transmission created the file
            // and the server's duplicate cache forgot it. Treat it as
            // success by looking the file up (Juszczak 1989).
            NfsReply::Err(NfsStatus::Exist) if retx => {
                let (fh, attr) = self.lookup(dir, name).await?;
                NfsReply::Handle { fh, attr }
            }
            NfsReply::Err(s) => return Err(s),
            other => other,
        };
        match rep {
            NfsReply::Handle { fh, attr } => {
                // A fresh handle can never be "removed" — guard against
                // the file system reusing handle values.
                self.inner.removed.borrow_mut().remove(&fh);
                self.inner.files.borrow_mut().insert(
                    fh,
                    FileInfo {
                        cacheable: true,
                        cached_version: None,
                        attr,
                        readers: 0,
                        writers: 0,
                        pending_close: None,
                    },
                );
                if self.inner.params.name_cache {
                    self.inner
                        .names
                        .borrow_mut()
                        .insert((dir, name.to_string()), (fh, attr));
                }
                Ok((fh, attr))
            }
            _ => Err(NfsStatus::Io),
        }
    }

    /// Removes a file, **cancelling** its delayed writes (§4.2.3) — the
    /// temp-file optimization NFS cannot have. Pass the victim's handle so
    /// local state can be dropped.
    pub async fn remove(
        &self,
        dir: FileHandle,
        name: &str,
        victim: Option<FileHandle>,
    ) -> Result<()> {
        let op = self.emit(
            0,
            EventKind::OpBegin {
                client: self.inner.id,
                op: "remove",
                fh: victim.unwrap_or(dir),
            },
        );
        let res = self.remove_inner(dir, name, victim, op).await;
        self.emit(
            op,
            EventKind::OpEnd {
                client: self.inner.id,
                op: "remove",
                ok: res.is_ok(),
            },
        );
        res
    }

    async fn remove_inner(
        &self,
        dir: FileHandle,
        name: &str,
        victim: Option<FileHandle>,
        op: u64,
    ) -> Result<()> {
        if let Some(fh) = victim {
            // Cancellation is only sound when this is the file's last
            // hard link; otherwise the data stays reachable under another
            // name. (A concurrent remote `link` could race this check —
            // the same window the 1989 systems had.)
            let nlink = self
                .inner
                .files
                .borrow()
                .get(&fh)
                .map_or(1, |i| i.attr.nlink);
            if nlink <= 1 {
                let dropped = self.inner.cache.borrow_mut().drop_matching(|k| k.0 == fh);
                self.bump_stats(|s| s.cancelled_blocks += dropped.dirty);
                self.emit(
                    op,
                    EventKind::WriteCancel {
                        client: self.inner.id,
                        fh,
                        from_blk: 0,
                        blocks: dropped.dirty,
                    },
                );
                self.inner.files.borrow_mut().remove(&fh);
                self.inner.piggy_attrs.borrow_mut().remove(&fh);
                // A pending eviction error for a deleted file is moot,
                // and any eviction write-back still queued must be
                // cancelled too (see write_back_victim).
                self.inner.eviction_errors.borrow_mut().remove(&fh);
                // A delegation on a deleted file has nothing left to
                // protect; the server drops its side with the entry.
                self.inner.delegs.borrow_mut().remove(&fh);
                self.inner.removed.borrow_mut().insert(fh);
            } else if let Some(info) = self.inner.files.borrow_mut().get_mut(&fh) {
                info.attr.nlink = nlink - 1;
            }
        }
        self.inner
            .names
            .borrow_mut()
            .remove(&(dir, name.to_string()));
        let (rep, retx) = self
            .call_ctx_retx(
                op,
                NfsRequest::Remove {
                    dir,
                    name: name.to_string(),
                },
            )
            .await?;
        match rep {
            NfsReply::Ok => Ok(()),
            // Retransmit-outcome mapping: ENOENT on a retransmission means
            // our first transmission already removed the name.
            NfsReply::Err(NfsStatus::NoEnt) if retx => Ok(()),
            NfsReply::Err(s) => Err(s),
            _ => Err(NfsStatus::Io),
        }
    }

    /// Creates a directory.
    pub async fn mkdir(&self, dir: FileHandle, name: &str) -> Result<(FileHandle, Fattr)> {
        let rep = self
            .call(NfsRequest::Mkdir {
                dir,
                name: name.to_string(),
            })
            .await?;
        match rep {
            NfsReply::Handle { fh, attr } => Ok((fh, attr)),
            _ => Err(NfsStatus::Io),
        }
    }

    /// Removes an empty directory.
    pub async fn rmdir(&self, dir: FileHandle, name: &str) -> Result<()> {
        let rep = self
            .call(NfsRequest::Rmdir {
                dir,
                name: name.to_string(),
            })
            .await?;
        match rep {
            NfsReply::Ok => Ok(()),
            _ => Err(NfsStatus::Io),
        }
    }

    /// Renames a file or directory.
    pub async fn rename(
        &self,
        from_dir: FileHandle,
        from_name: &str,
        to_dir: FileHandle,
        to_name: &str,
    ) -> Result<()> {
        {
            let mut names = self.inner.names.borrow_mut();
            names.remove(&(from_dir, from_name.to_string()));
            names.remove(&(to_dir, to_name.to_string()));
        }
        let (rep, retx) = self
            .call_ctx_retx(
                0,
                NfsRequest::Rename {
                    from_dir,
                    from_name: from_name.to_string(),
                    to_dir,
                    to_name: to_name.to_string(),
                },
            )
            .await?;
        match rep {
            NfsReply::Ok => Ok(()),
            // Retransmit-outcome mapping: the source vanished because our
            // first transmission already performed the rename.
            NfsReply::Err(NfsStatus::NoEnt) if retx => Ok(()),
            NfsReply::Err(s) => Err(s),
            _ => Err(NfsStatus::Io),
        }
    }

    /// Lists a directory.
    pub async fn readdir(&self, dir: FileHandle) -> Result<Vec<DirEntry>> {
        let rep = self.call(NfsRequest::Readdir { dir }).await?;
        match rep {
            NfsReply::Readdir { entries } => Ok(entries),
            _ => Err(NfsStatus::Io),
        }
    }

    /// Creates a hard link `to_dir/to_name` to `from`.
    pub async fn link(&self, from: FileHandle, to_dir: FileHandle, to_name: &str) -> Result<Fattr> {
        let rep = self
            .call(NfsRequest::Link {
                from,
                to_dir,
                to_name: to_name.to_string(),
            })
            .await?;
        match rep {
            NfsReply::Attr(attr) => {
                if self.inner.params.name_cache {
                    self.inner
                        .names
                        .borrow_mut()
                        .insert((to_dir, to_name.to_string()), (from, attr));
                }
                // nlink changed; refresh our local view if we track it.
                let mut files = self.inner.files.borrow_mut();
                if let Some(info) = files.get_mut(&from) {
                    info.attr.nlink = attr.nlink;
                    info.attr.ctime = attr.ctime;
                }
                Ok(attr)
            }
            _ => Err(NfsStatus::Io),
        }
    }

    /// Creates a symbolic link `dir/name` → `target`.
    pub async fn symlink(
        &self,
        dir: FileHandle,
        name: &str,
        target: &str,
    ) -> Result<(FileHandle, Fattr)> {
        let rep = self
            .call(NfsRequest::Symlink {
                dir,
                name: name.to_string(),
                target: target.to_string(),
            })
            .await?;
        match rep {
            NfsReply::Handle { fh, attr } => {
                if self.inner.params.name_cache {
                    self.inner
                        .names
                        .borrow_mut()
                        .insert((dir, name.to_string()), (fh, attr));
                }
                Ok((fh, attr))
            }
            _ => Err(NfsStatus::Io),
        }
    }

    /// Reads a symbolic link's target.
    pub async fn readlink(&self, fh: FileHandle) -> Result<String> {
        let rep = self.call(NfsRequest::Readlink { fh }).await?;
        match rep {
            NfsReply::Path(p) => Ok(p),
            _ => Err(NfsStatus::Io),
        }
    }

    /// Sets attributes (truncate).
    pub async fn setattr(&self, fh: FileHandle, size: Option<u64>) -> Result<Fattr> {
        // Push pending data first so truncation order is sane, then drop
        // blocks beyond the new EOF.
        if let Some(sz) = size {
            let cut = blocks_for(sz);
            let dropped = self
                .inner
                .cache
                .borrow_mut()
                .drop_matching(|k| k.0 == fh && k.1 >= cut);
            self.bump_stats(|s| s.cancelled_blocks += dropped.dirty);
            if dropped.dirty > 0 {
                self.emit(
                    0,
                    EventKind::WriteCancel {
                        client: self.inner.id,
                        fh,
                        from_blk: cut,
                        blocks: dropped.dirty,
                    },
                );
            }
        }
        let rep = self.call(NfsRequest::SetAttr { fh, size }).await?;
        match rep {
            NfsReply::Attr(attr) => {
                let mut files = self.inner.files.borrow_mut();
                if let Some(info) = files.get_mut(&fh) {
                    info.attr.size = attr.size;
                    info.attr.mtime = attr.mtime;
                }
                Ok(attr)
            }
            _ => Err(NfsStatus::Io),
        }
    }
}
