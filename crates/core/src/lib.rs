//! Spritely NFS (SNFS): the Sprite cache-consistency protocol grafted
//! onto NFS — the paper's primary contribution.
//!
//! The protocol adds three operations to NFS (§3):
//!
//! * **`open`** (client→server): announces an open with its mode; the
//!   server returns whether caching is allowed, plus the file's version
//!   and previous-version numbers;
//! * **`close`** (client→server): announces the end of an open;
//! * **`callback`** (server→client): asks a client to write back and/or
//!   invalidate its cache, or (our §6.2 extension) to relinquish a
//!   delayed-close file.
//!
//! Because the server now *knows* who has each file open and in which
//! mode, non-write-shared files can be cached with **delayed write-back**
//! (no flush on close, cancellation on delete), while write-shared files
//! are made uncachable at every client — giving both better performance
//! and an actual consistency guarantee, which NFS's probabilistic probes
//! cannot (compare the `stale_read_window_exists` test in `spritely-nfs`
//! with `no_stale_reads_under_write_sharing` here).
//!
//! Module map:
//!
//! * [`state_table`] — the pure 7-state transition machine of Table 4-1;
//! * server — the SNFS service: baseline NFS handlers plus `open`/`close`,
//!   callback issuing with the N−1 thread rule, and state-table reclaim;
//! * client — the SNFS client: version-checked caching, delayed
//!   write-back, callback service, write cancellation, delayed close.

mod client;
pub mod delegation;
mod server;
pub mod state_table;

pub use client::{ClientStats, SnfsClient, SnfsClientParams, WriteBehindParams};
pub use delegation::{DelegationParams, DelegationStats, RecallHistogram};
pub use server::{
    ServerIoParams, ServerStats, ShardOpStats, ShardView, SnfsServer, SnfsServerParams,
};
pub use state_table::{
    CallbackNeeded, ClientOpens, Deleg, FileState, OpenOutcome, ReclaimOutcome, StateTable,
};

#[cfg(test)]
mod tests {
    use super::*;
    use spritely_blockdev::{Disk, DiskParams};
    use spritely_localfs::{FsParams, LocalFs};
    use spritely_metrics::OpCounter;
    use spritely_proto::{ClientId, NfsProc, NfsReply, NfsRequest, BLOCK_SIZE};
    use spritely_rpcnet::{Caller, CallerParams, Endpoint, EndpointParams, NetParams, Network};
    use spritely_sim::{Resource, Sim, SimDuration};

    struct Rig {
        sim: Sim,
        server: SnfsServer,
        counter: OpCounter,
        net: Network,
        endpoint: Endpoint<NfsRequest, NfsReply>,
        server_cpu: Resource,
    }

    const SERVER_THREADS: usize = 4;

    impl Rig {
        fn new() -> Self {
            Self::with_server_params(SnfsServerParams::default())
        }

        fn with_server_params(sp: SnfsServerParams) -> Self {
            let sim = Sim::new();
            let disk = Disk::new(&sim, "sdisk", DiskParams::ra81());
            let fs = LocalFs::new(
                &sim,
                1,
                disk,
                FsParams {
                    cache_blocks: 896,
                    ..FsParams::default()
                },
            );
            let server = SnfsServer::new(&sim, fs, SERVER_THREADS, sp);
            let server_cpu = Resource::new(&sim, "scpu", 1);
            let counter = OpCounter::new();
            let endpoint = server.endpoint(
                "snfsd",
                server_cpu.clone(),
                EndpointParams {
                    threads: SERVER_THREADS,
                    ..EndpointParams::default()
                },
                counter.clone(),
            );
            let net = Network::new(&sim, "eth", NetParams::ethernet_10mbit());
            Rig {
                sim,
                server,
                counter,
                net,
                endpoint,
                server_cpu,
            }
        }

        fn client(&self, id: u32, params: SnfsClientParams) -> SnfsClient {
            let cpu = Resource::new(&self.sim, format!("ccpu{id}"), 1);
            let caller = Caller::new(
                &self.sim,
                self.net.clone(),
                self.endpoint.clone(),
                ClientId(id),
                cpu.clone(),
                CallerParams::default(),
            );
            let client = SnfsClient::new(&self.sim, caller, params);
            // Register the callback channel: server → this client.
            let cb_endpoint = client.callback_endpoint(
                format!("cbsrv{id}"),
                cpu,
                EndpointParams {
                    threads: 2,
                    ..EndpointParams::default()
                },
                self.counter.clone(),
            );
            let cb_caller = Caller::new(
                &self.sim,
                self.net.clone(),
                cb_endpoint,
                ClientId(0), // the server's "client id" on the callback channel
                self.server_cpu.clone(),
                CallerParams::default(),
            );
            self.server.register_client(ClientId(id), cb_caller);
            client
        }

        fn root(&self) -> spritely_proto::FileHandle {
            self.server.fs().root()
        }

        /// Marks a client's callback service dead (crash modelling).
        fn kill_callbacks(&self, client: &SnfsClient) {
            let dead = client.callback_endpoint(
                "dead",
                self.server_cpu.clone(),
                EndpointParams::default(),
                OpCounter::new(),
            );
            dead.set_alive(false);
            let caller = Caller::new(
                &self.sim,
                self.net.clone(),
                dead,
                ClientId(0),
                self.server_cpu.clone(),
                CallerParams {
                    timeout: SimDuration::from_millis(200),
                    max_retries: 1,
                    cpu_per_call: SimDuration::ZERO,
                },
            );
            self.server.register_client(client.client_id(), caller);
        }
    }

    #[test]
    fn close_does_not_flush_and_daemon_writes_back() {
        let rig = Rig::new();
        let c = rig.client(1, SnfsClientParams::default());
        c.spawn_update_daemon();
        let root = rig.root();
        let counter = rig.counter.clone();
        let fs = rig.server.fs().clone();
        let sim = rig.sim.clone();
        sim.block_on({
            let sim = sim.clone();
            async move {
                let (fh, _) = c.create(root, "f").await.unwrap();
                c.open(fh, true).await.unwrap();
                c.write(fh, 0, &[7u8; 3 * BLOCK_SIZE]).await.unwrap();
                c.close(fh, true).await.unwrap();
                assert_eq!(counter.get(NfsProc::Write), 0, "no flush at close");
                assert_eq!(c.dirty_blocks(), 3);
                // After the 30 s write-delay plus a daemon tick, the data
                // arrives at the server.
                sim.sleep(SimDuration::from_secs(61)).await;
                assert_eq!(counter.get(NfsProc::Write), 3);
                assert_eq!(c.dirty_blocks(), 0);
                let stable = fs.stable_contents(fh).unwrap();
                assert!(stable.iter().all(|&b| b == 7));
            }
        });
    }

    #[test]
    fn deleted_temp_file_never_writes() {
        let rig = Rig::new();
        let c = rig.client(1, SnfsClientParams::default());
        c.spawn_update_daemon();
        let root = rig.root();
        let counter = rig.counter.clone();
        rig.sim.block_on(async move {
            let (fh, _) = c.create(root, "tmp").await.unwrap();
            c.open(fh, true).await.unwrap();
            c.write(fh, 0, &[1u8; 8 * BLOCK_SIZE]).await.unwrap();
            c.close(fh, true).await.unwrap();
            c.remove(root, "tmp", Some(fh)).await.unwrap();
            assert_eq!(counter.get(NfsProc::Write), 0, "writes averted entirely");
            assert_eq!(c.stats().cancelled_blocks, 8);
        });
    }

    #[test]
    fn cache_survives_reopen_via_version_numbers() {
        // Contrast with the NFS invalidate-on-close bug: SNFS re-validates
        // by version and keeps the cache.
        let rig = Rig::new();
        let c = rig.client(1, SnfsClientParams::default());
        let root = rig.root();
        let counter = rig.counter.clone();
        rig.sim.block_on(async move {
            let (fh, _) = c.create(root, "f").await.unwrap();
            c.open(fh, true).await.unwrap();
            c.write(fh, 0, &[3u8; 4 * BLOCK_SIZE]).await.unwrap();
            c.close(fh, true).await.unwrap();
            // Reopen read: version check passes.
            c.open(fh, false).await.unwrap();
            let before = counter.get(NfsProc::Read);
            let (got, _) = c.read(fh, 0, (4 * BLOCK_SIZE) as u32).await.unwrap();
            assert!(got.iter().all(|&b| b == 3));
            assert_eq!(counter.get(NfsProc::Read), before, "served from cache");
            c.close(fh, false).await.unwrap();
        });
    }

    #[test]
    fn writer_reopen_for_write_keeps_cache_via_prev_version() {
        let rig = Rig::new();
        let c = rig.client(1, SnfsClientParams::default());
        let root = rig.root();
        let counter = rig.counter.clone();
        rig.sim.block_on(async move {
            let (fh, _) = c.create(root, "f").await.unwrap();
            c.open(fh, true).await.unwrap();
            c.write(fh, 0, &[3u8; 2 * BLOCK_SIZE]).await.unwrap();
            c.close(fh, true).await.unwrap();
            c.open(fh, true).await.unwrap(); // version bumps; prev matches
            let before = counter.get(NfsProc::Read);
            let (got, _) = c.read(fh, 0, (2 * BLOCK_SIZE) as u32).await.unwrap();
            assert!(got.iter().all(|&b| b == 3));
            assert_eq!(counter.get(NfsProc::Read), before);
            c.close(fh, true).await.unwrap();
        });
    }

    #[test]
    fn sequential_sharing_forces_writeback_callback() {
        // A wrote and closed (dirty). B opens: the server calls A back,
        // A's data lands at the server, B reads it correctly.
        let rig = Rig::new();
        let a = rig.client(1, SnfsClientParams::default());
        let b = rig.client(2, SnfsClientParams::default());
        let root = rig.root();
        let server = rig.server.clone();
        rig.sim.block_on(async move {
            let (fh, _) = a.create(root, "f").await.unwrap();
            a.open(fh, true).await.unwrap();
            a.write(fh, 0, &[9u8; 2 * BLOCK_SIZE]).await.unwrap();
            a.close(fh, true).await.unwrap();
            assert_eq!(a.dirty_blocks(), 2);
            assert_eq!(server.state_of(fh), FileState::ClosedDirty);
            // B opens read: callback(writeback) to A happens inside.
            b.open(fh, false).await.unwrap();
            assert_eq!(a.dirty_blocks(), 0, "A was called back");
            assert_eq!(a.stats().callbacks_served, 1);
            let (got, _) = b.read(fh, 0, (2 * BLOCK_SIZE) as u32).await.unwrap();
            assert!(got.iter().all(|&x| x == 9), "B sees A's delayed data");
            assert_eq!(server.state_of(fh), FileState::OneReader);
        });
    }

    #[test]
    fn no_stale_reads_under_write_sharing() {
        // The guarantee NFS lacks: with A holding the file open for write
        // and B reading concurrently, B always sees A's latest bytes.
        let rig = Rig::new();
        let a = rig.client(1, SnfsClientParams::default());
        let b = rig.client(2, SnfsClientParams::default());
        let root = rig.root();
        let server = rig.server.clone();
        rig.sim.block_on(async move {
            let (fh, _) = a.create(root, "f").await.unwrap();
            a.open(fh, true).await.unwrap();
            a.write(fh, 0, &[1u8; BLOCK_SIZE]).await.unwrap();
            // B arrives while A is writing: write-shared, nobody caches.
            b.open(fh, false).await.unwrap();
            assert_eq!(server.state_of(fh), FileState::WriteShared);
            let (got, _) = b.read(fh, 0, BLOCK_SIZE as u32).await.unwrap();
            assert!(got.iter().all(|&x| x == 1), "A's pre-share data visible");
            // A writes more — now write-through, so B sees it immediately.
            a.write(fh, 0, &[2u8; BLOCK_SIZE]).await.unwrap();
            let (got, _) = b.read(fh, 0, BLOCK_SIZE as u32).await.unwrap();
            assert!(got.iter().all(|&x| x == 2), "no stale window");
            a.close(fh, true).await.unwrap();
            b.close(fh, false).await.unwrap();
        });
    }

    #[test]
    fn readers_invalidated_when_writer_arrives() {
        let rig = Rig::new();
        let a = rig.client(1, SnfsClientParams::default());
        let b = rig.client(2, SnfsClientParams::default());
        let root = rig.root();
        rig.sim.block_on(async move {
            let (fh, _) = a.create(root, "f").await.unwrap();
            a.open(fh, true).await.unwrap();
            a.write(fh, 0, &[1u8; BLOCK_SIZE]).await.unwrap();
            a.close(fh, true).await.unwrap();
            // A reopens read and caches.
            a.open(fh, false).await.unwrap();
            let _ = a.read(fh, 0, BLOCK_SIZE as u32).await.unwrap();
            // B opens for write → A gets an invalidate callback.
            b.open(fh, true).await.unwrap();
            assert!(a.stats().invalidations >= 1);
            b.write(fh, 0, &[5u8; BLOCK_SIZE]).await.unwrap();
            // A reads again: must go through to the server and see B's data.
            let (got, _) = a.read(fh, 0, BLOCK_SIZE as u32).await.unwrap();
            assert!(got.iter().all(|&x| x == 5));
            a.close(fh, false).await.unwrap();
            b.close(fh, true).await.unwrap();
        });
    }

    #[test]
    fn open_close_rpc_accounting() {
        let rig = Rig::new();
        let c = rig.client(1, SnfsClientParams::default());
        let root = rig.root();
        let counter = rig.counter.clone();
        rig.sim.block_on(async move {
            let (fh, _) = c.create(root, "f").await.unwrap();
            for _ in 0..3 {
                c.open(fh, false).await.unwrap();
                c.close(fh, false).await.unwrap();
            }
            assert_eq!(counter.get(NfsProc::Open), 3);
            assert_eq!(counter.get(NfsProc::Close), 3);
            assert_eq!(counter.get(NfsProc::GetAttr), 0, "open subsumes getattr");
        });
    }

    #[test]
    fn delayed_close_avoids_reopen_rpcs() {
        let rig = Rig::new();
        let c = rig.client(
            1,
            SnfsClientParams {
                delayed_close: true,
                ..SnfsClientParams::default()
            },
        );
        let root = rig.root();
        let counter = rig.counter.clone();
        rig.sim.block_on(async move {
            let (fh, _) = c.create(root, "hdr").await.unwrap();
            // The "popular header file" pattern of §5.1/§6.2.
            for _ in 0..10 {
                c.open(fh, false).await.unwrap();
                let _ = c.read(fh, 0, 10).await.unwrap();
                c.close(fh, false).await.unwrap();
            }
            assert_eq!(counter.get(NfsProc::Open), 1, "only the first open pays");
            assert_eq!(counter.get(NfsProc::Close), 0, "closes all deferred");
            assert_eq!(c.stats().local_reopens, 9);
        });
    }

    #[test]
    fn delayed_close_reports_spontaneously() {
        let rig = Rig::new();
        let c = rig.client(
            1,
            SnfsClientParams {
                delayed_close: true,
                delayed_close_timeout: SimDuration::from_secs(60),
                ..SnfsClientParams::default()
            },
        );
        let root = rig.root();
        let counter = rig.counter.clone();
        let server = rig.server.clone();
        let sim = rig.sim.clone();
        sim.block_on({
            let sim = sim.clone();
            async move {
                let (fh, _) = c.create(root, "f").await.unwrap();
                c.open(fh, false).await.unwrap();
                c.close(fh, false).await.unwrap();
                assert_eq!(counter.get(NfsProc::Close), 0);
                assert_eq!(server.state_of(fh), FileState::OneReader);
                sim.sleep(SimDuration::from_secs(61)).await;
                assert_eq!(counter.get(NfsProc::Close), 1, "spontaneous close");
                assert_eq!(server.state_of(fh), FileState::Closed);
            }
        });
    }

    #[test]
    fn crashed_client_does_not_block_opens() {
        let rig = Rig::new();
        let a = rig.client(1, SnfsClientParams::default());
        let b = rig.client(2, SnfsClientParams::default());
        let root = rig.root();
        let server = rig.server.clone();
        let sim = rig.sim.clone();
        sim.block_on(async move {
            let (fh, _) = a.create(root, "f").await.unwrap();
            a.open(fh, true).await.unwrap();
            a.write(fh, 0, &[1u8; BLOCK_SIZE]).await.unwrap();
            a.close(fh, true).await.unwrap();
            // A "crashes": its callback channel stops answering.
            rig.kill_callbacks(&a);
            // B's open must still succeed (§3.2: honor the open). The
            // server now retries the callback past the keepalive
            // horizon before declaring A dead, so B's first attempts
            // time out at the RPC layer and it re-opens — as a real
            // hard-mounted client would.
            let mut opened = false;
            for _ in 0..20 {
                if b.open(fh, false).await.is_ok() {
                    opened = true;
                    break;
                }
            }
            assert!(opened, "open honored despite dead client");
            assert!(server.stats().callbacks_failed >= 1);
            assert!(
                server.callback_retries() >= 1,
                "the dead channel was retried before A was declared crashed"
            );
        });
    }

    #[test]
    fn state_table_limit_triggers_reclaim() {
        let rig = Rig::with_server_params(SnfsServerParams {
            table_limit: 8,
            reclaim_target: 4,
            ..SnfsServerParams::default()
        });
        let c = rig.client(1, SnfsClientParams::default());
        let root = rig.root();
        let server = rig.server.clone();
        let sim = rig.sim.clone();
        sim.block_on({
            let sim = sim.clone();
            async move {
                for i in 0..20 {
                    let (fh, _) = c.create(root, &format!("f{i}")).await.unwrap();
                    c.open(fh, false).await.unwrap();
                    c.close(fh, false).await.unwrap();
                }
                // Let the asynchronous reclaim passes run.
                sim.sleep(SimDuration::from_secs(2)).await;
                assert!(
                    server.table_len() <= 8,
                    "table bounded, got {}",
                    server.table_len()
                );
                assert!(server.stats().reclaim_passes >= 1);
            }
        });
    }

    #[test]
    fn reclaim_of_closed_dirty_forces_writeback() {
        let rig = Rig::with_server_params(SnfsServerParams {
            table_limit: 4,
            reclaim_target: 2,
            ..SnfsServerParams::default()
        });
        let c = rig.client(1, SnfsClientParams::default());
        let root = rig.root();
        let counter = rig.counter.clone();
        let sim = rig.sim.clone();
        sim.block_on({
            let sim = sim.clone();
            async move {
                // Several closed-dirty files.
                for i in 0..6 {
                    let (fh, _) = c.create(root, &format!("f{i}")).await.unwrap();
                    c.open(fh, true).await.unwrap();
                    c.write(fh, 0, &[1u8; BLOCK_SIZE]).await.unwrap();
                    c.close(fh, true).await.unwrap();
                }
                sim.sleep(SimDuration::from_secs(5)).await;
                assert!(
                    counter.get(NfsProc::Write) > 0,
                    "reclaim callbacks forced write-backs"
                );
            }
        });
    }

    #[test]
    fn file_lock_table_is_bounded() {
        // Satellite fix: the per-file lock map used to grow without
        // bound (one semaphore per file handle ever touched). Idle
        // locks for CLOSED files are now garbage-collected.
        let rig = Rig::new();
        let c = rig.client(1, SnfsClientParams::default());
        let root = rig.root();
        let server = rig.server.clone();
        rig.sim.block_on(async move {
            let mut handles = Vec::new();
            for i in 0..32 {
                let (fh, _) = c.create(root, &format!("f{i}")).await.unwrap();
                handles.push(fh);
                c.open(fh, false).await.unwrap();
                c.close(fh, false).await.unwrap();
            }
            assert_eq!(
                server.file_locks_len(),
                0,
                "idle locks for closed files are reclaimed"
            );
            // A file that is still open keeps its lock entry alive.
            c.open(handles[0], true).await.unwrap();
            assert_eq!(server.file_locks_len(), 1);
            c.close(handles[0], true).await.unwrap();
            // Closed-dirty: the entry stays until the write-back lands,
            // but the map never tracks more than the active files.
            assert!(server.file_locks_len() <= 1);
        });
    }

    #[test]
    fn deterministic_elapsed_and_counts() {
        let run = || {
            let rig = Rig::new();
            let a = rig.client(1, SnfsClientParams::default());
            let b = rig.client(2, SnfsClientParams::default());
            let root = rig.root();
            let counter = rig.counter.clone();
            let out = rig.sim.block_on(async move {
                let (fh, _) = a.create(root, "f").await.unwrap();
                a.open(fh, true).await.unwrap();
                a.write(fh, 0, &[1u8; 6 * BLOCK_SIZE]).await.unwrap();
                a.close(fh, true).await.unwrap();
                b.open(fh, false).await.unwrap();
                let _ = b.read(fh, 0, (6 * BLOCK_SIZE) as u32).await.unwrap();
                b.close(fh, false).await.unwrap();
                counter.snapshot().total()
            });
            (out, rig.sim.now().as_micros())
        };
        assert_eq!(run(), run());
    }
}
