//! Open delegations: client-side open/close authority (DESIGN.md §17).
//!
//! An AFS/NFSv4-style extension of the paper's consistency protocol: when
//! the state table says a file has no conflicting users, the server
//! piggybacks a *delegation* on the open reply. The holder then serves
//! further opens, closes and attribute reads locally — zero RPCs — queuing
//! the close-time state updates it would have sent, until a conflicting
//! open triggers a recall callback (or a server reboot discards the
//! delegation wholesale).
//!
//! This module holds the shared knobs and counters; the mechanism lives in
//! the state table (grant/recall/return/revoke bookkeeping), the server
//! (recall protocol and fencing) and the client (local fast path).

use spritely_sim::SimDuration;

/// Configuration for the delegation subsystem. Shared by the server (which
/// grants, recalls and revokes) and the client (which serves opens locally
/// while its lease is fresh).
///
/// `paper()` disables the subsystem entirely and is provably inert: no
/// grants, no new RPCs, byte-identical traces and tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DelegationParams {
    /// Master switch. Off reproduces the paper exactly.
    pub enabled: bool,
    /// How long the server waits for a recalled delegation to come back
    /// before revoking it and fencing the holder (DESIGN.md §17.3).
    pub recall_timeout: SimDuration,
    /// Client-side lease: a delegation serves local opens only while the
    /// client has heard from the server (any successful RPC, including the
    /// keepalive probe) within this window. Must be shorter than
    /// `recall_timeout` so an unreachable holder stops using its
    /// delegation *before* the server revokes it.
    pub lease: SimDuration,
}

impl DelegationParams {
    /// Delegations off: the configuration the paper measured.
    pub fn paper() -> Self {
        DelegationParams {
            enabled: false,
            recall_timeout: SimDuration::from_secs(20),
            lease: SimDuration::from_secs(15),
        }
    }

    /// Delegations on, with a lease that tolerates one lost keepalive
    /// (10 s interval) and a recall timeout safely above the lease.
    pub fn pipelined() -> Self {
        DelegationParams {
            enabled: true,
            ..DelegationParams::paper()
        }
    }
}

impl Default for DelegationParams {
    fn default() -> Self {
        DelegationParams::paper()
    }
}

/// Fixed-bucket latency histogram for recall round-trips. Buckets:
/// `<1ms, <10ms, <100ms, <1s, ≥1s` of virtual time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecallHistogram {
    /// Counts per bucket (see [`RecallHistogram::BOUNDS_US`]).
    pub buckets: [u64; 5],
}

impl RecallHistogram {
    /// Upper bounds (exclusive) of the first four buckets, in virtual
    /// microseconds; the fifth bucket is unbounded.
    pub const BOUNDS_US: [u64; 4] = [1_000, 10_000, 100_000, 1_000_000];

    /// Records one recall that took `us` virtual microseconds.
    pub fn record(&mut self, us: u64) {
        let i = Self::BOUNDS_US
            .iter()
            .position(|&b| us < b)
            .unwrap_or(Self::BOUNDS_US.len());
        self.buckets[i] += 1;
    }

    /// Total recalls recorded.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }
}

/// Counters for the delegation subsystem, aggregated across server and
/// clients into the stats snapshot (`report::delegation_table`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DelegationStats {
    /// Read delegations granted (server).
    pub grants_read: u64,
    /// Write delegations granted (server).
    pub grants_write: u64,
    /// Opens served locally from a delegation, no RPC (clients).
    pub local_opens: u64,
    /// Closes absorbed locally into the queued return state (clients).
    pub local_closes: u64,
    /// Recall callbacks issued (server).
    pub recalls: u64,
    /// Delegations returned and applied (server).
    pub returns: u64,
    /// Delegations revoked after a recall timeout (server).
    pub revokes: u64,
    /// Round-trip latency of completed recalls (server).
    pub recall_latency: RecallHistogram,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_mode_is_disabled() {
        assert!(!DelegationParams::paper().enabled);
        assert!(DelegationParams::pipelined().enabled);
        assert_eq!(DelegationParams::default(), DelegationParams::paper());
    }

    #[test]
    fn lease_is_shorter_than_recall_timeout() {
        // The fencing argument (DESIGN.md §17.3) needs an unreachable
        // holder to stop serving local opens before the server revokes.
        let p = DelegationParams::pipelined();
        assert!(p.lease < p.recall_timeout);
    }

    #[test]
    fn histogram_buckets() {
        let mut h = RecallHistogram::default();
        h.record(0);
        h.record(999);
        h.record(1_000);
        h.record(99_999);
        h.record(5_000_000);
        assert_eq!(h.buckets, [2, 1, 1, 0, 1]);
        assert_eq!(h.total(), 5);
    }
}
