//! The SNFS server: the stateless NFS service plus the state-table
//! manager and server→client callbacks.
//!
//! Mirrors the paper's implementation (§4.3): "Our only modification to
//! the original NFS server code was to add the two new RPC service
//! functions" — all other procedures delegate to the baseline NFS handler
//! in `spritely-nfs`. The new `open` service consults the state table and
//! may issue callbacks before replying; `close` just notifies the table.
//!
//! Threading discipline (§3.2): an SNFS server with N service threads may
//! run at most N−1 callbacks simultaneously, so that a callback-induced
//! write-back always finds a free thread — otherwise open(A) → callback(B)
//! → write(B) would deadlock on the thread pool.

use std::cell::{Cell, RefCell};
use std::collections::{HashMap, HashSet};
use std::rc::Rc;

use spritely_blockdev::DiskSched;
use spritely_localfs::LocalFs;
use spritely_metrics::{InflightGauge, OpCounter};
use spritely_proto::{
    CallbackArg, CallbackReply, ClientId, FileHandle, FileVersion, Layout, NfsReply, NfsRequest,
    NfsStatus, OpenReply,
};
use spritely_rpcnet::{Caller, Endpoint, EndpointParams};
use spritely_sim::{Resource, Semaphore, Sim, SimDuration};
use spritely_trace::{Cause, EventKind, Tracer};

use crate::delegation::{DelegationParams, DelegationStats};
use crate::state_table::{CallbackNeeded, Deleg, FileState, StateTable};

/// SNFS server configuration.
#[derive(Debug, Clone, Copy)]
pub struct SnfsServerParams {
    /// Maximum state-table entries (paper §4.3.1; each entry cost 68
    /// bytes, so limits could be liberal — 1000 entries ≈ 70 KB).
    pub table_limit: usize,
    /// When over the limit, reclaim down to this many entries.
    pub reclaim_target: usize,
    /// §6.1 coexistence: treat a plain-NFS read/write of a file that is
    /// open under SNFS as an implicit SNFS open, so NFS clients get
    /// consistent data and SNFS clients get their callbacks.
    pub hybrid_nfs: bool,
    /// §2.4 recovery: how long a rebooted server stays in its grace
    /// period, accepting only `recover`/`keepalive` calls while clients
    /// re-register their state.
    pub grace_period: SimDuration,
    /// §7 extension: Sprite-style consistency for name translations. A
    /// `lookup` registers the caller as a watcher of the directory; any
    /// namespace change to that directory sends invalidate callbacks to
    /// the other watchers *before* the change is acknowledged, so client
    /// name caches can never serve a stale translation.
    pub dir_callbacks: bool,
    /// First retry delay after a timed-out callback. Doubles per retry
    /// (capped at 8 s). A timed-out callback used to declare the client
    /// crashed immediately, so one lossy exchange — or a transient
    /// partition — destroyed a live client's write-back claim.
    pub callback_retry_backoff: SimDuration,
    /// How long callback retries continue before the client is declared
    /// dead (its state discarded, §3.2's "dead client" case). Roughly
    /// three keepalive intervals: a client silent that long has missed
    /// its liveness horizon too. Zero restores the legacy
    /// give-up-on-first-timeout behavior (used by regression tests to
    /// pin the old bug).
    pub callback_dead_after: SimDuration,
    /// Open-delegation knobs (DESIGN.md §17). Off by default; when off
    /// the server grants nothing, recalls nothing, and its replies are
    /// byte-identical to the paper configuration.
    pub delegation: DelegationParams,
}

impl Default for SnfsServerParams {
    fn default() -> Self {
        SnfsServerParams {
            table_limit: 1000,
            reclaim_target: 900,
            hybrid_nfs: true,
            grace_period: SimDuration::from_secs(20),
            dir_callbacks: true,
            callback_retry_backoff: SimDuration::from_secs(2),
            callback_dead_after: SimDuration::from_secs(30),
            delegation: DelegationParams::paper(),
        }
    }
}

/// Server I/O pipeline configuration: how the server's disk arm is
/// scheduled, how large its block cache is, whether concurrent miss
/// reads coalesce, and how many RPCs may be admitted concurrently.
///
/// [`ServerIoParams::paper`] (the default) reproduces the measured 1989
/// server byte-for-byte; [`ServerIoParams::pipelined`] turns all three
/// layers on. Server writes stay synchronous in both modes — the cache
/// is write-through and never delays durability, per the paper's NFS
/// server semantics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerIoParams {
    /// Disk-arm scheduling policy for the server disk.
    pub sched: DiskSched,
    /// Server buffer-cache capacity in blocks.
    pub cache_blocks: usize,
    /// Collapse concurrent cache misses on one block into a single disk
    /// read (followers wait for the leader's fetch).
    pub single_flight_reads: bool,
    /// RPC service threads. This is the admission width — that many RPCs
    /// overlap CPU with disk waits — and the N of the N−1 callback bound.
    pub service_threads: usize,
}

impl ServerIoParams {
    /// The paper-era server: FIFO arm, the baseline 896-block cache, one
    /// disk read per miss, 4 service threads. Keeps every `table_5_*`
    /// and `figure_5_*` artifact byte-identical.
    pub fn paper() -> Self {
        ServerIoParams {
            sched: DiskSched::Fifo,
            cache_blocks: 896,
            single_flight_reads: false,
            service_threads: 4,
        }
    }

    /// The pipelined server: C-LOOK arm scheduling (aging limit 4, so no
    /// request is bypassed more than 4 times; 2M-block full stroke), a
    /// 4096-block cache with single-flight misses, and 8 service threads
    /// overlapping CPU with disk waits.
    pub fn pipelined() -> Self {
        ServerIoParams {
            sched: DiskSched::CLook {
                max_bypass: 4,
                stroke_blocks: 1 << 21,
            },
            cache_blocks: 4096,
            single_flight_reads: true,
            service_threads: 8,
        }
    }
}

impl Default for ServerIoParams {
    fn default() -> Self {
        Self::paper()
    }
}

/// Callback-related statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Callbacks issued.
    pub callbacks_sent: u64,
    /// Callbacks that failed (client treated as crashed).
    pub callbacks_failed: u64,
    /// Reclaim passes run.
    pub reclaim_passes: u64,
}

/// A server's place in a sharded namespace (DESIGN.md §18): its shard
/// index, its export root, and the authority layout every shard shares.
#[derive(Clone)]
pub struct ShardView {
    /// This server's shard index (its export fsid minus one).
    pub shard: u32,
    /// This shard's export root.
    pub root: FileHandle,
    /// The authority layout. Cross-shard commits mutate it; the gate and
    /// `WrongShard` replies read it.
    pub layout: Rc<RefCell<Layout>>,
}

/// Sharded-namespace counters (DESIGN.md §18). All pure counts: bumping
/// them never perturbs scheduling, so the unsharded configuration stays
/// byte-identical.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardOpStats {
    /// Cross-shard renames committed by this shard as coordinator.
    pub cross_renames: u64,
    /// Cross-shard links committed by this shard as coordinator.
    pub cross_links: u64,
    /// `WrongShard` replies sent (stale client layouts redirected).
    pub wrong_shard_replies: u64,
    /// `Busy` refusals (a name momentarily locked by a transaction).
    pub busy_rejections: u64,
    /// Commit/abort deliveries that needed a retry.
    pub commit_retries: u64,
    /// `file_lock` acquisitions that found the lock already claimed.
    pub lock_contention: u64,
}

/// Participant-side record of a prepared cross-shard transaction.
struct TxEntry {
    /// The target name this shard locked at prepare.
    name: String,
    /// The entry that existed under that name at prepare time (deleted
    /// at commit, when the coordinator's rename supersedes it).
    existed_fh: Option<FileHandle>,
    /// Resolved (committed or aborted); kept for duplicate deliveries.
    done: bool,
}

struct Inner {
    sim: Sim,
    fs: LocalFs,
    table: RefCell<StateTable>,
    /// Registered callback channels, one per client host.
    callback_clients: RefCell<HashMap<ClientId, Caller<CallbackArg, CallbackReply>>>,
    /// Per-file serialization of open/close transitions.
    file_locks: RefCell<HashMap<FileHandle, Semaphore>>,
    /// At most N−1 simultaneous callbacks (N = service threads).
    callback_slots: Semaphore,
    /// Concurrent callbacks in flight (peak must stay ≤ N−1).
    callback_inflight: InflightGauge,
    params: SnfsServerParams,
    stats: Cell<ServerStats>,
    /// Delegation counters (server-side half of [`DelegationStats`]).
    deleg_stats: Cell<DelegationStats>,
    /// Reboot generation; bumped by [`SnfsServer::reboot`]. Clients learn
    /// it from `keepalive` replies and re-register on a change.
    epoch: Cell<u64>,
    /// End of the post-reboot grace period, if one is running.
    grace_until: Cell<Option<spritely_sim::SimTime>>,
    /// Clients that may be caching name translations under a directory
    /// (§7 extension). Cleared per client when an invalidate is sent.
    dir_watchers: RefCell<HashMap<FileHandle, Vec<ClientId>>>,
    /// Service-thread count (for the N−1 trace metadata).
    service_threads: usize,
    /// Logical-callback sequence numbers (stable across retries of the
    /// same callback, so clients can deduplicate duplicate deliveries).
    cb_next_seq: Cell<u64>,
    /// Timed-out callback attempts that were retried instead of
    /// declaring the client dead.
    callback_retries: Cell<u64>,
    /// Unresolved recalls per holder. While non-zero the holder's
    /// keepalives are answered `Grace` instead of renewing its lease
    /// (DESIGN.md §17.3): the recall timeout (20 s) only proves a dead
    /// holder's lease (15 s) lapsed if no renewal crossed the wire
    /// after the recall started.
    recalls_pending: RefCell<HashMap<ClientId, u32>>,
    tracer: RefCell<Option<Tracer>>,
    /// Sharded-namespace view; `None` in the single-server configuration,
    /// where every shard code path costs one borrow + `Option` check.
    shard: RefCell<Option<ShardView>>,
    /// Inter-shard RPC channels to peer shard servers, by shard index.
    peers: RefCell<HashMap<u32, Caller<NfsRequest, NfsReply>>>,
    /// Root-level names locked by an in-flight cross-shard transaction
    /// (volatile; cleared on crash).
    name_locks: RefCell<HashSet<String>>,
    /// Participant-side transaction table (volatile; cleared on crash).
    tx_table: RefCell<HashMap<u64, TxEntry>>,
    /// Coordinator-side transaction id counter (namespaced by shard).
    next_txid: Cell<u64>,
    shard_stats: Cell<ShardOpStats>,
}

/// The Spritely NFS server.
#[derive(Clone)]
pub struct SnfsServer {
    inner: Rc<Inner>,
}

impl SnfsServer {
    /// Creates a server over `fs`. `service_threads` must match the
    /// endpoint's thread count so the N−1 callback rule holds.
    ///
    /// # Panics
    ///
    /// Panics if `service_threads < 2` — a single-threaded SNFS server
    /// would deadlock on the first write-back callback (§3.2).
    pub fn new(sim: &Sim, fs: LocalFs, service_threads: usize, params: SnfsServerParams) -> Self {
        assert!(
            service_threads >= 2,
            "SNFS needs >= 2 service threads (callback deadlock, paper §3.2)"
        );
        SnfsServer {
            inner: Rc::new(Inner {
                sim: sim.clone(),
                fs,
                table: RefCell::new(StateTable::new(params.table_limit)),
                callback_clients: RefCell::new(HashMap::new()),
                file_locks: RefCell::new(HashMap::new()),
                callback_slots: Semaphore::new(service_threads - 1),
                callback_inflight: InflightGauge::new(),
                params,
                stats: Cell::new(ServerStats::default()),
                deleg_stats: Cell::new(DelegationStats::default()),
                epoch: Cell::new(1),
                grace_until: Cell::new(None),
                dir_watchers: RefCell::new(HashMap::new()),
                service_threads,
                cb_next_seq: Cell::new(0),
                callback_retries: Cell::new(0),
                recalls_pending: RefCell::new(HashMap::new()),
                tracer: RefCell::new(None),
                shard: RefCell::new(None),
                peers: RefCell::new(HashMap::new()),
                name_locks: RefCell::new(HashSet::new()),
                tx_table: RefCell::new(HashMap::new()),
                next_txid: Cell::new(0),
                shard_stats: Cell::new(ShardOpStats::default()),
            }),
        }
    }

    /// Places this server in a sharded namespace (DESIGN.md §18): it
    /// serves shard `shard`, exports `root`, and consults (and, as a
    /// cross-shard coordinator, mutates) the shared authority `layout`.
    pub fn set_shard(&self, shard: u32, root: FileHandle, layout: Rc<RefCell<Layout>>) {
        *self.inner.shard.borrow_mut() = Some(ShardView {
            shard,
            root,
            layout,
        });
    }

    /// Registers the inter-shard RPC channel to peer shard `shard`.
    pub fn register_peer(&self, shard: u32, caller: Caller<NfsRequest, NfsReply>) {
        self.inner.peers.borrow_mut().insert(shard, caller);
    }

    /// Sharded-namespace counters.
    pub fn shard_stats(&self) -> ShardOpStats {
        self.inner.shard_stats.get()
    }

    /// Attaches a tracer. Emits the `server_threads` metadata the trace
    /// checker uses for the N−1 callback bound, then records every
    /// state-table transition, callback, and crash.
    pub fn set_tracer(&self, tracer: Tracer) {
        tracer.meta("server_threads", self.inner.service_threads.to_string());
        tracer.meta("table_limit", self.inner.params.table_limit.to_string());
        *self.inner.tracer.borrow_mut() = Some(tracer);
    }

    fn emit(&self, parent: u64, kind: EventKind) -> u64 {
        match self.inner.tracer.borrow().as_ref() {
            Some(t) => t.emit(parent, kind),
            None => 0,
        }
    }

    /// Records one state-table transition. Must be called in the same
    /// synchronous region as the table mutation (no await between them),
    /// so the trace order matches the mutation order.
    fn emit_transition(
        &self,
        parent: u64,
        fh: FileHandle,
        cause: Cause,
        client: ClientId,
        from: FileState,
        to: FileState,
    ) -> u64 {
        if self.inner.tracer.borrow().is_none() {
            return 0;
        }
        let version = self.inner.table.borrow().version_of(fh).map_or(0, |v| v.0);
        self.emit(
            parent,
            EventKind::Transition {
                fh,
                cause,
                client,
                from: from.into(),
                to: to.into(),
                version,
            },
        )
    }

    /// Records the per-file transitions of a client-crash cleanup.
    fn emit_client_crashed(
        &self,
        parent: u64,
        client: ClientId,
        affected: &[(FileHandle, FileState, FileState)],
    ) {
        for &(fh, before, after) in affected {
            self.emit_transition(parent, fh, Cause::ClientCrash, client, before, after);
        }
    }

    /// Registers `client` as possibly caching names under `dir`.
    fn watch_dir(&self, dir: FileHandle, client: ClientId) {
        let mut w = self.inner.dir_watchers.borrow_mut();
        let v = w.entry(dir).or_default();
        if !v.contains(&client) {
            v.push(client);
        }
    }

    /// Invalidates every other watcher's name cache for `dir` before a
    /// namespace change is acknowledged (§7 extension). Watchers are
    /// deregistered by the invalidate; they re-register on their next
    /// lookup.
    async fn invalidate_dir_watchers(&self, parent: u64, dir: FileHandle, originator: ClientId) {
        if !self.inner.params.dir_callbacks {
            return;
        }
        let targets: Vec<ClientId> = {
            let mut w = self.inner.dir_watchers.borrow_mut();
            match w.get_mut(&dir) {
                None => Vec::new(),
                Some(v) => {
                    let targets = v.iter().copied().filter(|&c| c != originator).collect();
                    v.retain(|&c| c == originator);
                    targets
                }
            }
        };
        let callbacks: Vec<CallbackNeeded> = targets
            .into_iter()
            .map(|t| CallbackNeeded {
                target: t,
                writeback: false,
                invalidate: true,
            })
            .collect();
        self.fan_out_callbacks(parent, dir, &callbacks, false).await;
    }

    /// The current reboot epoch (starts at 1).
    pub fn epoch(&self) -> u64 {
        self.inner.epoch.get()
    }

    /// True while the post-reboot grace period is running.
    pub fn in_grace(&self) -> bool {
        match self.inner.grace_until.get() {
            Some(t) => self.inner.sim.now() < t,
            None => false,
        }
    }

    /// Simulates a server crash: all volatile state vanishes — the state
    /// table (including the global version counter, §4.3.3) and the file
    /// system's buffer cache. Stable storage survives. The caller should
    /// also mark the server's endpoints down until [`reboot`](Self::reboot).
    pub fn crash(&self) {
        self.emit(0, EventKind::ServerCrash);
        self.inner.table.borrow_mut().clear();
        // Name locks and the transaction table are volatile too: a peer
        // left holding a prepared entry re-resolves it through the
        // coordinator's commit/abort retries (DESIGN.md §18.4).
        self.inner.name_locks.borrow_mut().clear();
        self.inner.tx_table.borrow_mut().clear();
        self.inner.fs.crash();
    }

    /// Brings the server back up: bumps the epoch and opens the grace
    /// period, during which only `recover` and `keepalive` are served
    /// (§2.4 property 2: the consistency state cannot change until the
    /// server is willing to let it change).
    pub fn reboot(&self) {
        self.inner.epoch.set(self.inner.epoch.get() + 1);
        self.inner
            .grace_until
            .set(Some(self.inner.sim.now() + self.inner.params.grace_period));
    }

    /// Registers the callback channel for a client host. Without one, the
    /// client is treated as unreachable when a callback is needed.
    pub fn register_client(&self, id: ClientId, caller: Caller<CallbackArg, CallbackReply>) {
        self.inner.callback_clients.borrow_mut().insert(id, caller);
    }

    /// The exported file system.
    pub fn fs(&self) -> &LocalFs {
        &self.inner.fs
    }

    /// Server statistics.
    pub fn stats(&self) -> ServerStats {
        self.inner.stats.get()
    }

    /// The server-side delegation counters (grants, recalls, returns,
    /// revokes, recall latency). Client-side counters (local opens and
    /// closes) live in [`crate::client::ClientStats`].
    pub fn delegation_stats(&self) -> DelegationStats {
        self.inner.deleg_stats.get()
    }

    /// Live delegations in the state table (test hook).
    pub fn delegation_count(&self) -> usize {
        self.inner.table.borrow().delegation_count()
    }

    /// Gauge of concurrent callbacks (its peak must stay ≤ N−1, the
    /// §3.2 thread-pool rule — asserted in tests).
    pub fn callback_gauge(&self) -> InflightGauge {
        self.inner.callback_inflight.clone()
    }

    /// Timed-out callback attempts that were retried instead of
    /// immediately declaring the client dead.
    pub fn callback_retries(&self) -> u64 {
        self.inner.callback_retries.get()
    }

    /// Number of state-table entries (for tests; paper §4.3.1 limits).
    pub fn table_len(&self) -> usize {
        self.inner.table.borrow().len()
    }

    /// Observes a file's state (test hook).
    pub fn state_of(&self, fh: FileHandle) -> crate::state_table::FileState {
        self.inner.table.borrow().state_of(fh)
    }

    /// Builds the RPC endpoint for this server.
    pub fn endpoint(
        &self,
        name: impl Into<String>,
        cpu: Resource,
        params: EndpointParams,
        counter: OpCounter,
    ) -> Endpoint<NfsRequest, NfsReply> {
        let this = self.clone();
        let handler = Rc::new(move |from: ClientId, ctx: u64, req: NfsRequest| {
            let this = this.clone();
            Box::pin(async move { this.handle(from, ctx, req).await })
                as std::pin::Pin<Box<dyn std::future::Future<Output = NfsReply>>>
        });
        Endpoint::new(&self.inner.sim, name, cpu, params, counter, handler)
    }

    fn file_lock(&self, fh: FileHandle) -> Semaphore {
        let mut locks = self.inner.file_locks.borrow_mut();
        let sem = locks.entry(fh).or_insert_with(|| Semaphore::new(1));
        // Contention pin for the scaling analysis (DESIGN.md §18.5): a
        // non-idle semaphore means this acquisition will queue behind
        // another client's open/close/write-back on the same file.
        if !sem.is_idle() {
            self.bump_shard(|s| s.lock_contention += 1);
        }
        sem.clone()
    }

    /// Drops a file's lock entry once nothing references it — the
    /// semaphore is fully idle (no holder, no grant, no waiter) and the
    /// file is back to CLOSED (absent from the table). Every `file_lock`
    /// caller acquires in the same synchronous region as the lookup, so
    /// an idle semaphore has no about-to-acquire claimants either.
    /// Without this the map leaked one entry per file ever opened.
    fn gc_file_lock(&self, fh: FileHandle) {
        let mut locks = self.inner.file_locks.borrow_mut();
        let Some(sem) = locks.get(&fh) else { return };
        if sem.is_idle() && self.inner.table.borrow().state_of(fh) == FileState::Closed {
            locks.remove(&fh);
        }
    }

    /// Number of live per-file lock entries (bounded-growth tests).
    pub fn file_locks_len(&self) -> usize {
        self.inner.file_locks.borrow().len()
    }

    fn bump_stats(&self, f: impl FnOnce(&mut ServerStats)) {
        let mut s = self.inner.stats.get();
        f(&mut s);
        self.inner.stats.set(s);
    }

    fn bump_deleg(&self, f: impl FnOnce(&mut DelegationStats)) {
        let mut s = self.inner.deleg_stats.get();
        f(&mut s);
        self.inner.deleg_stats.set(s);
    }

    fn bump_shard(&self, f: impl FnOnce(&mut ShardOpStats)) {
        let mut s = self.inner.shard_stats.get();
        f(&mut s);
        self.inner.shard_stats.set(s);
    }

    fn name_locked(&self, name: &str) -> bool {
        self.inner.name_locks.borrow().contains(name)
    }

    fn lock_name(&self, name: &str) {
        self.inner.name_locks.borrow_mut().insert(name.to_string());
    }

    fn unlock_name(&self, name: &str) {
        self.inner.name_locks.borrow_mut().remove(name);
    }

    /// Allocates a transaction id namespaced by this shard's index, so
    /// concurrent coordinators can never collide in a peer's table.
    fn next_txid(&self) -> u64 {
        let shard = self.inner.shard.borrow().as_ref().map_or(0, |v| v.shard);
        let n = self.inner.next_txid.get() + 1;
        self.inner.next_txid.set(n);
        (u64::from(shard + 1) << 48) | n
    }

    /// Shard-ownership gate (DESIGN.md §18.2), run after the grace gate
    /// on every request. Returns an early reply when this shard must
    /// refuse: `Busy` while a cross-shard transaction holds the name,
    /// `WrongShard` (with the fresh layout delta) when a stale client
    /// routed here. Otherwise emits the rule-10 `shard_route` record for
    /// root-level name operations this shard owns and lets the request
    /// fall through. Always `None` in the unsharded configuration.
    fn shard_gate(&self, ctx: u64, req: &NfsRequest) -> Option<NfsReply> {
        let view = self.inner.shard.borrow().clone()?;
        let busy = |this: &Self| {
            this.bump_shard(|s| s.busy_rejections += 1);
            Some(NfsReply::Err(NfsStatus::Busy))
        };
        let gate = |name: &str| -> Option<NfsReply> {
            if self.name_locked(name) {
                return busy(self);
            }
            let layout = view.layout.borrow();
            if layout.owner(name) != view.shard {
                let (epoch, moves) = (layout.epoch(), layout.moves());
                drop(layout);
                self.bump_shard(|s| s.wrong_shard_replies += 1);
                return Some(NfsReply::WrongShard { epoch, moves });
            }
            let epoch = layout.epoch();
            drop(layout);
            if self.inner.tracer.borrow().is_some() {
                self.emit(
                    ctx,
                    EventKind::ShardRoute {
                        shard: view.shard,
                        name: name.to_string(),
                        epoch,
                    },
                );
            }
            None
        };
        match req {
            NfsRequest::Lookup { dir, name }
            | NfsRequest::Create { dir, name }
            | NfsRequest::Remove { dir, name }
            | NfsRequest::Mkdir { dir, name }
            | NfsRequest::Rmdir { dir, name }
            | NfsRequest::Symlink { dir, name, .. }
                if *dir == view.root =>
            {
                gate(name)
            }
            NfsRequest::Rename {
                from_dir,
                from_name,
                to_dir,
                to_name,
            } => {
                if *to_dir == view.root && self.name_locked(to_name) {
                    return busy(self);
                }
                if *from_dir == view.root {
                    return gate(from_name);
                }
                None
            }
            NfsRequest::Link {
                to_dir, to_name, ..
            } if *to_dir == view.root => {
                if self.name_locked(to_name) {
                    return busy(self);
                }
                None
            }
            _ => None,
        }
    }

    /// When both directory handles address this shard's export root but
    /// the layout owns `to_name` elsewhere, the operation needs the
    /// cross-shard path: returns the view and the peer shard index.
    fn cross_shard_target(
        &self,
        from_dir: FileHandle,
        to_dir: FileHandle,
        to_name: &str,
    ) -> Option<(ShardView, u32)> {
        let view = self.inner.shard.borrow().clone()?;
        if from_dir != view.root || to_dir != view.root {
            return None;
        }
        let owner = view.layout.borrow().owner(to_name);
        (owner != view.shard).then_some((view, owner))
    }

    /// Phase-1 call to the peer: retried through transport errors and
    /// the peer's grace period (the lock request must eventually land);
    /// a `Busy` refusal aborts the whole operation instead — the client
    /// backs off and retries, which is what breaks symmetric-rename
    /// deadlocks.
    async fn tx_call_prepare(
        &self,
        peer_shard: u32,
        txid: u64,
        name: &str,
    ) -> Result<bool, NfsReply> {
        let caller = self
            .inner
            .peers
            .borrow()
            .get(&peer_shard)
            .cloned()
            .expect("sharded servers register every peer");
        loop {
            let req = NfsRequest::TxPrepare {
                txid,
                name: name.to_string(),
            };
            match caller.call(req).await {
                Ok(NfsReply::TxPrepared { existed }) => return Ok(existed),
                Ok(NfsReply::Err(NfsStatus::Busy)) => {
                    return Err(NfsReply::Err(NfsStatus::Busy));
                }
                Ok(NfsReply::Err(NfsStatus::Grace)) | Err(_) => {
                    self.inner.sim.sleep(SimDuration::from_secs(1)).await;
                }
                Ok(_) => return Err(NfsReply::Err(NfsStatus::Io)),
            }
        }
    }

    /// Retries `TxCommit` out of line until the peer acknowledges, then
    /// closes the transaction in the trace. Commit is irrevocable once
    /// the layout move is published, so the client's reply never waits
    /// for the peer's cleanup.
    fn spawn_tx_commit(&self, parent: u64, peer_shard: u32, txid: u64) {
        let this = self.clone();
        self.inner.sim.spawn(async move {
            let caller = this
                .inner
                .peers
                .borrow()
                .get(&peer_shard)
                .cloned()
                .expect("sharded servers register every peer");
            loop {
                match caller.call_ctx(parent, NfsRequest::TxCommit { txid }).await {
                    Ok(NfsReply::Ok) => break,
                    // A reply that is not a plain Ok (e.g. `Grace` from a
                    // rebooting peer) has not performed the cleanup.
                    Ok(_) | Err(_) => {
                        this.bump_shard(|s| s.commit_retries += 1);
                        this.inner.sim.sleep(SimDuration::from_secs(1)).await;
                    }
                }
            }
            this.emit(
                parent,
                EventKind::ShardTxEnd {
                    txid,
                    committed: true,
                },
            );
        });
    }

    /// Retries `TxAbort` out of line until the peer drops its prepared
    /// entry and releases the name lock.
    fn spawn_tx_abort(&self, peer_shard: u32, txid: u64) {
        let this = self.clone();
        self.inner.sim.spawn(async move {
            let caller = this
                .inner
                .peers
                .borrow()
                .get(&peer_shard)
                .cloned()
                .expect("sharded servers register every peer");
            loop {
                match caller.call(NfsRequest::TxAbort { txid }).await {
                    Ok(NfsReply::Ok) => break,
                    Ok(_) | Err(_) => {
                        this.bump_shard(|s| s.commit_retries += 1);
                        this.inner.sim.sleep(SimDuration::from_secs(1)).await;
                    }
                }
            }
        });
    }

    /// Coordinator half of a cross-shard rename (DESIGN.md §18.3). The
    /// file body never moves: the entry is renamed inside this shard's
    /// store and the authority layout gains an override routing
    /// `to_name` here — ownership follows the data. The peer that owned
    /// `to_name` participates in a two-phase exchange so the name is
    /// locked on both shards for the whole window and the peer's
    /// overwritten entry is deleted exactly once.
    #[allow(clippy::too_many_arguments)]
    async fn cross_shard_rename(
        &self,
        ctx: u64,
        from: ClientId,
        view: ShardView,
        peer_shard: u32,
        from_dir: FileHandle,
        from_name: String,
        to_dir: FileHandle,
        to_name: String,
    ) -> NfsReply {
        // Lock both names locally. The gate vetted `from_name` in this
        // same synchronous region, so this cannot fail on it; `to_name`
        // may race another transaction.
        if self.name_locked(&from_name) || self.name_locked(&to_name) {
            self.bump_shard(|s| s.busy_rejections += 1);
            return NfsReply::Err(NfsStatus::Busy);
        }
        self.lock_name(&from_name);
        self.lock_name(&to_name);
        let txid = self.next_txid();
        // Phase 1: the peer locks `to_name` and reports what it holds.
        // Only after it succeeds are both names locked on both shards —
        // which is why the begin event (opening the checker's atomicity
        // window) must not be emitted any earlier.
        if let Err(rep) = self.tx_call_prepare(peer_shard, txid, &to_name).await {
            self.unlock_name(&from_name);
            self.unlock_name(&to_name);
            return rep;
        }
        let begin = self.emit(
            ctx,
            EventKind::ShardTxBegin {
                txid,
                from_shard: view.shard,
                to_shard: peer_shard,
                from_name: from_name.clone(),
                to_name: to_name.clone(),
                link: false,
            },
        );
        // Phase 2, local half: the rename inside this shard's store. The
        // name locks guarantee no other operation observes the window,
        // even across the handler's awaits.
        let rep = spritely_nfs::handle(
            &self.inner.fs,
            NfsRequest::Rename {
                from_dir,
                from_name: from_name.clone(),
                to_dir,
                to_name: to_name.clone(),
            },
        )
        .await;
        if matches!(rep, NfsReply::Err(_)) {
            self.spawn_tx_abort(peer_shard, txid);
            self.emit(
                begin,
                EventKind::ShardTxEnd {
                    txid,
                    committed: false,
                },
            );
            self.unlock_name(&from_name);
            self.unlock_name(&to_name);
            return rep;
        }
        self.bump_shard(|s| s.cross_renames += 1);
        // Commit point: publish the ownership move. From here every
        // shard's gate and every refreshed client routes `to_name` to
        // this shard, and the transaction can only complete.
        let epoch = view
            .layout
            .borrow_mut()
            .record_move(Some(&from_name), &to_name, view.shard);
        self.emit(
            begin,
            EventKind::ShardMove {
                from_name: from_name.clone(),
                to_name: to_name.clone(),
                shard: view.shard,
                epoch,
            },
        );
        self.spawn_tx_commit(begin, peer_shard, txid);
        self.invalidate_dir_watchers(ctx, from_dir, from).await;
        self.unlock_name(&from_name);
        self.unlock_name(&to_name);
        rep
    }

    /// Coordinator half of a cross-shard link: same two-phase exchange
    /// as a rename, except link(2) does not overwrite — a prepared peer
    /// reporting an existing target aborts with `Exist`.
    #[allow(clippy::too_many_arguments)]
    async fn cross_shard_link(
        &self,
        ctx: u64,
        from: ClientId,
        view: ShardView,
        peer_shard: u32,
        src: FileHandle,
        to_dir: FileHandle,
        to_name: String,
    ) -> NfsReply {
        if self.name_locked(&to_name) {
            self.bump_shard(|s| s.busy_rejections += 1);
            return NfsReply::Err(NfsStatus::Busy);
        }
        self.lock_name(&to_name);
        let txid = self.next_txid();
        let existed = match self.tx_call_prepare(peer_shard, txid, &to_name).await {
            Ok(existed) => existed,
            Err(rep) => {
                self.unlock_name(&to_name);
                return rep;
            }
        };
        if existed {
            self.spawn_tx_abort(peer_shard, txid);
            self.unlock_name(&to_name);
            return NfsReply::Err(NfsStatus::Exist);
        }
        let begin = self.emit(
            ctx,
            EventKind::ShardTxBegin {
                txid,
                from_shard: view.shard,
                to_shard: peer_shard,
                from_name: String::new(),
                to_name: to_name.clone(),
                link: true,
            },
        );
        let rep = spritely_nfs::handle(
            &self.inner.fs,
            NfsRequest::Link {
                from: src,
                to_dir,
                to_name: to_name.clone(),
            },
        )
        .await;
        if matches!(rep, NfsReply::Err(_)) {
            self.spawn_tx_abort(peer_shard, txid);
            self.emit(
                begin,
                EventKind::ShardTxEnd {
                    txid,
                    committed: false,
                },
            );
            self.unlock_name(&to_name);
            return rep;
        }
        self.bump_shard(|s| s.cross_links += 1);
        let epoch = view
            .layout
            .borrow_mut()
            .record_move(None, &to_name, view.shard);
        self.emit(
            begin,
            EventKind::ShardMove {
                from_name: String::new(),
                to_name: to_name.clone(),
                shard: view.shard,
                epoch,
            },
        );
        self.spawn_tx_commit(begin, peer_shard, txid);
        self.invalidate_dir_watchers(ctx, to_dir, from).await;
        if self.inner.params.dir_callbacks {
            self.watch_dir(to_dir, from);
        }
        self.unlock_name(&to_name);
        rep
    }

    /// Participant phase 1: lock `name` against local service and report
    /// whether an entry by that name already exists (a committed rename
    /// will overwrite it; a link must refuse). Idempotent per txid —
    /// coordinator retries re-reply from the transaction table.
    fn tx_prepare(&self, ctx: u64, txid: u64, name: &str) -> NfsReply {
        let view = match self.inner.shard.borrow().clone() {
            Some(v) => v,
            None => return NfsReply::Err(NfsStatus::Inval),
        };
        if let Some(entry) = self.inner.tx_table.borrow().get(&txid) {
            return NfsReply::TxPrepared {
                existed: entry.existed_fh.is_some(),
            };
        }
        if self.name_locked(name) {
            self.bump_shard(|s| s.busy_rejections += 1);
            return NfsReply::Err(NfsStatus::Busy);
        }
        self.lock_name(name);
        let existed_fh = self.inner.fs.lookup(view.root, name).ok().map(|(fh, _)| fh);
        let existed = existed_fh.is_some();
        self.inner.tx_table.borrow_mut().insert(
            txid,
            TxEntry {
                name: name.to_string(),
                existed_fh,
                done: false,
            },
        );
        self.emit(ctx, EventKind::ShardTxPrepared { txid, existed });
        NfsReply::TxPrepared { existed }
    }

    /// Participant commit: delete the local entry the committed rename
    /// overwrote (ownership of the name moved to the coordinator) and
    /// release the name lock. Idempotent; unknown txids — including
    /// those a crash wiped — acknowledge trivially, since a crash also
    /// released the lock and discarded the prepared state.
    async fn tx_commit(&self, ctx: u64, txid: u64) -> NfsReply {
        let (name, existed_fh) = {
            let mut table = self.inner.tx_table.borrow_mut();
            match table.get_mut(&txid) {
                Some(e) if !e.done => {
                    e.done = true;
                    (e.name.clone(), e.existed_fh)
                }
                _ => return NfsReply::Ok,
            }
        };
        let view = self.inner.shard.borrow().clone();
        if let Some(view) = &view {
            // Delete only while the entry is still the handle that was
            // prepared: ownership may have ping-ponged since, and a
            // newer file under the same name must survive.
            let current = self.inner.fs.lookup(view.root, &name).ok();
            if let (Some(prepared), Some((cfh, attr))) = (existed_fh, current) {
                if cfh == prepared {
                    let rep = spritely_nfs::handle(
                        &self.inner.fs,
                        NfsRequest::Remove {
                            dir: view.root,
                            name: name.clone(),
                        },
                    )
                    .await;
                    if matches!(rep, NfsReply::Ok) && attr.nlink <= 1 {
                        let st0 = self.inner.table.borrow().state_of(prepared);
                        let had_entry = self.inner.table.borrow().version_of(prepared).is_some();
                        self.inner.table.borrow_mut().file_removed(prepared);
                        if had_entry {
                            self.emit_transition(
                                ctx,
                                prepared,
                                Cause::Removed,
                                ClientId(0),
                                st0,
                                FileState::Closed,
                            );
                        }
                        self.gc_file_lock(prepared);
                    }
                }
            }
        }
        self.unlock_name(&name);
        if let Some(view) = &view {
            self.invalidate_dir_watchers(ctx, view.root, ClientId(0))
                .await;
        }
        NfsReply::Ok
    }

    /// Participant abort: drop the prepared entry and release the lock.
    fn tx_abort(&self, txid: u64) -> NfsReply {
        let name = {
            let mut table = self.inner.tx_table.borrow_mut();
            match table.get_mut(&txid) {
                Some(e) if !e.done => {
                    e.done = true;
                    Some(e.name.clone())
                }
                _ => None,
            }
        };
        if let Some(name) = name {
            self.unlock_name(&name);
        }
        NfsReply::Ok
    }

    /// Performs one callback; on failure, treats the client as crashed.
    /// Returns true on success.
    async fn do_callback(
        &self,
        parent: u64,
        fh: FileHandle,
        cb: CallbackNeeded,
        relinquish: bool,
    ) -> bool {
        let caller = self
            .inner
            .callback_clients
            .borrow()
            .get(&cb.target)
            .cloned();
        let Some(caller) = caller else {
            self.bump_stats(|s| s.callbacks_failed += 1);
            let affected = self.inner.table.borrow_mut().client_crashed(cb.target);
            self.emit_client_crashed(parent, cb.target, &affected);
            for (afh, ..) in &affected {
                self.gc_file_lock(*afh);
            }
            return false;
        };
        // N−1 rule: hold a callback slot while waiting on the client.
        let slot = self.inner.callback_slots.acquire().await;
        self.bump_stats(|s| s.callbacks_sent += 1);
        self.inner.callback_inflight.inc();
        // The begin event sits inside the slot so the checker's
        // concurrent-callback count mirrors the real N−1 budget.
        let cb_seq = self.emit(
            parent,
            EventKind::CallbackBegin {
                target: cb.target,
                fh,
                writeback: cb.writeback,
                invalidate: cb.invalidate,
            },
        );
        // One sequence number per *logical* callback: retries are fresh
        // RPCs with fresh xids (the RPC dup cache cannot pair them), so
        // this is what lets the client recognize — and answer
        // idempotently — a delivery it has already acted on.
        let arg_seq = self.inner.cb_next_seq.get() + 1;
        self.inner.cb_next_seq.set(arg_seq);
        let arg = CallbackArg {
            fh,
            writeback: cb.writeback,
            invalidate: cb.invalidate,
            relinquish,
            seq: arg_seq,
            recall: false,
        };
        // A timeout is not a crash: a lossy network or a transient
        // partition can eat a whole retransmission ladder while the
        // client is alive and holding dirty data. Retry with doubling
        // backoff (slot held — the N−1 rule bounds waiting callbacks,
        // not just active ones) and only declare the client dead once
        // it has been unreachable past the keepalive horizon. A reply
        // with `ok == false` is different: the client answered and
        // refused, and is treated as crashed immediately as before.
        let started = self.inner.sim.now();
        let mut backoff = self.inner.params.callback_retry_backoff;
        const BACKOFF_CAP: SimDuration = SimDuration::from_secs(8);
        let res = loop {
            match caller.call_ctx(cb_seq, arg).await {
                Ok(rep) => break Some(rep),
                Err(_) => {
                    let elapsed = self.inner.sim.now().saturating_duration_since(started);
                    if elapsed >= self.inner.params.callback_dead_after {
                        break None;
                    }
                    self.inner
                        .callback_retries
                        .set(self.inner.callback_retries.get() + 1);
                    self.inner.sim.sleep(backoff).await;
                    backoff = backoff.mul_f64(2.0);
                    if backoff > BACKOFF_CAP {
                        backoff = BACKOFF_CAP;
                    }
                }
            }
        };
        self.inner.callback_inflight.dec();
        let ok = matches!(&res, Some(rep) if rep.ok);
        self.emit(
            cb_seq,
            EventKind::CallbackEnd {
                target: cb.target,
                fh,
                ok,
            },
        );
        drop(slot);
        if ok {
            if cb.writeback {
                let st0 = self.inner.table.borrow().state_of(fh);
                self.inner.table.borrow_mut().writeback_done(fh, cb.target);
                let st1 = self.inner.table.borrow().state_of(fh);
                self.emit_transition(cb_seq, fh, Cause::WritebackDone, cb.target, st0, st1);
            }
            true
        } else {
            // The "dead client" case of §3.2: honor the open, but the
            // file may be inconsistent; drop the client's state.
            self.bump_stats(|s| s.callbacks_failed += 1);
            let affected = self.inner.table.borrow_mut().client_crashed(cb.target);
            self.emit_client_crashed(cb_seq, cb.target, &affected);
            for (afh, ..) in &affected {
                self.gc_file_lock(*afh);
            }
            false
        }
    }

    /// Performs a set of callbacks. A single one runs inline; several
    /// fan out as concurrent tasks across their target clients, each
    /// still taking one of the N−1 callback slots inside
    /// [`do_callback`](Self::do_callback) — so the fan-out never
    /// exceeds the §3.2 thread-pool budget.
    async fn fan_out_callbacks(
        &self,
        parent: u64,
        fh: FileHandle,
        callbacks: &[CallbackNeeded],
        relinquish: bool,
    ) {
        match callbacks {
            [] => {}
            [cb] => {
                self.do_callback(parent, fh, *cb, relinquish).await;
            }
            many => {
                let mut tasks = Vec::with_capacity(many.len());
                for &cb in many {
                    let this = self.clone();
                    tasks.push(self.inner.sim.spawn(async move {
                        this.do_callback(parent, fh, cb, relinquish).await;
                    }));
                }
                for t in tasks {
                    t.await;
                }
            }
        }
    }

    /// Revokes a delegation whose holder did not answer the recall in
    /// time: the holder is fenced, its open state discarded (DESIGN.md
    /// §17.3). Safe because the client-side lease (shorter than the
    /// recall timeout, and renewed only by replies that travel the same
    /// host-to-host direction as recall callbacks) has already expired
    /// on any holder the recall could not reach.
    fn revoke(&self, parent: u64, fh: FileHandle, holder: ClientId) {
        let mut table = self.inner.table.borrow_mut();
        let st0 = table.state_of(fh);
        if table.revoke_delegation(fh, holder) {
            let st1 = table.state_of(fh);
            drop(table);
            self.emit(
                parent,
                EventKind::DelegReturn {
                    client: holder,
                    fh,
                    revoked: true,
                },
            );
            self.emit_transition(parent, fh, Cause::DelegReturn, holder, st0, st1);
            self.bump_deleg(|s| s.revokes += 1);
        }
    }

    /// Recalls one delegation over the callback channel and waits —
    /// bounded by `delegation.recall_timeout` — for the holder to flush
    /// and return it. On timeout the delegation is revoked and the
    /// holder fenced. Called with the file lock held; the holder's
    /// return travels as a `DelegReturn` RPC, whose handler takes no
    /// file lock (same discipline that lets write-backs run inside a
    /// callback).
    async fn recall_one(&self, parent: u64, fh: FileHandle, d: Deleg) {
        self.bump_deleg(|s| s.recalls += 1);
        let caller = self.inner.callback_clients.borrow().get(&d.holder).cloned();
        let Some(caller) = caller else {
            // No callback channel: the holder is unreachable by
            // construction. Revoke immediately.
            self.revoke(parent, fh, d.holder);
            return;
        };
        // From here until the recall resolves, the holder's keepalives
        // are refused so its lease cannot outlive a revoke (§17.3).
        *self
            .inner
            .recalls_pending
            .borrow_mut()
            .entry(d.holder)
            .or_insert(0) += 1;
        // Recalls ride the callback channel, so they obey the N−1 slot
        // budget and appear in the trace's callback concurrency count.
        let slot = self.inner.callback_slots.acquire().await;
        self.bump_stats(|s| s.callbacks_sent += 1);
        self.inner.callback_inflight.inc();
        let cb_seq = self.emit(
            parent,
            EventKind::CallbackBegin {
                target: d.holder,
                fh,
                writeback: d.write,
                invalidate: false,
            },
        );
        let arg_seq = self.inner.cb_next_seq.get() + 1;
        self.inner.cb_next_seq.set(arg_seq);
        let arg = CallbackArg {
            fh,
            writeback: false,
            invalidate: false,
            relinquish: false,
            seq: arg_seq,
            recall: true,
        };
        let started = self.inner.sim.now();
        let mut backoff = self.inner.params.callback_retry_backoff;
        const BACKOFF_CAP: SimDuration = SimDuration::from_secs(8);
        let res = loop {
            // The return may land through a duplicate delivery while a
            // retry is still in flight; stop as soon as it does.
            if self
                .inner
                .table
                .borrow()
                .delegation_of(fh, d.holder)
                .is_none()
            {
                break Some(true);
            }
            match caller.call_ctx(cb_seq, arg).await {
                Ok(rep) => break Some(rep.ok),
                Err(_) => {
                    let elapsed = self.inner.sim.now().saturating_duration_since(started);
                    if elapsed >= self.inner.params.delegation.recall_timeout {
                        break None;
                    }
                    self.inner
                        .callback_retries
                        .set(self.inner.callback_retries.get() + 1);
                    self.inner.sim.sleep(backoff).await;
                    backoff = backoff.mul_f64(2.0);
                    if backoff > BACKOFF_CAP {
                        backoff = BACKOFF_CAP;
                    }
                }
            }
        };
        self.inner.callback_inflight.dec();
        let answered = matches!(res, Some(true));
        self.emit(
            cb_seq,
            EventKind::CallbackEnd {
                target: d.holder,
                fh,
                ok: answered,
            },
        );
        drop(slot);
        if answered
            && self
                .inner
                .table
                .borrow()
                .delegation_of(fh, d.holder)
                .is_none()
        {
            // The holder acked after its DelegReturn RPC was applied.
            let us = self
                .inner
                .sim
                .now()
                .saturating_duration_since(started)
                .as_micros();
            self.bump_deleg(|s| s.recall_latency.record(us));
        } else {
            // Timed out, refused, or acked without returning: fence.
            self.revoke(cb_seq, fh, d.holder);
        }
        let mut pending = self.inner.recalls_pending.borrow_mut();
        if let Some(n) = pending.get_mut(&d.holder) {
            *n -= 1;
            if *n == 0 {
                pending.remove(&d.holder);
            }
        }
    }

    /// Recalls every delegation on `fh` that conflicts with `opener`
    /// opening it (`write` mode), then returns. Concurrent recalls fan
    /// out like callbacks, bounded by the N−1 slots.
    async fn recall_conflicting(&self, parent: u64, fh: FileHandle, opener: ClientId, write: bool) {
        if !self.inner.params.delegation.enabled {
            return;
        }
        let conflicts = self
            .inner
            .table
            .borrow()
            .conflicting_delegations(fh, opener, write);
        match conflicts.as_slice() {
            [] => {}
            [d] => self.recall_one(parent, fh, *d).await,
            many => {
                let mut tasks = Vec::with_capacity(many.len());
                for &d in many {
                    let this = self.clone();
                    tasks.push(self.inner.sim.spawn(async move {
                        this.recall_one(parent, fh, d).await;
                    }));
                }
                for t in tasks {
                    t.await;
                }
            }
        }
    }

    /// Decides whether the open that just completed earns a delegation;
    /// if so, records the grant and returns it for piggybacking on the
    /// open reply.
    fn maybe_grant(
        &self,
        parent: u64,
        fh: FileHandle,
        client: ClientId,
        write: bool,
    ) -> Option<spritely_proto::Delegation> {
        if !self.inner.params.delegation.enabled {
            return None;
        }
        let grant = self
            .inner
            .table
            .borrow()
            .grantable_delegation(fh, client, write)?;
        self.inner
            .table
            .borrow_mut()
            .grant_delegation(fh, client, grant.is_write());
        self.emit(
            parent,
            EventKind::DelegGrant {
                client,
                fh,
                write: grant.is_write(),
            },
        );
        self.bump_deleg(|s| {
            if grant.is_write() {
                s.grants_write += 1;
            } else {
                s.grants_read += 1;
            }
        });
        Some(grant)
    }

    /// Reclaims state-table entries when over the limit (paper §4.3.1).
    async fn maybe_reclaim(&self) {
        if !self.inner.table.borrow().over_limit() {
            return;
        }
        self.bump_stats(|s| s.reclaim_passes += 1);
        let outcome = self
            .inner
            .table
            .borrow_mut()
            .reclaim(self.inner.params.reclaim_target);
        for fh in &outcome.dropped {
            self.emit_transition(
                0,
                *fh,
                Cause::Reclaim,
                ClientId(0),
                FileState::Closed,
                FileState::Closed,
            );
        }
        // The victims are distinct files: fan their write-back
        // callbacks out concurrently (bounded by the callback slots).
        let mut tasks = Vec::with_capacity(outcome.writebacks.len());
        for (fh, client) in outcome.writebacks {
            let this = self.clone();
            tasks.push(self.inner.sim.spawn(async move {
                let lock = this.file_lock(fh).acquire().await;
                // Re-check under the lock: a concurrent open may have
                // revived the entry (or moved its dirty claim), and a
                // stale callback would invalidate an active client's
                // cache.
                let stale = {
                    let table = this.inner.table.borrow();
                    table.state_of(fh) != crate::state_table::FileState::ClosedDirty
                        || table.dirty_holder(fh) != Some(client)
                };
                if !stale {
                    this.do_callback(
                        0,
                        fh,
                        CallbackNeeded {
                            target: client,
                            writeback: true,
                            invalidate: true,
                        },
                        false,
                    )
                    .await;
                    // On failure, client_crashed already cleaned the entry
                    // up; either way drop it if it is now cleanly closed.
                    let st0 = this.inner.table.borrow().state_of(fh);
                    if this.inner.table.borrow_mut().drop_if_closed(fh) {
                        this.emit_transition(0, fh, Cause::Reclaim, client, st0, FileState::Closed);
                    }
                }
                drop(lock);
                this.gc_file_lock(fh);
            }));
        }
        for t in tasks {
            t.await;
        }
    }

    /// Dispatches one request. `ctx` is the trace context of the RPC
    /// handler span (0 when untraced).
    pub async fn handle(&self, from: ClientId, ctx: u64, req: NfsRequest) -> NfsReply {
        // Recovery-mode gate (§2.4): while the grace period runs, only
        // liveness and re-registration traffic is served, so the
        // consistency state cannot change before it is reconstructed.
        match &req {
            NfsRequest::Keepalive { .. } | NfsRequest::Recover { .. } => {}
            _ if self.in_grace() => return NfsReply::Err(NfsStatus::Grace),
            _ => {}
        }
        // Shard-ownership gate (DESIGN.md §18.2): refuse names a
        // transaction holds, redirect stale routings, record rule-10
        // ownership for the names served here.
        if let Some(rep) = self.shard_gate(ctx, &req) {
            return rep;
        }
        match req {
            NfsRequest::Keepalive { client } => {
                debug_assert_eq!(from, client);
                // A keepalive reply renews the client's delegation
                // lease, so while a recall against it is unresolved the
                // answer is `Grace` — "try again later" — instead
                // (DESIGN.md §17.3). The client's keepalive daemon
                // tolerates the failure and re-probes.
                if self.inner.params.delegation.enabled
                    && self
                        .inner
                        .recalls_pending
                        .borrow()
                        .get(&client)
                        .is_some_and(|&n| n > 0)
                {
                    NfsReply::Err(NfsStatus::Grace)
                } else {
                    NfsReply::Epoch(self.inner.epoch.get())
                }
            }
            NfsRequest::Recover { client, ref files } => {
                debug_assert_eq!(from, client);
                if self.inner.tracer.borrow().is_some() {
                    // Restore file-by-file so each table change gets its
                    // own transition event (same net effect as one call).
                    for f in files {
                        let st0 = self.inner.table.borrow().state_of(f.fh);
                        self.inner
                            .table
                            .borrow_mut()
                            .restore(client, std::slice::from_ref(f));
                        let st1 = self.inner.table.borrow().state_of(f.fh);
                        self.emit_transition(ctx, f.fh, Cause::Restore, client, st0, st1);
                    }
                } else {
                    self.inner.table.borrow_mut().restore(client, files);
                }
                NfsReply::Epoch(self.inner.epoch.get())
            }
            NfsRequest::Open { fh, write, client } => {
                debug_assert_eq!(from, client, "open must carry the caller's id");
                // Validate the handle first so a stale open doesn't create
                // table state.
                let attr0 = match self.inner.fs.getattr(fh) {
                    Ok(a) => a,
                    Err(e) => return NfsReply::Err(e),
                };
                let _lock = self.file_lock(fh).acquire().await;
                // Conflicting delegations come back (or are revoked)
                // *before* the open transition runs, so the holder's
                // batched open/close state is folded into the table the
                // transition computation sees.
                self.recall_conflicting(ctx, fh, client, write).await;
                let st0 = self.inner.table.borrow().state_of(fh);
                let outcome = self.inner.table.borrow_mut().open(fh, client, write);
                let st1 = self.inner.table.borrow().state_of(fh);
                let cause = if write {
                    Cause::OpenWrite
                } else {
                    Cause::OpenRead
                };
                let t_seq = self.emit_transition(ctx, fh, cause, client, st0, st1);
                self.fan_out_callbacks(t_seq, fh, &outcome.callbacks, false)
                    .await;
                let delegation = self.maybe_grant(t_seq, fh, client, write);
                // Attributes may have changed if a write-back just landed.
                let attr = self.inner.fs.getattr(fh).unwrap_or(attr0);
                let reply = NfsReply::Open(OpenReply {
                    cache_enabled: outcome.cache_enabled,
                    version: outcome.version,
                    prev_version: outcome.prev_version,
                    attr,
                    inconsistent: outcome.inconsistent,
                    delegation,
                });
                // Reclaim pressure is handled out of line so the opener
                // does not wait for it.
                if self.inner.table.borrow().over_limit() {
                    let this = self.clone();
                    self.inner.sim.spawn(async move {
                        this.maybe_reclaim().await;
                    });
                }
                reply
            }
            NfsRequest::Close { fh, write, client } => {
                debug_assert_eq!(from, client, "close must carry the caller's id");
                let lock = self.file_lock(fh).acquire().await;
                let st0 = self.inner.table.borrow().state_of(fh);
                let st1 = self.inner.table.borrow_mut().close(fh, client, write);
                let cause = if write {
                    Cause::CloseWrite
                } else {
                    Cause::CloseRead
                };
                self.emit_transition(ctx, fh, cause, client, st0, st1);
                drop(lock);
                self.gc_file_lock(fh);
                // Piggyback post-op attributes: same wire size as a bare
                // Ok, and clients that don't consume them ignore the body,
                // so the paper transport is unaffected.
                match self.inner.fs.getattr(fh) {
                    Ok(attr) => NfsReply::Attr(attr),
                    Err(_) => NfsReply::Ok,
                }
            }
            NfsRequest::DelegReturn {
                fh,
                client,
                readers,
                writers,
                wrote,
            } => {
                debug_assert_eq!(from, client, "deleg_return must carry the caller's id");
                // Deliberately lock-free: the conflicting opener holds
                // the file lock while it awaits this very return (same
                // discipline that lets Write RPCs land during a
                // write-back callback).
                let (applied, st0, st1) = {
                    let mut table = self.inner.table.borrow_mut();
                    let st0 = table.state_of(fh);
                    let applied = table.return_delegation(fh, client, readers, writers, wrote);
                    (applied, st0, table.state_of(fh))
                };
                match applied {
                    Some(version) => {
                        self.emit(
                            ctx,
                            EventKind::DelegReturn {
                                client,
                                fh,
                                revoked: false,
                            },
                        );
                        self.emit_transition(ctx, fh, Cause::DelegReturn, client, st0, st1);
                        self.bump_deleg(|s| s.returns += 1);
                        NfsReply::DelegReturned {
                            version,
                            fenced: false,
                        }
                    }
                    None => {
                        // The holder was fenced (or the entry is gone):
                        // its batched state was discarded at revoke
                        // time. Re-emit the revoked return so a late
                        // arrival still closes the holder's outstanding
                        // recall, and tell the client to purge.
                        self.emit(
                            ctx,
                            EventKind::DelegReturn {
                                client,
                                fh,
                                revoked: true,
                            },
                        );
                        let version = self
                            .inner
                            .table
                            .borrow()
                            .version_of(fh)
                            .unwrap_or(FileVersion(0));
                        NfsReply::DelegReturned {
                            version,
                            fenced: true,
                        }
                    }
                }
            }
            NfsRequest::Read { fh, .. } | NfsRequest::Write { fh, .. }
                if self.inner.params.hybrid_nfs
                    && self.inner.table.borrow().is_foreign_access(fh, from) =>
            {
                // §6.1 coexistence: a plain-NFS client is touching a file
                // that SNFS clients have open. Bracket the access in an
                // implicit open/close so the consistency callbacks fire;
                // the implicit close leaves no dirty claim (the data went
                // through synchronously).
                let write = matches!(req, NfsRequest::Write { .. });
                let lock = self.file_lock(fh).acquire().await;
                // A plain-NFS access conflicts with delegations the same
                // way an SNFS open does.
                self.recall_conflicting(ctx, fh, from, write).await;
                let st0 = self.inner.table.borrow().state_of(fh);
                let outcome = self.inner.table.borrow_mut().open(fh, from, write);
                let st1 = self.inner.table.borrow().state_of(fh);
                let cause = if write {
                    Cause::OpenWrite
                } else {
                    Cause::OpenRead
                };
                let t_seq = self.emit_transition(ctx, fh, cause, from, st0, st1);
                self.fan_out_callbacks(t_seq, fh, &outcome.callbacks, false)
                    .await;
                let rep = spritely_nfs::handle(&self.inner.fs, req).await;
                let st2 = self.inner.table.borrow().state_of(fh);
                let st3 = self
                    .inner
                    .table
                    .borrow_mut()
                    .close_with(fh, from, write, false);
                let cause = if write {
                    Cause::CloseWrite
                } else {
                    Cause::CloseRead
                };
                self.emit_transition(ctx, fh, cause, from, st2, st3);
                drop(lock);
                self.gc_file_lock(fh);
                rep
            }
            NfsRequest::Remove { dir, ref name } => {
                // Identify the victim so its table entry can be dropped
                // (and with it any expectation of a write-back) — but only
                // when its *last* hard link goes away; otherwise version
                // continuity must be preserved for the surviving names.
                let victim = self.inner.fs.lookup(dir, name).ok();
                let rep = spritely_nfs::handle(&self.inner.fs, req.clone()).await;
                if let (Some((fh, attr)), NfsReply::Ok) = (victim, &rep) {
                    if attr.nlink <= 1 {
                        let st0 = self.inner.table.borrow().state_of(fh);
                        let had_entry = self.inner.table.borrow().version_of(fh).is_some();
                        self.inner.table.borrow_mut().file_removed(fh);
                        if had_entry {
                            self.emit_transition(
                                ctx,
                                fh,
                                Cause::Removed,
                                from,
                                st0,
                                FileState::Closed,
                            );
                        }
                        self.gc_file_lock(fh);
                    }
                }
                self.invalidate_dir_watchers(ctx, dir, from).await;
                rep
            }
            NfsRequest::Lookup { dir, .. } => {
                let rep = spritely_nfs::handle(&self.inner.fs, req).await;
                // §7 extension: a successful lookup makes the caller a
                // watcher of the directory, entitled to an invalidate
                // callback before any namespace change is acknowledged.
                if self.inner.params.dir_callbacks && !matches!(rep, NfsReply::Err(_)) {
                    self.watch_dir(dir, from);
                }
                rep
            }
            NfsRequest::Create { dir, .. }
            | NfsRequest::Mkdir { dir, .. }
            | NfsRequest::Rmdir { dir, .. } => {
                let created = matches!(req, NfsRequest::Create { .. } | NfsRequest::Mkdir { .. });
                let rep = spritely_nfs::handle(&self.inner.fs, req).await;
                if !matches!(rep, NfsReply::Err(_)) {
                    self.invalidate_dir_watchers(ctx, dir, from).await;
                    // The creator learns the new translation from the
                    // reply and will cache it — it is a watcher too.
                    if created && self.inner.params.dir_callbacks {
                        self.watch_dir(dir, from);
                    }
                }
                rep
            }
            NfsRequest::Link {
                from: src,
                to_dir,
                ref to_name,
            } => {
                if let Some((view, peer)) = self.cross_shard_target(to_dir, to_dir, to_name) {
                    let to_name = to_name.clone();
                    return self
                        .cross_shard_link(ctx, from, view, peer, src, to_dir, to_name)
                        .await;
                }
                let rep = spritely_nfs::handle(&self.inner.fs, req).await;
                if !matches!(rep, NfsReply::Err(_)) {
                    self.invalidate_dir_watchers(ctx, to_dir, from).await;
                    if self.inner.params.dir_callbacks {
                        self.watch_dir(to_dir, from);
                    }
                }
                rep
            }
            NfsRequest::Symlink { dir, .. } => {
                let rep = spritely_nfs::handle(&self.inner.fs, req).await;
                if !matches!(rep, NfsReply::Err(_)) {
                    self.invalidate_dir_watchers(ctx, dir, from).await;
                    if self.inner.params.dir_callbacks {
                        self.watch_dir(dir, from);
                    }
                }
                rep
            }
            NfsRequest::Rename {
                from_dir,
                ref from_name,
                to_dir,
                ref to_name,
            } => {
                if let Some((view, peer)) = self.cross_shard_target(from_dir, to_dir, to_name) {
                    let (from_name, to_name) = (from_name.clone(), to_name.clone());
                    return self
                        .cross_shard_rename(
                            ctx, from, view, peer, from_dir, from_name, to_dir, to_name,
                        )
                        .await;
                }
                let rep = spritely_nfs::handle(&self.inner.fs, req).await;
                if !matches!(rep, NfsReply::Err(_)) {
                    self.invalidate_dir_watchers(ctx, from_dir, from).await;
                    if to_dir != from_dir {
                        self.invalidate_dir_watchers(ctx, to_dir, from).await;
                    }
                }
                rep
            }
            NfsRequest::TxPrepare { txid, ref name } => self.tx_prepare(ctx, txid, name),
            NfsRequest::TxCommit { txid } => self.tx_commit(ctx, txid).await,
            NfsRequest::TxAbort { txid } => self.tx_abort(txid),
            // Everything else is the unmodified NFS service code.
            other => spritely_nfs::handle(&self.inner.fs, other).await,
        }
    }
}
