//! Property-based tests for the executor and its primitives: FIFO
//! fairness under arbitrary request patterns, conservation of semaphore
//! permits, and bit-identical re-execution.

use proptest::prelude::*;
use spritely_sim::{Semaphore, Sim, SimDuration};
use std::cell::RefCell;
use std::rc::Rc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Tasks that request a capacity-1 semaphore at strictly increasing
    /// times must be served in arrival order, regardless of hold times.
    #[test]
    fn semaphore_serves_in_arrival_order(
        holds in proptest::collection::vec(1u64..5_000, 2..12)
    ) {
        let sim = Sim::new();
        let sem = Semaphore::new(1);
        let order: Rc<RefCell<Vec<usize>>> = Rc::default();
        for (i, hold) in holds.iter().copied().enumerate() {
            let sim2 = sim.clone();
            let sem = sem.clone();
            let order = Rc::clone(&order);
            sim.spawn(async move {
                // Strictly increasing arrival instants.
                sim2.sleep(SimDuration::from_micros(i as u64)).await;
                let _p = sem.acquire().await;
                order.borrow_mut().push(i);
                sim2.sleep(SimDuration::from_micros(hold)).await;
            });
        }
        sim.run_to_quiescence();
        let got = order.borrow().clone();
        let want: Vec<usize> = (0..holds.len()).collect();
        prop_assert_eq!(got, want);
    }

    /// However tasks contend, every permit comes back: after quiescence
    /// the semaphore is fully free and total elapsed equals the serial
    /// sum for capacity 1.
    #[test]
    fn permits_are_conserved_and_time_is_exact(
        holds in proptest::collection::vec(1u64..10_000, 1..16),
        capacity in 1usize..4,
    ) {
        let sim = Sim::new();
        let sem = Semaphore::new(capacity);
        for hold in holds.iter().copied() {
            let sim2 = sim.clone();
            let sem = sem.clone();
            sim.spawn(async move {
                let _p = sem.acquire().await;
                sim2.sleep(SimDuration::from_micros(hold)).await;
            });
        }
        sim.run_to_quiescence();
        prop_assert_eq!(sem.held(), 0, "all permits returned");
        prop_assert_eq!(sem.queue_len(), 0, "no stranded waiters");
        if capacity == 1 {
            let total: u64 = holds.iter().sum();
            prop_assert_eq!(sim.now().as_micros(), total);
        } else {
            // With more servers we finish no later than serial and no
            // earlier than the critical path.
            let total: u64 = holds.iter().sum();
            let max = holds.iter().copied().max().unwrap_or(0);
            prop_assert!(sim.now().as_micros() <= total);
            prop_assert!(sim.now().as_micros() >= max);
        }
    }

    /// The same program produces the same event history, twice.
    #[test]
    fn execution_is_deterministic(
        delays in proptest::collection::vec(0u64..1_000, 1..20)
    ) {
        let run = |delays: &[u64]| -> (u64, Vec<usize>) {
            let sim = Sim::new();
            let log: Rc<RefCell<Vec<usize>>> = Rc::default();
            let sem = Semaphore::new(2);
            for (i, d) in delays.iter().copied().enumerate() {
                let sim2 = sim.clone();
                let log = Rc::clone(&log);
                let sem = sem.clone();
                sim.spawn(async move {
                    sim2.sleep(SimDuration::from_micros(d)).await;
                    let _p = sem.acquire().await;
                    sim2.sleep(SimDuration::from_micros(d % 7 + 1)).await;
                    log.borrow_mut().push(i);
                });
            }
            sim.run_to_quiescence();
            let events = log.borrow().clone();
            (sim.now().as_micros(), events)
        };
        prop_assert_eq!(run(&delays), run(&delays));
    }

    /// Timeouts fire exactly at their deadline when the inner future
    /// never resolves.
    #[test]
    fn timeout_deadline_is_exact(ms in 1u64..10_000) {
        let sim = Sim::new();
        let s = sim.clone();
        let out = sim.block_on(async move {
            let r = s
                .timeout(SimDuration::from_micros(ms), std::future::pending::<()>())
                .await;
            (r.is_err(), s.now().as_micros())
        });
        prop_assert!(out.0);
        prop_assert_eq!(out.1, ms);
    }

    /// Arbitrary interleavings of timer registration and cancellation
    /// (every task races a sleep against a timeout guard; whichever has
    /// the later deadline gets cancelled mid-heap) still fire survivors
    /// in deadline-then-registration order, and leave nothing behind.
    #[test]
    fn interleaved_register_cancel_fires_in_deadline_seq_order(
        pairs in proptest::collection::vec((1u64..500, 1u64..500), 1..24)
    ) {
        let sim = Sim::new();
        let log: Rc<RefCell<Vec<(u64, usize)>>> = Rc::default();
        for (i, (d, g)) in pairs.iter().copied().enumerate() {
            let s = sim.clone();
            let log = Rc::clone(&log);
            sim.spawn(async move {
                // Inner sleep (deadline d) vs guard (deadline g). The
                // loser's timer is cancelled when the Timeout drops it.
                let r = s
                    .timeout(SimDuration::from_micros(g), s.sleep(SimDuration::from_micros(d)))
                    .await;
                if r.is_ok() {
                    log.borrow_mut().push((s.now().as_micros(), i));
                }
            });
        }
        sim.run_to_quiescence();
        // Tasks register their timers at t=0 in spawn order, so the
        // expected completion order of the survivors (d <= g: the inner
        // sleep polls, and therefore registers, before its guard) is
        // deadline-then-spawn-index.
        let mut want: Vec<(u64, usize)> = pairs
            .iter()
            .enumerate()
            .filter(|(_, &(d, g))| d <= g)
            .map(|(i, &(d, _))| (d, i))
            .collect();
        want.sort_unstable();
        prop_assert_eq!(log.borrow().clone(), want);
        // Every loser was cancelled, not left to fire at quiescence.
        prop_assert_eq!(sim.live_timers(), 0);
        let last = want.last().map_or(0, |&(d, _)| d);
        prop_assert_eq!(sim.now().as_micros(),
            pairs.iter().map(|&(d, g)| d.min(g)).max().unwrap_or(0).max(last));
    }

    /// Task slots are recycled across waves; a recycled slot must never
    /// deliver a wake to the task now occupying it on behalf of the task
    /// that used to (generational ids make such wakes stale no-ops).
    #[test]
    fn slab_reuse_never_wakes_wrong_generation(
        waves in proptest::collection::vec(
            proptest::collection::vec(0u64..200, 1..12), 2..5)
    ) {
        let sim = Sim::new();
        let log: Rc<RefCell<Vec<(usize, usize)>>> = Rc::default();
        let mut biggest = 0usize;
        for (w, delays) in waves.iter().enumerate() {
            biggest = biggest.max(delays.len());
            for (i, d) in delays.iter().copied().enumerate() {
                let s = sim.clone();
                let log = Rc::clone(&log);
                sim.spawn(async move {
                    s.sleep(SimDuration::from_micros(d)).await;
                    log.borrow_mut().push((w, i));
                });
            }
            // Quiescence between waves: every slot is freed and eligible
            // for reuse by the next wave.
            sim.run_to_quiescence();
            prop_assert_eq!(sim.live_tasks(), 0);
        }
        // Each task completed exactly once, attributed to its own wave.
        let mut got = log.borrow().clone();
        got.sort_unstable();
        let mut want = Vec::new();
        for (w, delays) in waves.iter().enumerate() {
            for i in 0..delays.len() {
                want.push((w, i));
            }
        }
        prop_assert_eq!(got, want);
        let stats = sim.stats();
        prop_assert_eq!(stats.tasks_completed, want.len() as u64);
        // Slot recycling actually happened: occupancy never exceeded the
        // biggest single wave even though every wave allocated tasks.
        prop_assert!(stats.peak_live_tasks <= biggest as u64);
    }
}
