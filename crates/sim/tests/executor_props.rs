//! Property-based tests for the executor and its primitives: FIFO
//! fairness under arbitrary request patterns, conservation of semaphore
//! permits, and bit-identical re-execution.

use proptest::prelude::*;
use spritely_sim::{Semaphore, Sim, SimDuration};
use std::cell::RefCell;
use std::rc::Rc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Tasks that request a capacity-1 semaphore at strictly increasing
    /// times must be served in arrival order, regardless of hold times.
    #[test]
    fn semaphore_serves_in_arrival_order(
        holds in proptest::collection::vec(1u64..5_000, 2..12)
    ) {
        let sim = Sim::new();
        let sem = Semaphore::new(1);
        let order: Rc<RefCell<Vec<usize>>> = Rc::default();
        for (i, hold) in holds.iter().copied().enumerate() {
            let sim2 = sim.clone();
            let sem = sem.clone();
            let order = Rc::clone(&order);
            sim.spawn(async move {
                // Strictly increasing arrival instants.
                sim2.sleep(SimDuration::from_micros(i as u64)).await;
                let _p = sem.acquire().await;
                order.borrow_mut().push(i);
                sim2.sleep(SimDuration::from_micros(hold)).await;
            });
        }
        sim.run_to_quiescence();
        let got = order.borrow().clone();
        let want: Vec<usize> = (0..holds.len()).collect();
        prop_assert_eq!(got, want);
    }

    /// However tasks contend, every permit comes back: after quiescence
    /// the semaphore is fully free and total elapsed equals the serial
    /// sum for capacity 1.
    #[test]
    fn permits_are_conserved_and_time_is_exact(
        holds in proptest::collection::vec(1u64..10_000, 1..16),
        capacity in 1usize..4,
    ) {
        let sim = Sim::new();
        let sem = Semaphore::new(capacity);
        for hold in holds.iter().copied() {
            let sim2 = sim.clone();
            let sem = sem.clone();
            sim.spawn(async move {
                let _p = sem.acquire().await;
                sim2.sleep(SimDuration::from_micros(hold)).await;
            });
        }
        sim.run_to_quiescence();
        prop_assert_eq!(sem.held(), 0, "all permits returned");
        prop_assert_eq!(sem.queue_len(), 0, "no stranded waiters");
        if capacity == 1 {
            let total: u64 = holds.iter().sum();
            prop_assert_eq!(sim.now().as_micros(), total);
        } else {
            // With more servers we finish no later than serial and no
            // earlier than the critical path.
            let total: u64 = holds.iter().sum();
            let max = holds.iter().copied().max().unwrap_or(0);
            prop_assert!(sim.now().as_micros() <= total);
            prop_assert!(sim.now().as_micros() >= max);
        }
    }

    /// The same program produces the same event history, twice.
    #[test]
    fn execution_is_deterministic(
        delays in proptest::collection::vec(0u64..1_000, 1..20)
    ) {
        let run = |delays: &[u64]| -> (u64, Vec<usize>) {
            let sim = Sim::new();
            let log: Rc<RefCell<Vec<usize>>> = Rc::default();
            let sem = Semaphore::new(2);
            for (i, d) in delays.iter().copied().enumerate() {
                let sim2 = sim.clone();
                let log = Rc::clone(&log);
                let sem = sem.clone();
                sim.spawn(async move {
                    sim2.sleep(SimDuration::from_micros(d)).await;
                    let _p = sem.acquire().await;
                    sim2.sleep(SimDuration::from_micros(d % 7 + 1)).await;
                    log.borrow_mut().push(i);
                });
            }
            sim.run_to_quiescence();
            let events = log.borrow().clone();
            (sim.now().as_micros(), events)
        };
        prop_assert_eq!(run(&delays), run(&delays));
    }

    /// Timeouts fire exactly at their deadline when the inner future
    /// never resolves.
    #[test]
    fn timeout_deadline_is_exact(ms in 1u64..10_000) {
        let sim = Sim::new();
        let s = sim.clone();
        let out = sim.block_on(async move {
            let r = s
                .timeout(SimDuration::from_micros(ms), std::future::pending::<()>())
                .await;
            (r.is_err(), s.now().as_micros())
        });
        prop_assert!(out.0);
        prop_assert_eq!(out.1, ms);
    }
}
