//! Synchronization primitives for simulated tasks.
//!
//! All primitives are single-threaded (they live inside one [`Sim`]) and
//! deterministic: waiters are served strictly in arrival order.
//!
//! [`Sim`]: crate::Sim

use std::cell::RefCell;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

/// A FIFO-fair counting semaphore.
///
/// Unlike a bare counter, releases *hand off* permits to the head of the
/// wait queue, so a stream of late arrivals can never starve an early
/// waiter. This mirrors the FIFO service queues of the modelled hardware
/// (disk arms, server threads, CPUs).
///
/// # Examples
///
/// ```
/// use spritely_sim::{Semaphore, Sim, SimDuration};
///
/// let sim = Sim::new();
/// let sem = Semaphore::new(1);
/// for _ in 0..3 {
///     let sim2 = sim.clone();
///     let sem = sem.clone();
///     sim.spawn(async move {
///         let _permit = sem.acquire().await;
///         sim2.sleep(SimDuration::from_millis(10)).await;
///     });
/// }
/// sim.run_to_quiescence();
/// assert_eq!(sim.now().as_micros(), 30_000); // strictly serialized
/// ```
#[derive(Clone)]
pub struct Semaphore {
    inner: Rc<RefCell<SemInner>>,
}

struct SemInner {
    /// Free permits not reserved for any waiter.
    permits: usize,
    /// Tickets waiting for a permit, in FIFO order, each carrying its
    /// waker inline — a grant is a pop plus a wake, no keyed lookup.
    queue: VecDeque<(u64, Waker)>,
    /// Tickets that have been handed a permit but whose future has not
    /// observed it yet.
    granted: Vec<u64>,
    next_ticket: u64,
    capacity: usize,
}

impl SemInner {
    /// Returns one permit to the pool, preferring a direct handoff to the
    /// queue head.
    fn release_one(&mut self) {
        if let Some((t, w)) = self.queue.pop_front() {
            self.granted.push(t);
            w.wake();
        } else {
            self.permits += 1;
            debug_assert!(self.permits <= self.capacity, "semaphore over-released");
        }
    }
}

impl Semaphore {
    /// Creates a semaphore with `capacity` permits.
    pub fn new(capacity: usize) -> Self {
        Semaphore {
            inner: Rc::new(RefCell::new(SemInner {
                permits: capacity,
                queue: VecDeque::new(),
                granted: Vec::new(),
                next_ticket: 0,
                capacity,
            })),
        }
    }

    /// Total number of permits.
    pub fn capacity(&self) -> usize {
        self.inner.borrow().capacity
    }

    /// Permits currently held (capacity minus free minus reserved-for-waiter).
    pub fn held(&self) -> usize {
        let s = self.inner.borrow();
        s.capacity - s.permits - s.granted.len()
    }

    /// Number of tasks waiting for a permit.
    pub fn queue_len(&self) -> usize {
        self.inner.borrow().queue.len()
    }

    /// True when every permit is free and nothing is queued: no task
    /// holds, has been granted, or is waiting for this semaphore.
    /// (A granted-but-unobserved permit keeps `permits` below capacity,
    /// so it is visible here even though [`held`](Self::held) misses it.)
    pub fn is_idle(&self) -> bool {
        let s = self.inner.borrow();
        s.permits == s.capacity && s.queue.is_empty()
    }

    /// Acquires one permit, waiting FIFO if none is free.
    pub fn acquire(&self) -> Acquire {
        Acquire {
            sem: self.clone(),
            ticket: None,
        }
    }

    /// Acquires a permit only if one is free *and* no one is queued ahead.
    pub fn try_acquire(&self) -> Option<Permit> {
        let mut s = self.inner.borrow_mut();
        if s.permits > 0 && s.queue.is_empty() {
            s.permits -= 1;
            drop(s);
            Some(Permit {
                sem: Rc::clone(&self.inner),
            })
        } else {
            None
        }
    }
}

/// Future returned by [`Semaphore::acquire`].
pub struct Acquire {
    sem: Semaphore,
    ticket: Option<u64>,
}

impl Future for Acquire {
    type Output = Permit;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Permit> {
        let inner = Rc::clone(&self.sem.inner);
        let mut s = inner.borrow_mut();
        match self.ticket {
            None => {
                if s.permits > 0 && s.queue.is_empty() {
                    s.permits -= 1;
                    drop(s);
                    // Mark as satisfied so Drop doesn't try to clean up.
                    self.ticket = Some(u64::MAX);
                    return Poll::Ready(Permit { sem: inner });
                }
                let t = s.next_ticket;
                s.next_ticket += 1;
                s.queue.push_back((t, cx.waker().clone()));
                self.ticket = Some(t);
                Poll::Pending
            }
            Some(u64::MAX) => panic!("Acquire polled after completion"),
            Some(t) => {
                if let Some(pos) = s.granted.iter().position(|&g| g == t) {
                    s.granted.swap_remove(pos);
                    drop(s);
                    self.ticket = Some(u64::MAX);
                    Poll::Ready(Permit { sem: inner })
                } else {
                    // Spurious poll while still queued (e.g. a sibling
                    // branch of a combinator woke the task): refresh the
                    // stored waker. Rare, so the scan is fine.
                    if let Some(entry) = s.queue.iter_mut().find(|(q, _)| *q == t) {
                        entry.1 = cx.waker().clone();
                    }
                    Poll::Pending
                }
            }
        }
    }
}

impl Drop for Acquire {
    fn drop(&mut self) {
        let Some(t) = self.ticket else { return };
        if t == u64::MAX {
            // Completed; the Permit owns the cleanup.
            return;
        }
        let mut s = self.sem.inner.borrow_mut();
        if let Some(pos) = s.queue.iter().position(|(q, _)| *q == t) {
            // Still waiting: just leave the queue.
            s.queue.remove(pos);
        } else if let Some(pos) = s.granted.iter().position(|&g| g == t) {
            // Granted but never observed: pass the permit on.
            s.granted.swap_remove(pos);
            s.release_one();
        }
    }
}

/// RAII permit returned by [`Semaphore::acquire`]; releases on drop.
pub struct Permit {
    sem: Rc<RefCell<SemInner>>,
}

impl Drop for Permit {
    fn drop(&mut self) {
        self.sem.borrow_mut().release_one();
    }
}

/// A one-shot broadcast event.
///
/// Waiters block until [`Event::set`] is called; afterwards every wait
/// completes immediately.
#[derive(Clone, Default)]
pub struct Event {
    inner: Rc<RefCell<EventInner>>,
}

#[derive(Default)]
struct EventInner {
    set: bool,
    wakers: Vec<Waker>,
}

impl Event {
    /// Creates an unset event.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the event, waking all current and future waiters.
    pub fn set(&self) {
        let mut s = self.inner.borrow_mut();
        s.set = true;
        for w in s.wakers.drain(..) {
            w.wake();
        }
    }

    /// Returns true once [`set`](Self::set) has been called.
    pub fn is_set(&self) -> bool {
        self.inner.borrow().set
    }

    /// Waits for the event to be set.
    pub fn wait(&self) -> EventWait {
        EventWait {
            inner: Rc::clone(&self.inner),
        }
    }
}

/// Future returned by [`Event::wait`].
pub struct EventWait {
    inner: Rc<RefCell<EventInner>>,
}

impl Future for EventWait {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let mut s = self.inner.borrow_mut();
        if s.set {
            Poll::Ready(())
        } else {
            s.wakers.push(cx.waker().clone());
            Poll::Pending
        }
    }
}

/// Creates an unbounded FIFO channel.
///
/// Sends never block; receives wait for a message. Receiving returns `None`
/// once every sender has been dropped and the queue is drained.
pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
    let inner = Rc::new(RefCell::new(ChanInner {
        queue: VecDeque::new(),
        wakers: Vec::new(),
        senders: 1,
    }));
    (
        Sender {
            inner: Rc::clone(&inner),
        },
        Receiver { inner },
    )
}

struct ChanInner<T> {
    queue: VecDeque<T>,
    wakers: Vec<Waker>,
    senders: usize,
}

/// Sending half of a [`channel`]. Cloneable.
pub struct Sender<T> {
    inner: Rc<RefCell<ChanInner<T>>>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.inner.borrow_mut().senders += 1;
        Sender {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut s = self.inner.borrow_mut();
        s.senders -= 1;
        if s.senders == 0 {
            for w in s.wakers.drain(..) {
                w.wake();
            }
        }
    }
}

impl<T> Sender<T> {
    /// Enqueues a message; never blocks.
    pub fn send(&self, v: T) {
        let mut s = self.inner.borrow_mut();
        s.queue.push_back(v);
        for w in s.wakers.drain(..) {
            w.wake();
        }
    }
}

/// Receiving half of a [`channel`].
pub struct Receiver<T> {
    inner: Rc<RefCell<ChanInner<T>>>,
}

impl<T> Receiver<T> {
    /// Waits for the next message; `None` when all senders are gone and the
    /// queue is empty.
    pub fn recv(&self) -> Recv<'_, T> {
        Recv { rx: self }
    }

    /// Takes a message if one is queued.
    pub fn try_recv(&self) -> Option<T> {
        self.inner.borrow_mut().queue.pop_front()
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.inner.borrow().queue.len()
    }

    /// Returns true if no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Future returned by [`Receiver::recv`].
pub struct Recv<'a, T> {
    rx: &'a Receiver<T>,
}

impl<T> Future for Recv<'_, T> {
    type Output = Option<T>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Option<T>> {
        let mut s = self.rx.inner.borrow_mut();
        if let Some(v) = s.queue.pop_front() {
            Poll::Ready(Some(v))
        } else if s.senders == 0 {
            Poll::Ready(None)
        } else {
            s.wakers.push(cx.waker().clone());
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Sim;
    use crate::time::SimDuration;
    use std::cell::Cell;

    #[test]
    fn semaphore_serializes_holders() {
        let sim = Sim::new();
        let sem = Semaphore::new(1);
        let active = Rc::new(Cell::new(0u32));
        let peak = Rc::new(Cell::new(0u32));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let s = sim.clone();
            let sem = sem.clone();
            let active = Rc::clone(&active);
            let peak = Rc::clone(&peak);
            handles.push(sim.spawn(async move {
                let _p = sem.acquire().await;
                active.set(active.get() + 1);
                peak.set(peak.get().max(active.get()));
                s.sleep(SimDuration::from_millis(10)).await;
                active.set(active.get() - 1);
            }));
        }
        sim.run_to_quiescence();
        assert_eq!(peak.get(), 1);
        assert_eq!(sim.now().as_micros(), 40_000);
    }

    #[test]
    fn semaphore_is_fifo() {
        let sim = Sim::new();
        let sem = Semaphore::new(1);
        let order: Rc<RefCell<Vec<u32>>> = Rc::default();
        // Task 0 grabs the permit; 1..5 queue up in spawn order after
        // staggered arrival delays that all elapse while 0 holds it.
        for i in 0..5u32 {
            let s = sim.clone();
            let sem = sem.clone();
            let order = Rc::clone(&order);
            sim.spawn(async move {
                // Later tasks arrive later but all before the first release.
                s.sleep(SimDuration::from_micros(u64::from(i))).await;
                let _p = sem.acquire().await;
                order.borrow_mut().push(i);
                s.sleep(SimDuration::from_millis(1)).await;
            });
        }
        sim.run_to_quiescence();
        assert_eq!(*order.borrow(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn semaphore_capacity_respected() {
        let sim = Sim::new();
        let sem = Semaphore::new(3);
        let active = Rc::new(Cell::new(0usize));
        let peak = Rc::new(Cell::new(0usize));
        for _ in 0..10 {
            let s = sim.clone();
            let sem = sem.clone();
            let active = Rc::clone(&active);
            let peak = Rc::clone(&peak);
            sim.spawn(async move {
                let _p = sem.acquire().await;
                active.set(active.get() + 1);
                peak.set(peak.get().max(active.get()));
                s.sleep(SimDuration::from_millis(1)).await;
                active.set(active.get() - 1);
            });
        }
        sim.run_to_quiescence();
        assert_eq!(peak.get(), 3);
    }

    #[test]
    fn try_acquire_respects_queue() {
        let sim = Sim::new();
        let sem = Semaphore::new(1);
        let p = sem.try_acquire().expect("free permit");
        assert!(sem.try_acquire().is_none());
        drop(p);
        assert!(sem.try_acquire().is_some());
        drop(sim);
    }

    #[test]
    fn cancelled_waiter_does_not_leak_permit() {
        let sim = Sim::new();
        let sem = Semaphore::new(1);
        let s = sim.clone();
        let sem2 = sem.clone();
        sim.block_on(async move {
            let p = sem2.acquire().await;
            // A waiter that gets cancelled by a timeout.
            let waiter = s.timeout(SimDuration::from_millis(1), sem2.acquire());
            assert!(waiter.await.is_err());
            drop(p);
            // The permit must still be obtainable.
            let _p2 = sem2.acquire().await;
            assert_eq!(sem2.held(), 1);
        });
        assert_eq!(sem.held(), 0);
    }

    #[test]
    fn cancelled_granted_waiter_hands_off() {
        // A waiter whose permit was granted while it was being dropped must
        // hand the permit to the next in line.
        let sim = Sim::new();
        let sem = Semaphore::new(1);
        let s = sim.clone();
        let sem0 = sem.clone();
        let got: Rc<Cell<bool>> = Rc::default();
        let got2 = Rc::clone(&got);
        // Holder releases at t=2ms.
        let semh = sem.clone();
        let sh = sim.clone();
        sim.spawn(async move {
            let _p = semh.acquire().await;
            sh.sleep(SimDuration::from_millis(2)).await;
        });
        // Waiter A times out at t=1ms... no: make A time out *after* grant.
        // A is granted at 2ms but its timeout fires at 2ms too; the sleep
        // fires first only if registered earlier — instead cancel explicitly:
        let sem_a = sem.clone();
        let sa = sim.clone();
        sim.spawn(async move {
            // Will be granted at 2ms, but we drop the acquire at 3ms without
            // polling it (simulate by timeout at 3ms on a future that, once
            // granted, still sleeps forever before observing).
            let acq = sem_a.acquire();
            let res = sa.timeout(SimDuration::from_millis(1), acq).await;
            assert!(res.is_err());
        });
        // Waiter B should eventually get the permit.
        let sb = sim.clone();
        sim.spawn(async move {
            sb.sleep(SimDuration::from_micros(10)).await;
            let _p = sem0.acquire().await;
            got2.set(true);
        });
        sim.run_to_quiescence();
        assert!(got.get());
        assert_eq!(sem.held(), 0);
        let _ = s;
    }

    #[test]
    fn event_wakes_all_waiters() {
        let sim = Sim::new();
        let ev = Event::new();
        let count = Rc::new(Cell::new(0u32));
        for _ in 0..3 {
            let ev = ev.clone();
            let count = Rc::clone(&count);
            sim.spawn(async move {
                ev.wait().await;
                count.set(count.get() + 1);
            });
        }
        let s = sim.clone();
        let ev2 = ev.clone();
        sim.block_on(async move {
            s.sleep(SimDuration::from_millis(1)).await;
            ev2.set();
        });
        sim.run_to_quiescence();
        assert_eq!(count.get(), 3);
        assert!(ev.is_set());
    }

    #[test]
    fn event_wait_after_set_is_immediate() {
        let sim = Sim::new();
        let ev = Event::new();
        ev.set();
        let ev2 = ev.clone();
        let s = sim.clone();
        sim.block_on(async move {
            let t0 = s.now();
            ev2.wait().await;
            assert_eq!(s.now(), t0);
        });
    }

    #[test]
    fn channel_delivers_in_order() {
        let sim = Sim::new();
        let (tx, rx) = channel::<u32>();
        let s = sim.clone();
        sim.spawn(async move {
            for i in 0..5 {
                s.sleep(SimDuration::from_millis(1)).await;
                tx.send(i);
            }
        });
        let out = sim.block_on(async move {
            let mut v = Vec::new();
            while let Some(x) = rx.recv().await {
                v.push(x);
            }
            v
        });
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn channel_recv_none_when_senders_dropped() {
        let sim = Sim::new();
        let (tx, rx) = channel::<u8>();
        tx.send(1);
        drop(tx);
        let out = sim.block_on(async move {
            let a = rx.recv().await;
            let b = rx.recv().await;
            (a, b)
        });
        assert_eq!(out, (Some(1), None));
    }

    #[test]
    fn channel_clone_sender_counts() {
        let sim = Sim::new();
        let (tx, rx) = channel::<u8>();
        let tx2 = tx.clone();
        drop(tx);
        tx2.send(9);
        drop(tx2);
        let out = sim.block_on(async move { (rx.recv().await, rx.recv().await) });
        assert_eq!(out, (Some(9), None));
    }
}
