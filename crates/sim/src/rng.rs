//! Seeded deterministic randomness for workloads and device models.
//!
//! All randomness in the system flows through [`SimRng`], which is a thin
//! wrapper over a seeded PRNG. Two runs with the same seed make identical
//! draws, which together with the deterministic executor makes whole
//! experiments reproducible bit-for-bit.

use std::cell::RefCell;
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::time::SimDuration;

/// A cloneable handle to a shared, seeded PRNG stream.
#[derive(Clone)]
pub struct SimRng {
    inner: Rc<RefCell<StdRng>>,
}

impl SimRng {
    /// Creates a stream from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SimRng {
            inner: Rc::new(RefCell::new(StdRng::seed_from_u64(seed))),
        }
    }

    /// Forks an independent stream whose seed derives from this one.
    ///
    /// Use separate forks for separate subsystems so adding draws in one
    /// place does not perturb another.
    pub fn fork(&self) -> SimRng {
        let seed: u64 = self.inner.borrow_mut().gen();
        SimRng::new(seed)
    }

    /// Uniform float in `[0, 1)`.
    pub fn f64(&self) -> f64 {
        self.inner.borrow_mut().gen::<f64>()
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_u64(&self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        self.inner.borrow_mut().gen_range(lo..hi)
    }

    /// Uniform usize in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&self, n: usize) -> usize {
        assert!(n > 0, "empty index range");
        self.inner.borrow_mut().gen_range(0..n)
    }

    /// Uniform duration in `[min, max]`.
    pub fn duration_uniform(&self, min: SimDuration, max: SimDuration) -> SimDuration {
        if min >= max {
            return min;
        }
        SimDuration::from_micros(self.range_u64(min.as_micros(), max.as_micros() + 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let a = SimRng::new(42);
        let b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.range_u64(0, 1_000_000), b.range_u64(0, 1_000_000));
        }
    }

    #[test]
    fn forks_are_independent_but_deterministic() {
        let a = SimRng::new(7).fork();
        let b = SimRng::new(7).fork();
        for _ in 0..10 {
            assert_eq!(a.range_u64(0, 100), b.range_u64(0, 100));
        }
    }

    #[test]
    fn duration_uniform_within_bounds() {
        let rng = SimRng::new(1);
        let lo = SimDuration::from_micros(10);
        let hi = SimDuration::from_micros(20);
        for _ in 0..200 {
            let d = rng.duration_uniform(lo, hi);
            assert!(d >= lo && d <= hi);
        }
    }

    #[test]
    fn duration_uniform_degenerate_range() {
        let rng = SimRng::new(1);
        let d = SimDuration::from_micros(5);
        assert_eq!(rng.duration_uniform(d, d), d);
    }
}
