//! Seeded deterministic randomness for workloads and device models.
//!
//! All randomness in the system flows through [`SimRng`], which is a thin
//! wrapper over a seeded PRNG. Two runs with the same seed make identical
//! draws, which together with the deterministic executor makes whole
//! experiments reproducible bit-for-bit.
//!
//! The generator is a self-contained xoshiro256++ seeded via SplitMix64,
//! so the simulator has no external dependencies and the stream is stable
//! across toolchain and library upgrades.

use std::cell::RefCell;
use std::rc::Rc;

use crate::time::SimDuration;

/// xoshiro256++ state, seeded from a 64-bit seed via SplitMix64.
struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn new(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the full 256-bit state;
        // this is the standard seeding procedure and guarantees a nonzero
        // state for every seed.
        let mut sm = seed;
        let mut next_sm = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Xoshiro256 {
            s: [next_sm(), next_sm(), next_sm(), next_sm()],
        }
    }

    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// A cloneable handle to a shared, seeded PRNG stream.
#[derive(Clone)]
pub struct SimRng {
    inner: Rc<RefCell<Xoshiro256>>,
}

impl SimRng {
    /// Creates a stream from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SimRng {
            inner: Rc::new(RefCell::new(Xoshiro256::new(seed))),
        }
    }

    /// Forks an independent stream whose seed derives from this one.
    ///
    /// Use separate forks for separate subsystems so adding draws in one
    /// place does not perturb another.
    pub fn fork(&self) -> SimRng {
        let seed = self.inner.borrow_mut().next_u64();
        SimRng::new(seed)
    }

    /// Uniform float in `[0, 1)`.
    pub fn f64(&self) -> f64 {
        // 53 high bits → uniform double in [0, 1).
        let bits = self.inner.borrow_mut().next_u64() >> 11;
        bits as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_u64(&self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = hi - lo;
        // Rejection sampling to avoid modulo bias.
        let zone = u64::MAX - u64::MAX % span;
        loop {
            let v = self.inner.borrow_mut().next_u64();
            if v < zone {
                return lo + v % span;
            }
        }
    }

    /// Uniform usize in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&self, n: usize) -> usize {
        assert!(n > 0, "empty index range");
        self.range_u64(0, n as u64) as usize
    }

    /// Uniform duration in `[min, max]`.
    pub fn duration_uniform(&self, min: SimDuration, max: SimDuration) -> SimDuration {
        if min >= max {
            return min;
        }
        SimDuration::from_micros(self.range_u64(min.as_micros(), max.as_micros() + 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let a = SimRng::new(42);
        let b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.range_u64(0, 1_000_000), b.range_u64(0, 1_000_000));
        }
    }

    #[test]
    fn forks_are_independent_but_deterministic() {
        let a = SimRng::new(7).fork();
        let b = SimRng::new(7).fork();
        for _ in 0..10 {
            assert_eq!(a.range_u64(0, 100), b.range_u64(0, 100));
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let rng = SimRng::new(3);
        for _ in 0..1000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn duration_uniform_within_bounds() {
        let rng = SimRng::new(1);
        let lo = SimDuration::from_micros(10);
        let hi = SimDuration::from_micros(20);
        for _ in 0..200 {
            let d = rng.duration_uniform(lo, hi);
            assert!(d >= lo && d <= hi);
        }
    }

    #[test]
    fn duration_uniform_degenerate_range() {
        let rng = SimRng::new(1);
        let d = SimDuration::from_micros(5);
        assert_eq!(rng.duration_uniform(d, d), d);
    }
}
