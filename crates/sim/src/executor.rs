//! The deterministic single-threaded discrete-event executor.
//!
//! A [`Sim`] owns a virtual clock and a set of tasks (plain Rust futures).
//! Tasks run until they block on a simulation primitive (a timer, a
//! semaphore, a channel, ...). When no task is runnable the executor advances
//! the clock to the earliest pending timer and resumes whoever was waiting on
//! it. Runs are fully deterministic: identical inputs produce identical event
//! orders and identical final clocks.
//!
//! Tasks are not `Send`; the whole simulation lives on one OS thread. Wakers
//! only touch a mutex-protected ready queue, which keeps the `Waker`
//! contract (`Send + Sync`) satisfied without making tasks thread-safe.

use std::cell::RefCell;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Wake, Waker};

use crate::time::{SimDuration, SimTime};

/// Identifier of a spawned task, unique within one [`Sim`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TaskId(u64);

/// The queue of tasks made runnable by wakers.
///
/// This is the only piece of executor state shared with [`Waker`]s, so it is
/// the only piece that needs synchronization.
#[derive(Default)]
struct ReadyQueue {
    queue: Mutex<VecDeque<TaskId>>,
}

impl ReadyQueue {
    fn push(&self, id: TaskId) {
        self.queue
            .lock()
            .expect("ready queue poisoned")
            .push_back(id);
    }

    fn pop(&self) -> Option<TaskId> {
        self.queue.lock().expect("ready queue poisoned").pop_front()
    }
}

struct TaskWaker {
    id: TaskId,
    ready: Arc<ReadyQueue>,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.ready.push(self.id);
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.ready.push(self.id);
    }
}

/// A timer waiting in the heap. Ordered by `(deadline, seq)` so that ties
/// fire in registration order (determinism).
struct TimerEntry {
    deadline: SimTime,
    seq: u64,
    waker: Waker,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        self.deadline == other.deadline && self.seq == other.seq
    }
}

impl Eq for TimerEntry {}

impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest deadline
        // on top.
        (other.deadline, other.seq).cmp(&(self.deadline, self.seq))
    }
}

struct Core {
    now: SimTime,
    timers: BinaryHeap<TimerEntry>,
    tasks: HashMap<TaskId, Pin<Box<dyn Future<Output = ()>>>>,
    next_task: u64,
    next_seq: u64,
}

/// Handle to a simulation. Cheap to clone; all clones refer to the same
/// clock and task set.
#[derive(Clone)]
pub struct Sim {
    core: Rc<RefCell<Core>>,
    ready: Arc<ReadyQueue>,
}

impl Default for Sim {
    fn default() -> Self {
        Self::new()
    }
}

impl Sim {
    /// Creates an empty simulation with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Sim {
            core: Rc::new(RefCell::new(Core {
                now: SimTime::ZERO,
                timers: BinaryHeap::new(),
                tasks: HashMap::new(),
                next_task: 0,
                next_seq: 0,
            })),
            ready: Arc::new(ReadyQueue::default()),
        }
    }

    /// Returns the current virtual time.
    pub fn now(&self) -> SimTime {
        self.core.borrow().now
    }

    /// Spawns a task and returns a handle that resolves to its output.
    ///
    /// The task starts in the ready queue and will first run during the next
    /// executor step. Tasks may spawn further tasks.
    pub fn spawn<F>(&self, fut: F) -> JoinHandle<F::Output>
    where
        F: Future + 'static,
        F::Output: 'static,
    {
        let state = Rc::new(RefCell::new(JoinState {
            result: None,
            wakers: Vec::new(),
        }));
        let state2 = Rc::clone(&state);
        let wrapped = async move {
            let out = fut.await;
            let mut s = state2.borrow_mut();
            s.result = Some(out);
            for w in s.wakers.drain(..) {
                w.wake();
            }
        };
        let id = {
            let mut core = self.core.borrow_mut();
            let id = TaskId(core.next_task);
            core.next_task += 1;
            core.tasks.insert(id, Box::pin(wrapped));
            id
        };
        self.ready.push(id);
        JoinHandle { state }
    }

    /// Returns a future that completes `d` after the current virtual time.
    pub fn sleep(&self, d: SimDuration) -> Sleep {
        Sleep {
            sim: self.clone(),
            deadline: self.now() + d,
            registered: false,
        }
    }

    /// Returns a future that completes at the given absolute virtual time
    /// (immediately if `at` is in the past).
    pub fn sleep_until(&self, at: SimTime) -> Sleep {
        Sleep {
            sim: self.clone(),
            deadline: at,
            registered: false,
        }
    }

    /// Runs `fut` with a deadline, returning `Err(TimedOut)` if the deadline
    /// elapses first.
    pub fn timeout<F>(&self, d: SimDuration, fut: F) -> Timeout<F>
    where
        F: Future,
    {
        Timeout {
            sleep: self.sleep(d),
            fut,
        }
    }

    fn register_timer(&self, deadline: SimTime, waker: Waker) {
        let mut core = self.core.borrow_mut();
        let seq = core.next_seq;
        core.next_seq += 1;
        core.timers.push(TimerEntry {
            deadline,
            seq,
            waker,
        });
    }

    /// Polls every runnable task once; returns how many polls were made.
    fn drain_ready(&self) -> usize {
        let mut polled = 0;
        while let Some(id) = self.ready.pop() {
            // Take the future out of the map so the core is not borrowed
            // while user code runs (user code re-enters the Sim).
            let fut = self.core.borrow_mut().tasks.remove(&id);
            let Some(mut fut) = fut else {
                // Stale wake for a finished task; ignore.
                continue;
            };
            polled += 1;
            let waker = Waker::from(Arc::new(TaskWaker {
                id,
                ready: Arc::clone(&self.ready),
            }));
            let mut cx = Context::from_waker(&waker);
            match fut.as_mut().poll(&mut cx) {
                Poll::Ready(()) => {}
                Poll::Pending => {
                    self.core.borrow_mut().tasks.insert(id, fut);
                }
            }
        }
        polled
    }

    /// Advances the clock to the earliest pending timer and fires every
    /// timer due at that instant. Returns false if there are no timers.
    fn advance_time(&self) -> bool {
        let mut core = self.core.borrow_mut();
        let Some(first) = core.timers.peek() else {
            return false;
        };
        let t = first.deadline;
        assert!(t >= core.now, "timer in the past: executor bug");
        core.now = t;
        let mut due = Vec::new();
        while core.timers.peek().is_some_and(|e| e.deadline == t) {
            due.push(core.timers.pop().expect("peeked timer vanished"));
        }
        drop(core);
        for e in due {
            e.waker.wake();
        }
        true
    }

    /// Runs until the given handle's task has completed, then returns its
    /// output. Other tasks keep running in the background while the target
    /// is pending; they are left in place (paused) when it completes.
    ///
    /// # Panics
    ///
    /// Panics if the simulation goes quiescent (no runnable tasks and no
    /// timers) before the target completes — that is a deadlock in the
    /// simulated system.
    pub fn run_until<T: 'static>(&self, handle: JoinHandle<T>) -> T {
        loop {
            self.drain_ready();
            if let Some(v) = handle.try_take() {
                return v;
            }
            if !self.advance_time() {
                panic!(
                    "simulation deadlock at t={}: target task blocked with no pending timers",
                    self.now()
                );
            }
        }
    }

    /// Convenience: spawn `fut` and [`run_until`](Self::run_until) it.
    pub fn block_on<F>(&self, fut: F) -> F::Output
    where
        F: Future + 'static,
        F::Output: 'static,
    {
        let h = self.spawn(fut);
        self.run_until(h)
    }

    /// Runs until there are no runnable tasks and no pending timers.
    ///
    /// Unlike [`run_until`](Self::run_until), infinite background loops will
    /// prevent this from returning; prefer `run_until` when daemons are
    /// running.
    pub fn run_to_quiescence(&self) {
        loop {
            self.drain_ready();
            if !self.advance_time() {
                return;
            }
        }
    }

    /// Number of live (spawned, not yet finished) tasks.
    pub fn live_tasks(&self) -> usize {
        self.core.borrow().tasks.len()
    }
}

struct JoinState<T> {
    result: Option<T>,
    wakers: Vec<Waker>,
}

/// Handle to a spawned task's eventual output.
///
/// Await it inside the simulation, or pass it to [`Sim::run_until`] from
/// outside.
pub struct JoinHandle<T> {
    state: Rc<RefCell<JoinState<T>>>,
}

impl<T> Clone for JoinHandle<T> {
    fn clone(&self) -> Self {
        JoinHandle {
            state: Rc::clone(&self.state),
        }
    }
}

impl<T> JoinHandle<T> {
    /// Takes the task's output if it has completed.
    pub fn try_take(&self) -> Option<T> {
        self.state.borrow_mut().result.take()
    }

    /// Returns true if the task has completed and its output has not been
    /// taken yet.
    pub fn is_finished(&self) -> bool {
        self.state.borrow().result.is_some()
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = T;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        let mut s = self.state.borrow_mut();
        if let Some(v) = s.result.take() {
            Poll::Ready(v)
        } else {
            s.wakers.push(cx.waker().clone());
            Poll::Pending
        }
    }
}

/// Future returned by [`Sim::sleep`] / [`Sim::sleep_until`].
pub struct Sleep {
    sim: Sim,
    deadline: SimTime,
    registered: bool,
}

impl Future for Sleep {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.sim.now() >= self.deadline {
            return Poll::Ready(());
        }
        // Register exactly once: the heap entry's waker targets the owning
        // task by id, which stays valid across re-polls, and the deadline
        // never moves. Re-registering on every poll would let spurious
        // wakeups multiply timer entries (each stale firing re-polls the
        // task, which would enqueue yet another entry — quadratic blowup).
        if !self.registered {
            let deadline = self.deadline;
            self.sim.register_timer(deadline, cx.waker().clone());
            self.registered = true;
        }
        Poll::Pending
    }
}

/// Error returned by [`Sim::timeout`] when the deadline elapses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedOut;

impl std::fmt::Display for TimedOut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "simulated operation timed out")
    }
}

impl std::error::Error for TimedOut {}

/// Future returned by [`Sim::timeout`].
pub struct Timeout<F> {
    sleep: Sleep,
    fut: F,
}

impl<F: Future> Future for Timeout<F> {
    type Output = Result<F::Output, TimedOut>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        // SAFETY: We never move `fut` or `sleep` out of the pinned struct;
        // the projections below are the only accesses.
        let this = unsafe { self.get_unchecked_mut() };
        let fut = unsafe { Pin::new_unchecked(&mut this.fut) };
        if let Poll::Ready(v) = fut.poll(cx) {
            return Poll::Ready(Ok(v));
        }
        let sleep = unsafe { Pin::new_unchecked(&mut this.sleep) };
        match sleep.poll(cx) {
            Poll::Ready(()) => Poll::Ready(Err(TimedOut)),
            Poll::Pending => Poll::Pending,
        }
    }
}

/// Yields once, letting every other runnable task proceed first.
///
/// Useful for modelling "hand off to a daemon without consuming time".
pub fn yield_now() -> YieldNow {
    YieldNow { yielded: false }
}

/// Future returned by [`yield_now`].
pub struct YieldNow {
    yielded: bool,
}

impl Future for YieldNow {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.yielded {
            Poll::Ready(())
        } else {
            self.yielded = true;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    #[test]
    fn clock_starts_at_zero() {
        let sim = Sim::new();
        assert_eq!(sim.now(), SimTime::ZERO);
    }

    #[test]
    fn sleep_advances_virtual_time_only() {
        let sim = Sim::new();
        let s = sim.clone();
        let out = sim.block_on(async move {
            s.sleep(SimDuration::from_secs(30)).await;
            s.now()
        });
        assert_eq!(out, SimTime::from_micros(30_000_000));
    }

    #[test]
    fn tasks_interleave_deterministically() {
        let sim = Sim::new();
        let log: Rc<RefCell<Vec<(u64, &str)>>> = Rc::default();
        for (name, delays) in [("a", [10u64, 20]), ("b", [15u64, 15])] {
            let s = sim.clone();
            let log = Rc::clone(&log);
            sim.spawn(async move {
                for d in delays {
                    s.sleep(SimDuration::from_micros(d)).await;
                    log.borrow_mut().push((s.now().as_micros(), name));
                }
            });
        }
        sim.run_to_quiescence();
        assert_eq!(
            *log.borrow(),
            vec![(10, "a"), (15, "b"), (30, "a"), (30, "b")]
        );
    }

    #[test]
    fn equal_deadlines_fire_in_registration_order() {
        let sim = Sim::new();
        let log: Rc<RefCell<Vec<u32>>> = Rc::default();
        for i in 0..5u32 {
            let s = sim.clone();
            let log = Rc::clone(&log);
            sim.spawn(async move {
                s.sleep(SimDuration::from_micros(100)).await;
                log.borrow_mut().push(i);
            });
        }
        sim.run_to_quiescence();
        assert_eq!(*log.borrow(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn join_handle_returns_value() {
        let sim = Sim::new();
        let s = sim.clone();
        let h = sim.spawn(async move {
            s.sleep(SimDuration::from_millis(1)).await;
            42u32
        });
        assert_eq!(sim.run_until(h), 42);
    }

    #[test]
    fn join_handle_awaitable_from_other_task() {
        let sim = Sim::new();
        let s = sim.clone();
        let out = sim.block_on(async move {
            let inner = s.spawn({
                let s = s.clone();
                async move {
                    s.sleep(SimDuration::from_millis(5)).await;
                    "done"
                }
            });
            inner.await
        });
        assert_eq!(out, "done");
    }

    #[test]
    fn timeout_expires() {
        let sim = Sim::new();
        let s = sim.clone();
        let out = sim.block_on(async move {
            s.timeout(
                SimDuration::from_millis(1),
                s.sleep(SimDuration::from_secs(10)),
            )
            .await
        });
        assert_eq!(out, Err(TimedOut));
    }

    #[test]
    fn timeout_passes_through_fast_future() {
        let sim = Sim::new();
        let s = sim.clone();
        let out =
            sim.block_on(async move { s.timeout(SimDuration::from_secs(10), async { 7u8 }).await });
        assert_eq!(out, Ok(7));
    }

    #[test]
    fn timeout_win_is_exclusive_at_same_instant() {
        // If the inner future becomes ready exactly at the deadline, the
        // value wins (future is polled first).
        let sim = Sim::new();
        let s = sim.clone();
        let d = SimDuration::from_millis(3);
        let out = sim.block_on({
            let s = s.clone();
            async move { s.timeout(d, s.sleep(d)).await }
        });
        assert_eq!(out, Ok(()));
    }

    #[test]
    fn yield_now_lets_peers_run() {
        let sim = Sim::new();
        let flag = Rc::new(Cell::new(false));
        let f2 = Rc::clone(&flag);
        sim.spawn(async move {
            f2.set(true);
        });
        let s = sim.clone();
        let out = sim.block_on(async move {
            // Without the yield the sibling task (spawned later in the
            // ready queue) would not have run yet.
            yield_now().await;
            flag.get()
        });
        assert!(out);
        let _ = s;
    }

    #[test]
    fn run_to_quiescence_finishes_with_chained_spawns() {
        let sim = Sim::new();
        let count = Rc::new(Cell::new(0u32));
        fn chain(s: Sim, count: Rc<Cell<u32>>, depth: u32) {
            if depth == 0 {
                return;
            }
            let s2 = s.clone();
            s.spawn(async move {
                s2.sleep(SimDuration::from_micros(1)).await;
                count.set(count.get() + 1);
                chain(s2.clone(), count, depth - 1);
            });
        }
        chain(sim.clone(), Rc::clone(&count), 10);
        sim.run_to_quiescence();
        assert_eq!(count.get(), 10);
        assert_eq!(sim.live_tasks(), 0);
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn run_until_panics_on_deadlock() {
        let sim = Sim::new();
        let h = sim.spawn(std::future::pending::<()>());
        sim.run_until(h);
    }

    #[test]
    fn sleep_until_past_completes_immediately() {
        let sim = Sim::new();
        let s = sim.clone();
        sim.block_on(async move {
            s.sleep(SimDuration::from_secs(5)).await;
            // Deadline already in the past.
            s.sleep_until(SimTime::from_micros(1)).await;
            assert_eq!(s.now().as_secs_f64(), 5.0);
        });
    }
}
