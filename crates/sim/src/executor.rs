//! The deterministic single-threaded discrete-event executor.
//!
//! A [`Sim`] owns a virtual clock and a set of tasks (plain Rust futures).
//! Tasks run until they block on a simulation primitive (a timer, a
//! semaphore, a channel, ...). When no task is runnable the executor advances
//! the clock to the earliest pending timer and resumes whoever was waiting on
//! it. Runs are fully deterministic: identical inputs produce identical event
//! orders and identical final clocks.
//!
//! Tasks are not `Send`; the whole simulation lives on one OS thread. Wakers
//! only touch a mutex-protected ready queue, which keeps the `Waker`
//! contract (`Send + Sync`) satisfied without making tasks thread-safe.
//!
//! # Hot-path layout
//!
//! The executor retires hundreds of millions of events per experiment
//! matrix, so the inner loop is flat:
//!
//! * **Tasks live in a slab** (`Vec<Option<TaskSlot>>` + free-index stack)
//!   addressed by generational [`TaskId`]s. Spawn, wake and poll are index
//!   operations; no hashing. Each slot caches its `Waker`, created once at
//!   spawn — polling does not allocate. A wake that races task completion
//!   (the id's generation no longer matches) is counted as a *stale wake*
//!   and skipped.
//! * **Timers live in a cancel-aware indexed heap** ([`crate::timer`]):
//!   dropping a [`Sleep`] before its deadline removes its entry in
//!   O(log n). The previous `BinaryHeap` accumulated the abandoned guard
//!   timers of every timeout that lost its race, then paid to pop and
//!   spuriously fire each one.
//! * **[`SimStats`]** counts what the loop actually did (polls, timer
//!   fires/cancels, stale wakes, high-water marks), so events/sec in perf
//!   benches is measured, not inferred.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Wake, Waker};

use crate::time::{SimDuration, SimTime};
use crate::timer::{TimerId, TimerQueue};

/// Identifier of a spawned task: a slab index plus a generation that
/// detects reuse, unique within one [`Sim`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TaskId {
    index: u32,
    gen: u32,
}

/// The queue of tasks made runnable by wakers.
///
/// This is the only piece of executor state shared with [`Waker`]s, so it is
/// the only piece that needs synchronization.
#[derive(Default)]
struct ReadyQueue {
    state: Mutex<ReadyState>,
}

#[derive(Default)]
struct ReadyState {
    queue: VecDeque<TaskId>,
    peak_depth: usize,
}

impl ReadyQueue {
    fn push(&self, id: TaskId) {
        let mut s = self.state.lock().expect("ready queue poisoned");
        s.queue.push_back(id);
        if s.queue.len() > s.peak_depth {
            s.peak_depth = s.queue.len();
        }
    }

    fn pop(&self) -> Option<TaskId> {
        self.state
            .lock()
            .expect("ready queue poisoned")
            .queue
            .pop_front()
    }

    fn peak_depth(&self) -> usize {
        self.state.lock().expect("ready queue poisoned").peak_depth
    }
}

struct TaskWaker {
    id: TaskId,
    ready: Arc<ReadyQueue>,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.ready.push(self.id);
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.ready.push(self.id);
    }
}

/// One occupied task slot: the future plus its cached waker.
struct TaskSlot {
    gen: u32,
    /// Taken out while the task is being polled (user code re-enters the
    /// core), put back on `Pending`.
    fut: Option<Pin<Box<dyn Future<Output = ()>>>>,
    /// Created once at spawn; polling clones the `Waker` (an `Arc` bump),
    /// never allocates.
    waker: Waker,
}

/// Executor counters: everything the scheduling loop did during a run.
///
/// All counts are deterministic for a deterministic program — two
/// identical runs produce identical `SimStats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Task polls performed.
    pub polls: u64,
    /// Tasks spawned.
    pub tasks_spawned: u64,
    /// Tasks that ran to completion.
    pub tasks_completed: u64,
    /// Ready-queue pops that found the task already finished (or its slot
    /// reused): wakes that arrived too late to matter.
    pub stale_wakes: u64,
    /// Timers registered.
    pub timers_registered: u64,
    /// Timers that fired (clock advanced to their deadline).
    pub timer_fires: u64,
    /// Timers removed before firing (a `Sleep` dropped mid-wait).
    pub timer_cancels: u64,
    /// Clock advances (distinct instants the simulation visited).
    pub clock_advances: u64,
    /// High-water mark of the ready queue.
    pub peak_ready_depth: u64,
    /// High-water mark of live tasks (slab occupancy; memory proxy).
    pub peak_live_tasks: u64,
    /// High-water mark of live timers (heap occupancy; memory proxy).
    pub peak_live_timers: u64,
}

impl SimStats {
    /// Total scheduler events retired: polls plus timer firings. This is
    /// the numerator of the `sim_speed` events/sec figure.
    pub fn events_retired(&self) -> u64 {
        self.polls + self.timer_fires
    }
}

struct Core {
    now: SimTime,
    timers: TimerQueue,
    tasks: Vec<Option<TaskSlot>>,
    /// Free slab indices, reused LIFO.
    free: Vec<u32>,
    /// Generation counters per slot, persisting across reuse.
    gens: Vec<u32>,
    live_tasks: usize,
    peak_live_tasks: usize,
    /// Scratch buffer for due-timer wakers (reused across advances).
    due: Vec<Waker>,
    stats: SimStats,
}

impl Core {
    fn free_slot(&mut self, index: u32) {
        self.tasks[index as usize] = None;
        self.gens[index as usize] = self.gens[index as usize].wrapping_add(1);
        self.free.push(index);
        self.live_tasks -= 1;
        self.stats.tasks_completed += 1;
    }
}

/// Handle to a simulation. Cheap to clone; all clones refer to the same
/// clock and task set.
#[derive(Clone)]
pub struct Sim {
    core: Rc<RefCell<Core>>,
    ready: Arc<ReadyQueue>,
}

impl Default for Sim {
    fn default() -> Self {
        Self::new()
    }
}

impl Sim {
    /// Creates an empty simulation with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Sim {
            core: Rc::new(RefCell::new(Core {
                now: SimTime::ZERO,
                timers: TimerQueue::default(),
                tasks: Vec::new(),
                free: Vec::new(),
                gens: Vec::new(),
                live_tasks: 0,
                peak_live_tasks: 0,
                due: Vec::new(),
                stats: SimStats::default(),
            })),
            ready: Arc::new(ReadyQueue::default()),
        }
    }

    /// Returns the current virtual time.
    pub fn now(&self) -> SimTime {
        self.core.borrow().now
    }

    /// Spawns a task and returns a handle that resolves to its output.
    ///
    /// The task starts in the ready queue and will first run during the next
    /// executor step. Tasks may spawn further tasks.
    pub fn spawn<F>(&self, fut: F) -> JoinHandle<F::Output>
    where
        F: Future + 'static,
        F::Output: 'static,
    {
        let state = Rc::new(RefCell::new(JoinState {
            result: None,
            wakers: Vec::new(),
        }));
        let state2 = Rc::clone(&state);
        let wrapped = async move {
            let out = fut.await;
            let mut s = state2.borrow_mut();
            s.result = Some(out);
            for w in s.wakers.drain(..) {
                w.wake();
            }
        };
        let id = {
            let mut core = self.core.borrow_mut();
            let index = match core.free.pop() {
                Some(i) => i,
                None => {
                    let i = core.tasks.len() as u32;
                    core.tasks.push(None);
                    core.gens.push(0);
                    i
                }
            };
            let id = TaskId {
                index,
                gen: core.gens[index as usize],
            };
            let waker = Waker::from(Arc::new(TaskWaker {
                id,
                ready: Arc::clone(&self.ready),
            }));
            core.tasks[index as usize] = Some(TaskSlot {
                gen: id.gen,
                fut: Some(Box::pin(wrapped)),
                waker,
            });
            core.live_tasks += 1;
            core.peak_live_tasks = core.peak_live_tasks.max(core.live_tasks);
            core.stats.tasks_spawned += 1;
            id
        };
        self.ready.push(id);
        JoinHandle { state }
    }

    /// Returns a future that completes `d` after the current virtual time.
    pub fn sleep(&self, d: SimDuration) -> Sleep {
        Sleep {
            sim: self.clone(),
            deadline: self.now() + d,
            timer: None,
            registered: false,
        }
    }

    /// Returns a future that completes at the given absolute virtual time
    /// (immediately if `at` is in the past).
    pub fn sleep_until(&self, at: SimTime) -> Sleep {
        Sleep {
            sim: self.clone(),
            deadline: at,
            timer: None,
            registered: false,
        }
    }

    /// Runs `fut` with a deadline, returning `Err(TimedOut)` if the deadline
    /// elapses first.
    pub fn timeout<F>(&self, d: SimDuration, fut: F) -> Timeout<F>
    where
        F: Future,
    {
        Timeout {
            sleep: self.sleep(d),
            fut,
        }
    }

    fn register_timer(&self, deadline: SimTime, waker: Waker) -> TimerId {
        let mut core = self.core.borrow_mut();
        core.stats.timers_registered += 1;
        core.timers.register(deadline, waker)
    }

    fn cancel_timer(&self, id: TimerId) {
        self.core.borrow_mut().timers.cancel(id);
    }

    /// Polls every runnable task once; returns how many polls were made.
    fn drain_ready(&self) -> usize {
        let mut polled = 0;
        while let Some(id) = self.ready.pop() {
            // Take the future out of its slot so the core is not borrowed
            // while user code runs (user code re-enters the Sim).
            let (mut fut, waker) = {
                let mut core = self.core.borrow_mut();
                let fut = match core.tasks.get_mut(id.index as usize) {
                    Some(Some(slot)) if slot.gen == id.gen => slot.fut.take(),
                    _ => None,
                };
                let Some(fut) = fut else {
                    // Wake for a finished task (or one mid-poll via a
                    // nested executor entry); ignore.
                    core.stats.stale_wakes += 1;
                    continue;
                };
                core.stats.polls += 1;
                let waker = core.tasks[id.index as usize]
                    .as_ref()
                    .expect("slot occupied")
                    .waker
                    .clone();
                (fut, waker)
            };
            polled += 1;
            let mut cx = Context::from_waker(&waker);
            match fut.as_mut().poll(&mut cx) {
                Poll::Ready(()) => {
                    // Drop the future *before* re-borrowing the core: its
                    // destructor may cancel timers (Sleep::drop).
                    drop(fut);
                    self.core.borrow_mut().free_slot(id.index);
                }
                Poll::Pending => {
                    let mut core = self.core.borrow_mut();
                    core.tasks[id.index as usize]
                        .as_mut()
                        .expect("slot occupied")
                        .fut = Some(fut);
                }
            }
        }
        polled
    }

    /// Advances the clock to the earliest pending timer and fires every
    /// timer due at that instant. Returns false if there are no timers.
    fn advance_time(&self) -> bool {
        let mut due = {
            let mut core = self.core.borrow_mut();
            let Some(t) = core.timers.peek_deadline() else {
                return false;
            };
            assert!(t >= core.now, "timer in the past: executor bug");
            core.now = t;
            core.stats.clock_advances += 1;
            let mut due = std::mem::take(&mut core.due);
            while let Some(w) = core.timers.pop_due(t) {
                due.push(w);
            }
            core.stats.timer_fires += due.len() as u64;
            due
        };
        for w in due.drain(..) {
            w.wake();
        }
        // Hand the (empty) scratch buffer back for the next advance.
        self.core.borrow_mut().due = due;
        true
    }

    /// Runs until the given handle's task has completed, then returns its
    /// output. Other tasks keep running in the background while the target
    /// is pending; they are left in place (paused) when it completes.
    ///
    /// # Panics
    ///
    /// Panics if the simulation goes quiescent (no runnable tasks and no
    /// timers) before the target completes — that is a deadlock in the
    /// simulated system.
    pub fn run_until<T: 'static>(&self, handle: JoinHandle<T>) -> T {
        loop {
            self.drain_ready();
            if let Some(v) = handle.try_take() {
                return v;
            }
            if !self.advance_time() {
                panic!(
                    "simulation deadlock at t={}: target task blocked with no pending timers",
                    self.now()
                );
            }
        }
    }

    /// Convenience: spawn `fut` and [`run_until`](Self::run_until) it.
    pub fn block_on<F>(&self, fut: F) -> F::Output
    where
        F: Future + 'static,
        F::Output: 'static,
    {
        let h = self.spawn(fut);
        self.run_until(h)
    }

    /// Runs until there are no runnable tasks and no pending timers.
    ///
    /// Unlike [`run_until`](Self::run_until), infinite background loops will
    /// prevent this from returning; prefer `run_until` when daemons are
    /// running.
    pub fn run_to_quiescence(&self) {
        loop {
            self.drain_ready();
            if !self.advance_time() {
                return;
            }
        }
    }

    /// Number of live (spawned, not yet finished) tasks.
    pub fn live_tasks(&self) -> usize {
        self.core.borrow().live_tasks
    }

    /// Number of live (registered, not yet fired or cancelled) timers.
    pub fn live_timers(&self) -> usize {
        self.core.borrow().timers.len()
    }

    /// Executor counters up to now (see [`SimStats`]).
    pub fn stats(&self) -> SimStats {
        let core = self.core.borrow();
        let mut s = core.stats;
        s.timer_cancels = core.timers.cancels();
        s.peak_live_tasks = core.peak_live_tasks as u64;
        s.peak_live_timers = core.timers.peak_live() as u64;
        s.peak_ready_depth = self.ready.peak_depth() as u64;
        s
    }
}

struct JoinState<T> {
    result: Option<T>,
    wakers: Vec<Waker>,
}

/// Handle to a spawned task's eventual output.
///
/// Await it inside the simulation, or pass it to [`Sim::run_until`] from
/// outside.
pub struct JoinHandle<T> {
    state: Rc<RefCell<JoinState<T>>>,
}

impl<T> Clone for JoinHandle<T> {
    fn clone(&self) -> Self {
        JoinHandle {
            state: Rc::clone(&self.state),
        }
    }
}

impl<T> JoinHandle<T> {
    /// Takes the task's output if it has completed.
    pub fn try_take(&self) -> Option<T> {
        self.state.borrow_mut().result.take()
    }

    /// Returns true if the task has completed and its output has not been
    /// taken yet.
    pub fn is_finished(&self) -> bool {
        self.state.borrow().result.is_some()
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = T;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        let mut s = self.state.borrow_mut();
        if let Some(v) = s.result.take() {
            Poll::Ready(v)
        } else {
            s.wakers.push(cx.waker().clone());
            Poll::Pending
        }
    }
}

/// Future returned by [`Sim::sleep`] / [`Sim::sleep_until`].
///
/// Registration is single-shot (the deadline never moves and the heap
/// entry wakes the owning task by id, which stays valid across re-polls),
/// and the entry is *cancelled on drop*: abandoning a `Sleep` mid-wait —
/// a timeout that lost its race, a dropped retransmission guard — leaves
/// no live timer behind.
pub struct Sleep {
    sim: Sim,
    deadline: SimTime,
    timer: Option<TimerId>,
    registered: bool,
}

impl Future for Sleep {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.sim.now() >= self.deadline {
            // The entry (if any) fired to get us here; a stale cancel is a
            // generation-checked no-op, so take() keeps Drop cheap.
            self.timer.take();
            return Poll::Ready(());
        }
        if !self.registered {
            let deadline = self.deadline;
            let timer = self.sim.register_timer(deadline, cx.waker().clone());
            self.timer = Some(timer);
            self.registered = true;
        }
        Poll::Pending
    }
}

impl Drop for Sleep {
    fn drop(&mut self) {
        if let Some(id) = self.timer.take() {
            self.sim.cancel_timer(id);
        }
    }
}

/// Error returned by [`Sim::timeout`] when the deadline elapses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedOut;

impl std::fmt::Display for TimedOut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "simulated operation timed out")
    }
}

impl std::error::Error for TimedOut {}

/// Future returned by [`Sim::timeout`].
pub struct Timeout<F> {
    sleep: Sleep,
    fut: F,
}

impl<F: Future> Future for Timeout<F> {
    type Output = Result<F::Output, TimedOut>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        // SAFETY: We never move `fut` or `sleep` out of the pinned struct;
        // the projections below are the only accesses.
        let this = unsafe { self.get_unchecked_mut() };
        let fut = unsafe { Pin::new_unchecked(&mut this.fut) };
        if let Poll::Ready(v) = fut.poll(cx) {
            return Poll::Ready(Ok(v));
        }
        let sleep = unsafe { Pin::new_unchecked(&mut this.sleep) };
        match sleep.poll(cx) {
            Poll::Ready(()) => Poll::Ready(Err(TimedOut)),
            Poll::Pending => Poll::Pending,
        }
    }
}

/// Yields once, letting every other runnable task proceed first.
///
/// Useful for modelling "hand off to a daemon without consuming time".
pub fn yield_now() -> YieldNow {
    YieldNow { yielded: false }
}

/// Future returned by [`yield_now`].
pub struct YieldNow {
    yielded: bool,
}

impl Future for YieldNow {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.yielded {
            Poll::Ready(())
        } else {
            self.yielded = true;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    #[test]
    fn clock_starts_at_zero() {
        let sim = Sim::new();
        assert_eq!(sim.now(), SimTime::ZERO);
    }

    #[test]
    fn sleep_advances_virtual_time_only() {
        let sim = Sim::new();
        let s = sim.clone();
        let out = sim.block_on(async move {
            s.sleep(SimDuration::from_secs(30)).await;
            s.now()
        });
        assert_eq!(out, SimTime::from_micros(30_000_000));
    }

    #[test]
    fn tasks_interleave_deterministically() {
        let sim = Sim::new();
        let log: Rc<RefCell<Vec<(u64, &str)>>> = Rc::default();
        for (name, delays) in [("a", [10u64, 20]), ("b", [15u64, 15])] {
            let s = sim.clone();
            let log = Rc::clone(&log);
            sim.spawn(async move {
                for d in delays {
                    s.sleep(SimDuration::from_micros(d)).await;
                    log.borrow_mut().push((s.now().as_micros(), name));
                }
            });
        }
        sim.run_to_quiescence();
        assert_eq!(
            *log.borrow(),
            vec![(10, "a"), (15, "b"), (30, "a"), (30, "b")]
        );
    }

    #[test]
    fn equal_deadlines_fire_in_registration_order() {
        let sim = Sim::new();
        let log: Rc<RefCell<Vec<u32>>> = Rc::default();
        for i in 0..5u32 {
            let s = sim.clone();
            let log = Rc::clone(&log);
            sim.spawn(async move {
                s.sleep(SimDuration::from_micros(100)).await;
                log.borrow_mut().push(i);
            });
        }
        sim.run_to_quiescence();
        assert_eq!(*log.borrow(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn join_handle_returns_value() {
        let sim = Sim::new();
        let s = sim.clone();
        let h = sim.spawn(async move {
            s.sleep(SimDuration::from_millis(1)).await;
            42u32
        });
        assert_eq!(sim.run_until(h), 42);
    }

    #[test]
    fn join_handle_awaitable_from_other_task() {
        let sim = Sim::new();
        let s = sim.clone();
        let out = sim.block_on(async move {
            let inner = s.spawn({
                let s = s.clone();
                async move {
                    s.sleep(SimDuration::from_millis(5)).await;
                    "done"
                }
            });
            inner.await
        });
        assert_eq!(out, "done");
    }

    #[test]
    fn timeout_expires() {
        let sim = Sim::new();
        let s = sim.clone();
        let out = sim.block_on(async move {
            s.timeout(
                SimDuration::from_millis(1),
                s.sleep(SimDuration::from_secs(10)),
            )
            .await
        });
        assert_eq!(out, Err(TimedOut));
    }

    #[test]
    fn timeout_passes_through_fast_future() {
        let sim = Sim::new();
        let s = sim.clone();
        let out =
            sim.block_on(async move { s.timeout(SimDuration::from_secs(10), async { 7u8 }).await });
        assert_eq!(out, Ok(7));
    }

    #[test]
    fn timeout_win_is_exclusive_at_same_instant() {
        // If the inner future becomes ready exactly at the deadline, the
        // value wins (future is polled first).
        let sim = Sim::new();
        let s = sim.clone();
        let d = SimDuration::from_millis(3);
        let out = sim.block_on({
            let s = s.clone();
            async move { s.timeout(d, s.sleep(d)).await }
        });
        assert_eq!(out, Ok(()));
    }

    #[test]
    fn yield_now_lets_peers_run() {
        let sim = Sim::new();
        let flag = Rc::new(Cell::new(false));
        let f2 = Rc::clone(&flag);
        sim.spawn(async move {
            f2.set(true);
        });
        let s = sim.clone();
        let out = sim.block_on(async move {
            // Without the yield the sibling task (spawned later in the
            // ready queue) would not have run yet.
            yield_now().await;
            flag.get()
        });
        assert!(out);
        let _ = s;
    }

    #[test]
    fn run_to_quiescence_finishes_with_chained_spawns() {
        let sim = Sim::new();
        let count = Rc::new(Cell::new(0u32));
        fn chain(s: Sim, count: Rc<Cell<u32>>, depth: u32) {
            if depth == 0 {
                return;
            }
            let s2 = s.clone();
            s.spawn(async move {
                s2.sleep(SimDuration::from_micros(1)).await;
                count.set(count.get() + 1);
                chain(s2.clone(), count, depth - 1);
            });
        }
        chain(sim.clone(), Rc::clone(&count), 10);
        sim.run_to_quiescence();
        assert_eq!(count.get(), 10);
        assert_eq!(sim.live_tasks(), 0);
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn run_until_panics_on_deadlock() {
        let sim = Sim::new();
        let h = sim.spawn(std::future::pending::<()>());
        sim.run_until(h);
    }

    #[test]
    fn sleep_until_past_completes_immediately() {
        let sim = Sim::new();
        let s = sim.clone();
        sim.block_on(async move {
            s.sleep(SimDuration::from_secs(5)).await;
            // Deadline already in the past.
            s.sleep_until(SimTime::from_micros(1)).await;
            assert_eq!(s.now().as_secs_f64(), 5.0);
        });
    }

    #[test]
    fn cancelled_sleep_leaves_no_live_timer() {
        // The stale-timer regression: a timeout whose inner future wins
        // must remove its guard entry, not leave it to fire spuriously.
        let sim = Sim::new();
        let s = sim.clone();
        sim.block_on(async move {
            let r = s
                .timeout(
                    SimDuration::from_secs(100),
                    s.sleep(SimDuration::from_millis(1)),
                )
                .await;
            assert!(r.is_ok());
            assert_eq!(s.live_timers(), 0, "abandoned guard timer left behind");
        });
        // Quiescence is reached at the inner deadline, not the guard's.
        sim.run_to_quiescence();
        assert_eq!(sim.now().as_micros(), 1_000);
        let st = sim.stats();
        assert_eq!(st.timer_cancels, 1);
        assert_eq!(st.stale_wakes, 0);
    }

    #[test]
    fn explicitly_dropped_sleep_cancels_its_timer() {
        let sim = Sim::new();
        let s = sim.clone();
        sim.block_on(async move {
            let mut sl = s.sleep(SimDuration::from_secs(50));
            // Poll it once so it registers, then drop it.
            futures_poll_once(&mut sl);
            assert_eq!(s.live_timers(), 1);
            drop(sl);
            assert_eq!(s.live_timers(), 0);
        });
    }

    /// Polls a future once with a no-op waker (test helper).
    fn futures_poll_once<F: Future + Unpin>(f: &mut F) {
        struct Noop;
        impl Wake for Noop {
            fn wake(self: Arc<Self>) {}
        }
        let waker = Waker::from(Arc::new(Noop));
        let mut cx = Context::from_waker(&waker);
        let _ = Pin::new(f).poll(&mut cx);
    }

    #[test]
    fn slab_reuses_slots_without_cross_waking() {
        let sim = Sim::new();
        let hits: Rc<RefCell<Vec<u32>>> = Rc::default();
        // Wave 1: tasks finish quickly, freeing their slots.
        for i in 0..4u32 {
            let s = sim.clone();
            let hits = Rc::clone(&hits);
            sim.spawn(async move {
                s.sleep(SimDuration::from_micros(u64::from(i))).await;
                hits.borrow_mut().push(i);
            });
        }
        sim.run_to_quiescence();
        // Wave 2 reuses the slots; stale wakes from wave 1 (none should
        // exist, but generations guard it) must not touch wave 2.
        for i in 10..14u32 {
            let s = sim.clone();
            let hits = Rc::clone(&hits);
            sim.spawn(async move {
                s.sleep(SimDuration::from_micros(u64::from(i))).await;
                hits.borrow_mut().push(i);
            });
        }
        sim.run_to_quiescence();
        assert_eq!(*hits.borrow(), vec![0, 1, 2, 3, 10, 11, 12, 13]);
        let st = sim.stats();
        assert_eq!(st.tasks_spawned, 8);
        assert_eq!(st.tasks_completed, 8);
        assert!(st.peak_live_tasks <= 4, "slots were not reused");
    }

    #[test]
    fn stats_count_polls_and_fires() {
        let sim = Sim::new();
        let s = sim.clone();
        sim.block_on(async move {
            for _ in 0..10 {
                s.sleep(SimDuration::from_millis(1)).await;
            }
        });
        let st = sim.stats();
        assert_eq!(st.timer_fires, 10);
        assert_eq!(st.timers_registered, 10);
        assert!(st.polls >= 11);
        assert_eq!(st.tasks_spawned, 1);
        assert_eq!(st.tasks_completed, 1);
        assert!(st.events_retired() >= 21);
        assert_eq!(st.clock_advances, 10);
    }
}
