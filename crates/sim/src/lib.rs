//! Deterministic discrete-event simulation executor for the Spritely NFS
//! reproduction.
//!
//! This crate is the substrate every other crate in the workspace runs on:
//! a single-threaded async executor driven by a *virtual* clock. Simulated
//! hosts, disks, networks and daemons are ordinary Rust futures that block
//! on [`Sim::sleep`], [`Semaphore`]s, [`Resource`]s and channels; when
//! nothing is runnable, the executor jumps the clock to the next timer.
//!
//! Design goals, in order:
//!
//! 1. **Determinism** — identical inputs produce identical event orders,
//!    identical RPC counts and identical final clocks. Ties are broken by
//!    registration order, all queues are FIFO, and randomness flows through
//!    seeded [`SimRng`] streams.
//! 2. **Legible models** — a workload is written as straight-line async
//!    code (`fs.open(..).await?; fs.write(..).await?`), not as a hand-built
//!    state machine.
//! 3. **Measurability** — [`Resource`] integrates busy time so the harness
//!    can reproduce the paper's server-utilization figures.
//!
//! # Examples
//!
//! ```
//! use spritely_sim::{Sim, SimDuration};
//!
//! let sim = Sim::new();
//! let s = sim.clone();
//! let total = sim.block_on(async move {
//!     s.sleep(SimDuration::from_secs(2)).await;
//!     s.now().as_secs_f64()
//! });
//! assert_eq!(total, 2.0);
//! ```

mod executor;
mod resource;
mod rng;
mod sync;
mod time;
mod timer;

pub use executor::{
    yield_now, JoinHandle, Sim, SimStats, Sleep, TaskId, TimedOut, Timeout, YieldNow,
};
pub use resource::{Resource, ResourceGuard};
pub use rng::SimRng;
pub use sync::{channel, Acquire, Event, EventWait, Permit, Receiver, Recv, Semaphore, Sender};
pub use time::{SimDuration, SimTime};
