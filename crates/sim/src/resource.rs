//! FIFO service resources with busy-time accounting.
//!
//! A [`Resource`] models a hardware unit with a fixed number of servers — a
//! CPU (capacity 1), a disk arm (capacity 1), a pool of server threads
//! (capacity N). Tasks either occupy it for a known duration
//! ([`Resource::use_for`]) or hold it across irregular work
//! ([`Resource::acquire`]). The resource integrates its busy time so the
//! harness can report utilization figures (paper figures 5-1 / 5-2).

use std::cell::RefCell;
use std::rc::Rc;

use crate::executor::Sim;
use crate::sync::{Permit, Semaphore};
use crate::time::{SimDuration, SimTime};

/// A named FIFO service center with utilization accounting.
#[derive(Clone)]
pub struct Resource {
    sim: Sim,
    sem: Semaphore,
    util: Rc<RefCell<UtilState>>,
}

struct UtilState {
    name: String,
    capacity: usize,
    /// Number of permits currently held.
    held: usize,
    /// Integral of `held` over time, in permit-microseconds.
    busy_integral: u128,
    last_change: SimTime,
    completed: u64,
}

impl Resource {
    /// Creates a resource with the given number of identical servers.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(sim: &Sim, name: impl Into<String>, capacity: usize) -> Self {
        assert!(capacity > 0, "resource needs at least one server");
        Resource {
            sim: sim.clone(),
            sem: Semaphore::new(capacity),
            util: Rc::new(RefCell::new(UtilState {
                name: name.into(),
                capacity,
                held: 0,
                busy_integral: 0,
                last_change: sim.now(),
                completed: 0,
            })),
        }
    }

    /// The resource's name (for traces and error messages).
    pub fn name(&self) -> String {
        self.util.borrow().name.clone()
    }

    /// Number of identical servers.
    pub fn capacity(&self) -> usize {
        self.util.borrow().capacity
    }

    /// Number of completed service periods.
    pub fn completed(&self) -> u64 {
        self.util.borrow().completed
    }

    /// Servers currently held (accounting view).
    pub fn in_use(&self) -> usize {
        self.util.borrow().held
    }

    /// Tasks waiting in the FIFO queue.
    pub fn waiting(&self) -> usize {
        self.sem.queue_len()
    }

    /// Semaphore-level held count (capacity minus free minus reserved).
    pub fn sem_held(&self) -> usize {
        self.sem.held()
    }

    /// Occupies one server for exactly `d`, queueing FIFO if all are busy.
    pub async fn use_for(&self, d: SimDuration) {
        let guard = self.acquire().await;
        self.sim.sleep(d).await;
        drop(guard);
    }

    /// Acquires one server for an irregular period; release by dropping the
    /// guard. Prefer [`use_for`](Self::use_for) when the service time is
    /// known up front.
    pub async fn acquire(&self) -> ResourceGuard {
        let permit = self.sem.acquire().await;
        self.on_change(1);
        ResourceGuard {
            res: self.clone(),
            _permit: permit,
        }
    }

    fn on_change(&self, delta: isize) {
        let now = self.sim.now();
        let mut u = self.util.borrow_mut();
        let dt = now.duration_since(u.last_change).as_micros();
        u.busy_integral += u.held as u128 * u128::from(dt);
        u.last_change = now;
        if delta > 0 {
            u.held += delta as usize;
            debug_assert!(u.held <= u.capacity, "{}: over capacity", u.name);
        } else {
            u.held -= (-delta) as usize;
            u.completed += 1;
        }
    }

    /// Busy integral up to the current instant, in permit-microseconds.
    ///
    /// `delta(busy) / (delta(t) * capacity)` over an interval is the mean
    /// utilization for that interval.
    pub fn busy_permit_micros(&self) -> u128 {
        let now = self.sim.now();
        let u = self.util.borrow();
        u.busy_integral + u.held as u128 * u128::from(now.duration_since(u.last_change).as_micros())
    }

    /// Mean utilization (0..=1) over `[since, now]`.
    pub fn utilization_since(&self, since: SimTime, busy_at_since: u128) -> f64 {
        let now = self.sim.now();
        let span = now.saturating_duration_since(since).as_micros();
        if span == 0 {
            return 0.0;
        }
        let busy = self.busy_permit_micros() - busy_at_since;
        busy as f64 / (span as f64 * self.capacity() as f64)
    }
}

/// RAII guard for an acquired server; releases (and accounts) on drop.
pub struct ResourceGuard {
    res: Resource,
    _permit: Permit,
}

impl Drop for ResourceGuard {
    fn drop(&mut self) {
        self.res.on_change(-1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_server_serializes_and_accounts() {
        let sim = Sim::new();
        let cpu = Resource::new(&sim, "cpu", 1);
        for _ in 0..3 {
            let cpu = cpu.clone();
            sim.spawn(async move {
                cpu.use_for(SimDuration::from_millis(10)).await;
            });
        }
        sim.run_to_quiescence();
        assert_eq!(sim.now().as_micros(), 30_000);
        assert_eq!(cpu.busy_permit_micros(), 30_000);
        assert_eq!(cpu.completed(), 3);
    }

    #[test]
    fn multi_server_overlaps() {
        let sim = Sim::new();
        let pool = Resource::new(&sim, "threads", 2);
        for _ in 0..4 {
            let pool = pool.clone();
            sim.spawn(async move {
                pool.use_for(SimDuration::from_millis(10)).await;
            });
        }
        sim.run_to_quiescence();
        // Two waves of two parallel services.
        assert_eq!(sim.now().as_micros(), 20_000);
        // Busy integral counts both servers: 4 services x 10ms each.
        assert_eq!(pool.busy_permit_micros(), 40_000);
    }

    #[test]
    fn utilization_since_interval() {
        let sim = Sim::new();
        let cpu = Resource::new(&sim, "cpu", 1);
        let cpu2 = cpu.clone();
        let s = sim.clone();
        sim.block_on(async move {
            // Busy 10ms of the first 40ms.
            cpu2.use_for(SimDuration::from_millis(10)).await;
            s.sleep(SimDuration::from_millis(30)).await;
        });
        let u = cpu.utilization_since(SimTime::ZERO, 0);
        assert!((u - 0.25).abs() < 1e-9, "got {u}");
    }

    #[test]
    fn acquire_guard_accounts_irregular_hold() {
        let sim = Sim::new();
        let disk = Resource::new(&sim, "disk", 1);
        let disk2 = disk.clone();
        let s = sim.clone();
        sim.block_on(async move {
            let g = disk2.acquire().await;
            s.sleep(SimDuration::from_millis(7)).await;
            s.sleep(SimDuration::from_millis(3)).await;
            drop(g);
        });
        assert_eq!(disk.busy_permit_micros(), 10_000);
        assert_eq!(disk.completed(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_capacity_rejected() {
        let sim = Sim::new();
        let _ = Resource::new(&sim, "x", 0);
    }
}
