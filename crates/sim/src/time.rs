//! Virtual time: instants and durations measured in integer microseconds.
//!
//! The simulator never consults the wall clock. All timing in the system is
//! expressed in [`SimTime`] (an absolute instant since simulation start) and
//! [`SimDuration`] (a span). Integer microseconds give deterministic
//! arithmetic (no float drift) at a resolution far below any modelled
//! hardware latency.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant in virtual time, in microseconds since simulation
/// start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Builds an instant from raw microseconds since the epoch.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Returns the instant as microseconds since the epoch.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the instant as (possibly fractional) seconds since the epoch.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns the duration elapsed from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`; virtual time never runs
    /// backwards, so this indicates a simulator bug.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("SimTime::duration_since: `earlier` is in the future"),
        )
    }

    /// Returns the duration elapsed from `earlier` to `self`, or zero if
    /// `earlier` is later.
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Builds a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Builds a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Builds a duration from fractional seconds, rounding to the nearest
    /// microsecond.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid duration: {s}");
        SimDuration((s * 1e6).round() as u64)
    }

    /// Returns the duration in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns true if this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Multiplies the duration by a float scale factor, rounding to the
    /// nearest microsecond.
    ///
    /// # Panics
    ///
    /// Panics if `f` is negative or not finite.
    pub fn mul_f64(self, f: f64) -> SimDuration {
        assert!(f.is_finite() && f >= 0.0, "invalid scale: {f}");
        SimDuration((self.0 as f64 * f).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimDuration subtraction underflow"),
        )
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_micros(5_000_000);
        let d = SimDuration::from_secs(3);
        assert_eq!((t + d).as_micros(), 8_000_000);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d).duration_since(t), d);
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(2), SimDuration::from_millis(2_000));
        assert_eq!(SimDuration::from_millis(5), SimDuration::from_micros(5_000));
        assert_eq!(
            SimDuration::from_secs_f64(0.5),
            SimDuration::from_millis(500)
        );
    }

    #[test]
    fn saturating_ops_do_not_underflow() {
        let a = SimDuration::from_secs(1);
        let b = SimDuration::from_secs(2);
        assert_eq!(a.saturating_sub(b), SimDuration::ZERO);
        let t0 = SimTime::from_micros(10);
        let t1 = SimTime::from_micros(20);
        assert_eq!(t0.saturating_duration_since(t1), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "in the future")]
    fn duration_since_panics_on_reversed_order() {
        let t0 = SimTime::from_micros(10);
        let t1 = SimTime::from_micros(20);
        let _ = t0.duration_since(t1);
    }

    #[test]
    fn mul_f64_rounds() {
        let d = SimDuration::from_micros(10);
        assert_eq!(d.mul_f64(1.26), SimDuration::from_micros(13));
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn display_picks_a_sensible_unit() {
        assert_eq!(SimDuration::from_micros(7).to_string(), "7us");
        assert_eq!(SimDuration::from_millis(7).to_string(), "7.000ms");
        assert_eq!(SimDuration::from_secs(7).to_string(), "7.000s");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = [1u64, 2, 3]
            .iter()
            .map(|&s| SimDuration::from_secs(s))
            .sum();
        assert_eq!(total, SimDuration::from_secs(6));
    }
}
