//! Cancel-aware timer queue: an indexed binary min-heap over a slab of
//! timer entries.
//!
//! The executor's original timer structure was a `BinaryHeap<TimerEntry>`
//! with no removal: a `Sleep` that was dropped before its deadline (a
//! timeout that lost its race, an abandoned retransmission guard) left a
//! *stale* entry behind, which the executor later popped, fired into a
//! task that no longer cared, and paid for with a spurious poll. Under
//! retransmission-heavy workloads those entries dominated the heap.
//!
//! This structure keeps every live entry in a slab (`slots` + free list,
//! generational ids) and maintains a binary min-heap of slot indices
//! ordered by `(deadline, seq)` — `seq` is a registration counter, so
//! ties fire in registration order exactly as before. Each slot records
//! its heap position, which makes [`TimerQueue::cancel`] an O(log n)
//! swap-and-sift instead of impossible. Generational ids make a stale
//! cancel (the timer already fired and the slot was reused) a no-op.

use std::task::Waker;

use crate::time::SimTime;

/// Handle to a registered timer; survives the timer's firing (a cancel
/// with a stale generation is ignored).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct TimerId {
    index: u32,
    gen: u32,
}

struct TimerSlot {
    gen: u32,
    deadline: SimTime,
    /// Registration order; unique, so `(deadline, seq)` is a total order.
    seq: u64,
    /// `Some` while the entry is live (in the heap).
    waker: Option<Waker>,
    /// Position of this slot's index inside `heap`; meaningless when free.
    heap_pos: u32,
}

/// The executor's pending timers.
#[derive(Default)]
pub(crate) struct TimerQueue {
    slots: Vec<TimerSlot>,
    free: Vec<u32>,
    /// Binary min-heap of slot indices, keyed by `(deadline, seq)`.
    heap: Vec<u32>,
    next_seq: u64,
    /// Live-entry high-water mark (memory-footprint proxy).
    peak_live: usize,
    cancels: u64,
}

impl TimerQueue {
    /// Number of live (registered, not yet fired or cancelled) timers.
    pub(crate) fn len(&self) -> usize {
        self.heap.len()
    }

    /// High-water mark of [`len`](Self::len).
    pub(crate) fn peak_live(&self) -> usize {
        self.peak_live
    }

    /// Count of entries removed by [`cancel`](Self::cancel).
    pub(crate) fn cancels(&self) -> u64 {
        self.cancels
    }

    fn key(&self, idx: u32) -> (SimTime, u64) {
        let s = &self.slots[idx as usize];
        (s.deadline, s.seq)
    }

    /// Registers a timer; the waker fires when the executor advances the
    /// clock to `deadline`.
    pub(crate) fn register(&mut self, deadline: SimTime, waker: Waker) -> TimerId {
        let seq = self.next_seq;
        self.next_seq += 1;
        let index = match self.free.pop() {
            Some(i) => {
                let s = &mut self.slots[i as usize];
                s.deadline = deadline;
                s.seq = seq;
                s.waker = Some(waker);
                i
            }
            None => {
                let i = self.slots.len() as u32;
                self.slots.push(TimerSlot {
                    gen: 0,
                    deadline,
                    seq,
                    waker: Some(waker),
                    heap_pos: 0,
                });
                i
            }
        };
        let pos = self.heap.len() as u32;
        self.slots[index as usize].heap_pos = pos;
        self.heap.push(index);
        self.sift_up(pos as usize);
        self.peak_live = self.peak_live.max(self.heap.len());
        TimerId {
            index,
            gen: self.slots[index as usize].gen,
        }
    }

    /// Removes a live entry; a stale id (already fired, cancelled, or the
    /// slot was reused) is a no-op. Returns true if an entry was removed.
    pub(crate) fn cancel(&mut self, id: TimerId) -> bool {
        let Some(slot) = self.slots.get(id.index as usize) else {
            return false;
        };
        if slot.gen != id.gen || slot.waker.is_none() {
            return false;
        }
        self.cancels += 1;
        self.remove_at(self.slots[id.index as usize].heap_pos as usize);
        true
    }

    /// Earliest pending deadline.
    pub(crate) fn peek_deadline(&self) -> Option<SimTime> {
        self.heap.first().map(|&i| self.slots[i as usize].deadline)
    }

    /// Pops the earliest entry if its deadline is exactly `t`, returning
    /// its waker. Entries with equal deadlines pop in registration order.
    pub(crate) fn pop_due(&mut self, t: SimTime) -> Option<Waker> {
        let &idx = self.heap.first()?;
        if self.slots[idx as usize].deadline != t {
            return None;
        }
        let waker = self.slots[idx as usize].waker.take();
        self.remove_at(0);
        // `remove_at` skips the waker bookkeeping; re-take it here.
        Some(waker.expect("live heap entry has a waker"))
    }

    /// Removes the heap entry at `pos` and frees its slot.
    fn remove_at(&mut self, pos: usize) {
        let idx = self.heap[pos];
        let last = self.heap.len() - 1;
        self.heap.swap(pos, last);
        self.heap.pop();
        if pos <= last && pos < self.heap.len() {
            let moved = self.heap[pos];
            self.slots[moved as usize].heap_pos = pos as u32;
            // The moved element may need to go either way.
            self.sift_down(pos);
            let new_pos = self.slots[moved as usize].heap_pos as usize;
            if new_pos == pos {
                self.sift_up(pos);
            }
        }
        let slot = &mut self.slots[idx as usize];
        slot.waker = None;
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(idx);
    }

    fn sift_up(&mut self, mut pos: usize) {
        while pos > 0 {
            let parent = (pos - 1) / 2;
            if self.key(self.heap[pos]) < self.key(self.heap[parent]) {
                self.heap.swap(pos, parent);
                self.slots[self.heap[pos] as usize].heap_pos = pos as u32;
                self.slots[self.heap[parent] as usize].heap_pos = parent as u32;
                pos = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut pos: usize) {
        let len = self.heap.len();
        loop {
            let l = 2 * pos + 1;
            if l >= len {
                break;
            }
            let r = l + 1;
            let mut child = l;
            if r < len && self.key(self.heap[r]) < self.key(self.heap[l]) {
                child = r;
            }
            if self.key(self.heap[child]) < self.key(self.heap[pos]) {
                self.heap.swap(pos, child);
                self.slots[self.heap[pos] as usize].heap_pos = pos as u32;
                self.slots[self.heap[child] as usize].heap_pos = child as u32;
                pos = child;
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    use std::task::Wake;

    struct CountWake(AtomicU64);
    impl Wake for CountWake {
        fn wake(self: Arc<Self>) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    fn waker() -> (Waker, Arc<CountWake>) {
        let c = Arc::new(CountWake(AtomicU64::new(0)));
        (Waker::from(Arc::clone(&c)), c)
    }

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn pops_in_deadline_then_seq_order() {
        let mut q = TimerQueue::default();
        let deadlines = [30u64, 10, 20, 10, 30, 10];
        for &d in &deadlines {
            q.register(t(d), waker().0);
        }
        // All three t=10 entries pop before t=20, in registration order —
        // observable as: repeated pop_due(t(10)) yields exactly 3 wakers.
        assert_eq!(q.peek_deadline(), Some(t(10)));
        let mut n10 = 0;
        while q.pop_due(t(10)).is_some() {
            n10 += 1;
        }
        assert_eq!(n10, 3);
        assert_eq!(q.peek_deadline(), Some(t(20)));
        assert!(q.pop_due(t(20)).is_some());
        assert_eq!(q.peek_deadline(), Some(t(30)));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn cancel_removes_and_stale_cancel_is_noop() {
        let mut q = TimerQueue::default();
        let a = q.register(t(5), waker().0);
        let b = q.register(t(1), waker().0);
        assert!(q.cancel(b), "live entry cancels");
        assert!(!q.cancel(b), "second cancel is a no-op");
        assert_eq!(q.peek_deadline(), Some(t(5)));
        assert!(q.pop_due(t(5)).is_some());
        assert!(!q.cancel(a), "fired entry cancels as a no-op");
        assert_eq!(q.len(), 0);
        assert_eq!(q.cancels(), 1);
    }

    #[test]
    fn slot_reuse_bumps_generation() {
        let mut q = TimerQueue::default();
        let a = q.register(t(1), waker().0);
        assert!(q.cancel(a));
        // The freed slot is reused with a new generation.
        let b = q.register(t(2), waker().0);
        assert!(!q.cancel(a), "old id must not cancel the new entry");
        assert_eq!(q.len(), 1);
        assert!(q.cancel(b));
    }

    #[test]
    fn interior_cancel_keeps_heap_order() {
        let mut q = TimerQueue::default();
        let ids: Vec<TimerId> = (0..50).map(|i| q.register(t(100 - i), waker().0)).collect();
        // Cancel every third entry.
        for id in ids.iter().skip(1).step_by(3) {
            assert!(q.cancel(*id));
        }
        let mut prev = SimTime::ZERO;
        while let Some(d) = q.peek_deadline() {
            assert!(d >= prev, "heap order violated");
            prev = d;
            assert!(q.pop_due(d).is_some());
        }
    }

    #[test]
    fn peak_live_tracks_high_water() {
        let mut q = TimerQueue::default();
        let ids: Vec<TimerId> = (0..8).map(|i| q.register(t(i), waker().0)).collect();
        for id in ids {
            q.cancel(id);
        }
        q.register(t(99), waker().0);
        assert_eq!(q.peak_live(), 8);
        assert_eq!(q.len(), 1);
    }
}
