//! Property-based tests for the fault-injection layer: under *any*
//! random fault schedule (drops, duplicates, delays, reply losses), the
//! duplicate-request cache keeps execution at-most-once per logical
//! call, every completed caller observes a reply consistent with the
//! execution that produced it, the run terminates, and the fault
//! accounting balances.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use proptest::prelude::*;
use spritely_metrics::OpCounter;
use spritely_proto::{ClientId, FileHandle, NfsReply, NfsRequest};
use spritely_rpcnet::{
    Caller, CallerParams, Endpoint, EndpointParams, FaultParams, NetParams, Network,
};
use spritely_sim::{Resource, Sim, SimDuration};

/// A rig whose handler echoes each request's unique name back in the
/// reply and counts executions per name. Any double execution or
/// cross-wired reply is therefore observable.
struct Rig {
    sim: Sim,
    net: Network,
    caller: Rc<Caller<NfsRequest, NfsReply>>,
    executed: Rc<RefCell<HashMap<String, u64>>>,
}

fn rig(faults: FaultParams, handler_delay_us: u64) -> Rig {
    let sim = Sim::new();
    let server_cpu = Resource::new(&sim, "scpu", 1);
    let client_cpu = Resource::new(&sim, "ccpu", 1);
    let net = Network::new(
        &sim,
        "net",
        NetParams {
            latency: SimDuration::from_micros(500),
            bandwidth: 1_250_000,
            switched: false,
        },
    );
    net.set_faults(faults);
    let executed = Rc::new(RefCell::new(HashMap::new()));
    let handler = {
        let sim = sim.clone();
        let executed = Rc::clone(&executed);
        Rc::new(move |_from: ClientId, _ctx: u64, req: NfsRequest| {
            let sim = sim.clone();
            let executed = Rc::clone(&executed);
            Box::pin(async move {
                let name = match &req {
                    NfsRequest::Lookup { name, .. } => name.clone(),
                    _ => panic!("rig only sends Lookup"),
                };
                sim.sleep(SimDuration::from_micros(handler_delay_us)).await;
                *executed.borrow_mut().entry(name.clone()).or_insert(0) += 1;
                NfsReply::Path(name)
            }) as std::pin::Pin<Box<dyn std::future::Future<Output = NfsReply>>>
        })
    };
    let ep = Endpoint::new(
        &sim,
        "svc",
        server_cpu,
        EndpointParams {
            threads: 2,
            cpu_per_call: SimDuration::from_micros(200),
            cpu_per_kb: SimDuration::ZERO,
            dup_retention: SimDuration::from_secs(600),
        },
        OpCounter::new(),
        handler,
    );
    let caller = Caller::new(
        &sim,
        net.clone(),
        ep,
        ClientId(1),
        client_cpu,
        CallerParams {
            timeout: SimDuration::from_millis(60),
            max_retries: 6,
            cpu_per_call: SimDuration::from_micros(100),
        },
    );
    Rig {
        sim,
        net,
        caller: Rc::new(caller),
        executed,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For any fault schedule: each logical call executes at most once,
    /// every successful caller's reply matches its own request, the run
    /// terminates, and killed attempts are conserved.
    #[test]
    fn any_fault_schedule_keeps_execution_at_most_once(
        drop_pct in 0u32..35,
        dup_pct in 0u32..35,
        delay_pct in 0u32..25,
        reply_loss_pct in 0u32..25,
        seed in 0u64..1_000_000,
        n_calls in 1usize..16,
        handler_delay_us in 0u64..40_000,
    ) {
        let faults = FaultParams {
            drop: f64::from(drop_pct) / 100.0,
            duplicate: f64::from(dup_pct) / 100.0,
            delay: f64::from(delay_pct) / 100.0,
            max_delay: SimDuration::from_millis(15),
            reply_loss: f64::from(reply_loss_pct) / 100.0,
            seed,
        };
        let r = rig(faults, handler_delay_us);
        let dir = FileHandle::new(1, 1, 0);
        let ok = Rc::new(RefCell::new(Vec::new()));
        let err = Rc::new(Cell::new(0u64));
        for i in 0..n_calls {
            let caller = Rc::clone(&r.caller);
            let ok = Rc::clone(&ok);
            let err = Rc::clone(&err);
            r.sim.spawn(async move {
                let name = format!("req{i}");
                let req = NfsRequest::Lookup { dir, name: name.clone() };
                match caller.call(req).await {
                    // Reply consistency: a caller's reply must carry the
                    // name *it* sent, whatever was dropped or duplicated.
                    Ok(NfsReply::Path(p)) => {
                        assert_eq!(p, name, "reply belongs to this call");
                        ok.borrow_mut().push(name);
                    }
                    Ok(other) => panic!("unexpected reply {other:?}"),
                    Err(_) => err.set(err.get() + 1),
                }
            });
        }
        // Termination: the schedule may kill every attempt of a call (the
        // caller errors out), but the simulation always quiesces.
        r.sim.run_to_quiescence();
        let ok = ok.borrow();
        prop_assert_eq!(ok.len() as u64 + err.get(), n_calls as u64);
        let executed = r.executed.borrow();
        for (name, &count) in executed.iter() {
            prop_assert!(count <= 1, "{name} executed {count} times");
        }
        // A successful caller's request was executed exactly once (it got
        // a real reply, not a fabrication).
        for name in ok.iter() {
            prop_assert_eq!(executed.get(name).copied(), Some(1));
        }
        // Kill conservation: every fault-killed attempt is either absorbed
        // by a retransmission that completed or charged to a call that
        // gave up.
        let fs = r.net.fault_stats();
        prop_assert_eq!(
            fs.killed_attempts(),
            fs.retransmit_absorbed() + fs.outstanding_kills()
        );
    }

    /// The faulted exchange is deterministic in (schedule, seed).
    #[test]
    fn faulted_exchange_is_deterministic(
        drop_pct in 0u32..30,
        dup_pct in 0u32..30,
        seed in 0u64..1_000_000,
        n_calls in 1usize..10,
    ) {
        let run = || {
            let faults = FaultParams {
                drop: f64::from(drop_pct) / 100.0,
                duplicate: f64::from(dup_pct) / 100.0,
                delay: 0.1,
                max_delay: SimDuration::from_millis(10),
                reply_loss: 0.05,
                seed,
            };
            let r = rig(faults, 5_000);
            let dir = FileHandle::new(1, 1, 0);
            for i in 0..n_calls {
                let caller = Rc::clone(&r.caller);
                r.sim.spawn(async move {
                    let _ = caller
                        .call(NfsRequest::Lookup { dir, name: format!("req{i}") })
                        .await;
                });
            }
            r.sim.run_to_quiescence();
            let fs = r.net.fault_stats();
            let executed = r.executed.borrow().len();
            (
                r.sim.now().as_micros(),
                executed,
                fs.drops(),
                fs.dups(),
                fs.killed_attempts(),
                fs.retransmit_absorbed(),
            )
        };
        prop_assert_eq!(run(), run());
    }
}
