//! Property-based tests for the RPC layer: at-most-once execution under
//! arbitrary handler delays and timeout/retransmission pressure, plus
//! determinism of the whole exchange.

use std::cell::Cell;
use std::rc::Rc;

use proptest::prelude::*;
use spritely_metrics::OpCounter;
use spritely_proto::{ClientId, NfsReply, NfsRequest};
use spritely_rpcnet::{Caller, CallerParams, Endpoint, EndpointParams, NetParams, Network};
use spritely_sim::{Resource, Sim, SimDuration};

/// Builds a rig whose handler sleeps a per-call delay drawn from `delays`
/// (cycled), and returns (sim, caller, executed-counter).
fn rig(delays: Vec<u64>, timeout_ms: u64) -> (Sim, Caller<NfsRequest, NfsReply>, Rc<Cell<u64>>) {
    let sim = Sim::new();
    let server_cpu = Resource::new(&sim, "scpu", 1);
    let client_cpu = Resource::new(&sim, "ccpu", 1);
    let net = Network::new(
        &sim,
        "net",
        NetParams {
            latency: SimDuration::from_micros(500),
            bandwidth: 1_250_000,
            switched: false,
        },
    );
    let executed = Rc::new(Cell::new(0u64));
    let handler = {
        let sim = sim.clone();
        let executed = Rc::clone(&executed);
        let idx = Cell::new(0usize);
        Rc::new(move |_from: ClientId, _ctx: u64, _req: NfsRequest| {
            let sim = sim.clone();
            let executed = Rc::clone(&executed);
            let d = delays[idx.get() % delays.len()];
            idx.set(idx.get() + 1);
            Box::pin(async move {
                sim.sleep(SimDuration::from_micros(d)).await;
                executed.set(executed.get() + 1);
                NfsReply::Ok
            }) as std::pin::Pin<Box<dyn std::future::Future<Output = NfsReply>>>
        })
    };
    let ep = Endpoint::new(
        &sim,
        "svc",
        server_cpu,
        EndpointParams {
            threads: 2,
            cpu_per_call: SimDuration::from_micros(200),
            cpu_per_kb: SimDuration::ZERO,
            dup_retention: SimDuration::from_secs(600),
        },
        OpCounter::new(),
        handler,
    );
    let caller = Caller::new(
        &sim,
        net,
        ep,
        ClientId(1),
        client_cpu,
        CallerParams {
            timeout: SimDuration::from_millis(timeout_ms),
            max_retries: 6,
            cpu_per_call: SimDuration::from_micros(100),
        },
    );
    (sim, caller, executed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever the handler delays (even ones far beyond the timeout,
    /// forcing several retransmissions), every call that succeeds was
    /// executed exactly once, and executions never exceed calls.
    #[test]
    fn at_most_once_under_retransmission(
        delays in proptest::collection::vec(0u64..400_000, 1..8),
        n_calls in 1usize..12,
        timeout_ms in 20u64..120,
    ) {
        let retry_budget = SimDuration::from_millis(timeout_ms * 7);
        let max_delay = SimDuration::from_micros(*delays.iter().max().unwrap());
        let (sim, caller, executed) = rig(delays.clone(), timeout_ms);
        let caller = Rc::new(caller);
        let ok = Rc::new(Cell::new(0u64));
        let err = Rc::new(Cell::new(0u64));
        for _ in 0..n_calls {
            let caller = Rc::clone(&caller);
            let ok = Rc::clone(&ok);
            let err = Rc::clone(&err);
            sim.spawn(async move {
                match caller.call(NfsRequest::Null).await {
                    Ok(_) => ok.set(ok.get() + 1),
                    Err(_) => err.set(err.get() + 1),
                }
            });
        }
        sim.run_to_quiescence();
        prop_assert_eq!(ok.get() + err.get(), n_calls as u64);
        // Every call executes at most once (dup cache), and every call's
        // execution eventually runs even if the caller gave up.
        prop_assert!(executed.get() <= n_calls as u64);
        // If even the *serial* worst case (every handler execution queued
        // behind every other) fits inside the retry budget, no call may
        // fail.
        let serial_worst = max_delay * n_calls as u64 + SimDuration::from_millis(10);
        if serial_worst < retry_budget {
            prop_assert_eq!(err.get(), 0, "no spurious failures");
        }
        prop_assert_eq!(executed.get(), n_calls as u64, "all executions complete");
    }

    /// The entire exchange is deterministic.
    #[test]
    fn rpc_exchange_is_deterministic(
        delays in proptest::collection::vec(0u64..100_000, 1..6),
        n_calls in 1usize..8,
    ) {
        let run = |delays: &[u64]| {
            let (sim, caller, executed) = rig(delays.to_vec(), 50);
            let caller = Rc::new(caller);
            for _ in 0..n_calls {
                let caller = Rc::clone(&caller);
                sim.spawn(async move {
                    let _ = caller.call(NfsRequest::Null).await;
                });
            }
            sim.run_to_quiescence();
            (sim.now().as_micros(), executed.get(), caller.retransmits())
        };
        prop_assert_eq!(run(&delays), run(&delays));
    }
}
